//! Quickstart: evaluate all four strategies on the paper's worked example.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arbloops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §V pools: (x,y) = (100,200), (y,z) = (300,200),
    // (z,x) = (200,400), Uniswap V2 fee 0.3%.
    let fee = FeeRate::UNISWAP_V2;
    let loop_ = ArbLoop::new(
        vec![
            SwapCurve::new(100.0, 200.0, fee)?, // X → Y
            SwapCurve::new(300.0, 200.0, fee)?, // Y → Z
            SwapCurve::new(200.0, 400.0, fee)?, // Z → X
        ],
        vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
    )?;
    // CEX prices: Px = $2, Py = $10.2, Pz = $20.
    let prices = [2.0, 10.2, 20.0];

    println!(
        "round-trip rate: {:.4} (>1 ⇒ arbitrage)",
        loop_.round_trip_rate()
    );

    // Traditional: each start token separately.
    for start in 0..3 {
        let t = traditional::evaluate(&loop_, &prices, start, Method::ClosedForm)?;
        println!(
            "traditional start T{start}: input {:>6.2}, profit {:>6.2} tokens = {}",
            t.optimal_input, t.token_profit, t.monetized
        );
    }

    // MaxPrice, MaxMax, ConvexOptimization.
    let mp = maxprice::evaluate(&loop_, &prices)?;
    let mm = maxmax::evaluate(&loop_, &prices)?;
    let cv = convexopt::evaluate(&loop_, &prices)?;
    println!("maxprice (start T{}): {}", mp.start, mp.monetized);
    println!("maxmax   (start T{}): {}", mm.best.start, mm.best.monetized);
    println!("convex              : {}", cv.monetized);
    println!(
        "convex profit per token: X {:.2}, Y {:.2}, Z {:.2}",
        cv.plan.token_profits()[0],
        cv.plan.token_profits()[1],
        cv.plan.token_profits()[2],
    );

    // Or let the engine do all of it: discovery, per-cycle strategy
    // evaluation, and ranking, from nothing but pools and a price feed.
    let pools = vec![
        Pool::new(TokenId::new(0), TokenId::new(1), 100.0, 200.0, fee)?,
        Pool::new(TokenId::new(1), TokenId::new(2), 300.0, 200.0, fee)?,
        Pool::new(TokenId::new(2), TokenId::new(0), 200.0, 400.0, fee)?,
    ];
    let feed: PriceTable = [2.0, 10.2, 20.0]
        .into_iter()
        .enumerate()
        .map(|(i, p)| (TokenId::new(i as u32), p))
        .collect();
    let report = OpportunityPipeline::new(PipelineConfig::default()).run(pools, &feed)?;
    let best = report.best().expect("the triangle is profitable");
    println!(
        "engine: {} opportunity, best sized by {} for {} gross",
        report.opportunities.len(),
        best.strategy,
        best.gross_profit
    );
    Ok(())
}
