//! Loop detection three ways, then atomic on-chain execution.
//!
//! Compares the detection approaches from the paper's related work on the
//! same chain state — exhaustive fixed-length enumeration (the paper),
//! Bellman–Ford–Moore negative cycles (Zhou et al.), and Johnson's
//! elementary cycles (McLaughlin et al.) — then executes the best loop
//! via a flash bundle and verifies the banked profit.
//!
//! ```text
//! cargo run --release --example detect_and_execute
//! ```

use arbloops::graph::{bellman_ford, johnson};
use arbloops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small market with one strong mispricing (the paper's triangle)
    // plus surrounding balanced pools.
    let mut chain = Chain::new();
    let fee = FeeRate::UNISWAP_V2;
    let t = TokenId::new;
    let pools: &[(u32, u32, f64, f64)] = &[
        (0, 1, 100.0, 200.0),
        (1, 2, 300.0, 200.0),
        (2, 0, 200.0, 400.0),
        (0, 3, 1_000.0, 1_000.0),
        (3, 4, 1_000.0, 1_000.0),
        (4, 0, 1_000.0, 1_000.0),
    ];
    for &(a, b, ra, rb) in pools {
        chain.add_pool(t(a), t(b), to_raw(ra), to_raw(rb), fee)?;
    }
    let analysis: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .map(|p| p.to_analysis_pool())
        .collect::<Result<_, _>>()?;
    let graph = TokenGraph::new(analysis)?;

    // 1. Exhaustive fixed-length enumeration (this paper's procedure).
    let triangles = graph.arbitrage_loops(3)?;
    println!("enumeration: {} profitable triangles", triangles.len());
    for c in &triangles {
        println!("  {c}  (log rate {:+.4})", c.log_rate(&graph)?);
    }

    // 2. Bellman–Ford–Moore negative-cycle detection (Zhou et al.).
    let bfm = bellman_ford::find_negative_cycle(&graph)?.expect("arbitrage exists");
    println!(
        "bellman-ford-moore: {bfm}  (log rate {:+.4})",
        bfm.log_rate(&graph)?
    );

    // 3. Johnson's elementary cycles (McLaughlin et al.).
    let all = johnson::elementary_pool_cycles(&graph, 10_000)?;
    let profitable = all
        .iter()
        .filter(|c| c.log_rate(&graph).unwrap_or(f64::NEG_INFINITY) > 0.0)
        .count();
    println!(
        "johnson: {} elementary cycles, {profitable} profitable",
        all.len()
    );

    // Size and execute the best loop through the engine pipeline: the
    // same graph feeds discovery, MaxMax sizes every rotation, and the
    // ranked result drives a flash bundle — no starting capital needed.
    let feed: PriceTable = [2.0, 10.2, 20.0, 1.0, 1.0]
        .into_iter()
        .enumerate()
        .map(|(i, p)| (t(i as u32), p))
        .collect();
    let pipeline = OpportunityPipeline::new(PipelineConfig::default()).with_strategies(vec![
        std::sync::Arc::new(arbloops::strategies::MaxMax::default()) as _,
    ]);
    let report = pipeline.run_graph(&graph, &feed)?;
    println!("engine stats: {}", report.stats);
    let opp = report.best().expect("arbitrage exists");
    let (start, input) = opp.single_entry().expect("maxmax funds one rotation");
    println!(
        "engine: {} ranked opportunities; best via {}: start {}, input {:.2}, expect {}",
        report.opportunities.len(),
        opp.strategy,
        opp.cycle.tokens()[start],
        input,
        opp.gross_profit,
    );

    let bot = chain.create_account();
    let steps = arbloops::bot::execution::opportunity_bundle(&chain, opp)?;
    chain.submit(Transaction::FlashBundle {
        account: bot,
        steps,
    });
    let block = chain.mine_block();
    assert!(
        block.receipts[0].success,
        "bundle reverted: {:?}",
        block.receipts[0].error
    );
    let height = block.height;

    let start_token = opp.cycle.tokens()[start];
    let banked = to_display(chain.state().balance(bot, start_token));
    println!(
        "executed at height {height}: banked {banked:.4} {start_token} (predicted {:.4})",
        opp.token_profits[start]
    );
    Ok(())
}
