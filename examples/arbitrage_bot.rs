//! A live arbitrage bot on the simulated market.
//!
//! Noise traders and liquidity providers push pools out of line each
//! block; a CEX drifts token prices; the bot consumes the chain's
//! `Sync`/`Swap` event stream, applies the deltas to its persistent
//! graph + cycle index, re-evaluates only the loops each block touched,
//! and executes atomically via flash bundles. Its PnL can only grow —
//! bundles revert unless they settle non-negative.
//!
//! ```text
//! cargo run --release --example arbitrage_bot
//! ```

use arbloops::bot::bot::BotAction;
use arbloops::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = MarketSim::new(MarketSimConfig {
        seed: 1234,
        num_tokens: 12,
        num_pools: 24,
        trader_max_fraction: 0.04,
        bot: BotConfig {
            // Event-driven scanning is the default; spelled out here
            // because this example is the streaming path's showcase.
            mode: ScanMode::Streaming,
            strategy: StrategyChoice::MaxMax,
            min_profit_usd: 0.25,
            ..BotConfig::default()
        },
        ..MarketSimConfig::default()
    })?;

    println!("block | action                              | cumulative PnL");
    println!("------+-------------------------------------+---------------");
    let mut executed = 0usize;
    for _ in 0..40 {
        let summary = sim.step()?;
        let action = match summary.action {
            BotAction::Idle => "idle".to_string(),
            BotAction::Submitted { expected, hops } => {
                executed += 1;
                format!("flash bundle, {hops} hops, expect {expected}")
            }
        };
        println!("{:>5} | {:<35} | {}", summary.height, action, summary.pnl);
    }

    println!("\nbundles executed: {executed}");
    println!("final bot PnL: {}", sim.bot_pnl());
    if let Some(stats) = sim.bot().stream_stats() {
        println!("streaming: {stats}");
    }
    let holdings = arbloops::bot::pnl::Ledger::holdings(
        sim.chain(),
        sim.bot().account(),
        sim.tokens().iter().copied(),
    );
    println!("holdings ({} tokens):", holdings.len());
    for (token, amount) in holdings {
        println!("  {token}: {amount:.4}");
    }
    Ok(())
}
