//! The paper's §VI empirical study on a synthetic Uniswap V2 snapshot.
//!
//! Pipeline: generate a paper-calibrated snapshot (51 tokens / 208 pools
//! after the TVL > $30k and reserve > 100 filters), build the token graph,
//! enumerate length-3 arbitrage loops, and compare all four strategies on
//! every loop.
//!
//! ```text
//! cargo run --release --example empirical_study
//! ```

use arbloops::prelude::*;
use arbloops::strategies::batch::{compare_all_parallel, LoopCase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SnapshotConfig::default();
    let snapshot = Generator::new(config).generate()?;
    println!(
        "raw snapshot: {} tokens, {} pools",
        snapshot.token_count(),
        snapshot.pools().len()
    );
    let filtered = snapshot.filtered(&config);
    println!(
        "after paper filters (TVL > ${:.0}, reserve > {:.0}): {} pools",
        config.min_tvl_usd,
        config.min_reserve,
        filtered.pools().len()
    );

    let graph = TokenGraph::new(filtered.pools().to_vec())?;
    let loops = graph.arbitrage_loops(3)?;
    println!(
        "length-3 arbitrage loops: {} (paper found 123)",
        loops.len()
    );

    // Build strategy cases with snapshot CEX prices.
    let prices = filtered.price_vector();
    let cases: Vec<LoopCase> = loops
        .iter()
        .map(|cycle| {
            let hops = graph.curves_for(cycle).expect("validated cycle");
            let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec()).expect("valid loop");
            let case_prices = cycle.tokens().iter().map(|t| prices[t.index()]).collect();
            LoopCase {
                loop_,
                prices: case_prices,
            }
        })
        .collect();

    let rows = compare_all_parallel(&cases, &CompareOptions::default(), 8)?;

    // The paper's headline comparisons.
    let mut trad_below = 0usize;
    let mut trad_total = 0usize;
    let mut maxprice_below = 0usize;
    let mut convex_total = Usd::ZERO;
    let mut maxmax_total = Usd::ZERO;
    for row in &rows {
        let mm = row.maxmax.value();
        for t in &row.traditional {
            trad_total += 1;
            if t.value() < mm - 1e-9 {
                trad_below += 1;
            }
        }
        if row.maxprice.value() < mm - 1e-9 {
            maxprice_below += 1;
        }
        maxmax_total += row.maxmax;
        convex_total += row.convex;
    }
    println!("— figure-shape checks —");
    println!(
        "Fig.5  traditional vs maxmax: {trad_below}/{trad_total} rotation points strictly below the 45° line (rest tie)"
    );
    println!(
        "Fig.6  maxprice vs maxmax: {maxprice_below}/{} loops where the heuristic loses money vs MaxMax",
        rows.len()
    );
    println!(
        "Fig.7  total monetized profit: maxmax {maxmax_total} vs convex {convex_total} (almost equal)"
    );
    let best = rows
        .iter()
        .max_by(|a, b| a.maxmax.partial_cmp(&b.maxmax).expect("finite"))
        .expect("non-empty");
    println!(
        "most profitable loop: maxmax {}, convex {}",
        best.maxmax, best.convex
    );
    Ok(())
}
