//! The paper's §VI empirical study on a synthetic Uniswap V2 snapshot.
//!
//! Pipeline: generate a paper-calibrated snapshot (51 tokens / 208 pools
//! after the TVL > $30k and reserve > 100 filters), run the engine's
//! discovery pipeline over it, and compare all four strategies on every
//! discovered loop.
//!
//! ```text
//! cargo run --release --example empirical_study
//! ```

use arbloops::engine::RankByGrossProfit;
use arbloops::prelude::*;
use arbloops::strategies::batch::{compare_all_parallel, LoopCase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SnapshotConfig::default();
    let snapshot = Generator::new(config).generate()?;
    println!(
        "raw snapshot: {} tokens, {} pools",
        snapshot.token_count(),
        snapshot.pools().len()
    );
    let filtered = snapshot.filtered(&config);
    println!(
        "after paper filters (TVL > ${:.0}, reserve > {:.0}): {} pools",
        config.min_tvl_usd,
        config.min_reserve,
        filtered.pools().len()
    );

    // Discovery through the engine: snapshot → graph → length-3 loops →
    // sized + ranked opportunities, in one call. MaxMax-only sizing here:
    // every discovered loop has rate > 1, so MaxMax is always positive
    // and the full four-strategy comparison below (which re-solves the
    // convex program per loop) is not paid twice.
    let pipeline = OpportunityPipeline::new(PipelineConfig {
        min_cycle_len: 3,
        max_cycle_len: 3,
        ..PipelineConfig::default()
    })
    .with_strategies(vec![
        std::sync::Arc::new(arbloops::strategies::MaxMax::default()) as _,
    ])
    .with_ranking(Box::new(RankByGrossProfit));
    let report = pipeline.run_snapshot(&filtered)?;
    println!(
        "length-3 arbitrage loops: {} discovered, {} profitable after sizing (paper found 123)",
        report.stats.cycles_discovered,
        report.opportunities.len()
    );
    if let Some(best) = report.best() {
        println!(
            "best opportunity: {} via {} (rate {:.4})",
            best.gross_profit,
            best.strategy,
            best.round_trip_rate()
        );
    }

    // Figure-shape checks need all four strategies per loop, not just the
    // winner — reuse the engine's discovered loops as comparison cases.
    // Every discovered loop has round-trip rate > 1, so MaxMax's closed
    // form always yields positive monetized profit and the opportunity
    // set equals the discovery set (the counts printed above agree).
    let cases: Vec<LoopCase> = report
        .opportunities
        .iter()
        .map(|opp| LoopCase {
            loop_: opp.loop_.clone(),
            prices: opp.prices.clone(),
        })
        .collect();

    let rows = compare_all_parallel(&cases, &CompareOptions::default(), 8)?;

    // The paper's headline comparisons.
    let mut trad_below = 0usize;
    let mut trad_total = 0usize;
    let mut maxprice_below = 0usize;
    let mut convex_total = Usd::ZERO;
    let mut maxmax_total = Usd::ZERO;
    for row in &rows {
        let mm = row.maxmax.value();
        for t in &row.traditional {
            trad_total += 1;
            if t.value() < mm - 1e-9 {
                trad_below += 1;
            }
        }
        if row.maxprice.value() < mm - 1e-9 {
            maxprice_below += 1;
        }
        maxmax_total += row.maxmax;
        convex_total += row.convex;
    }
    println!("— figure-shape checks —");
    println!(
        "Fig.5  traditional vs maxmax: {trad_below}/{trad_total} rotation points strictly below the 45° line (rest tie)"
    );
    println!(
        "Fig.6  maxprice vs maxmax: {maxprice_below}/{} loops where the heuristic loses money vs MaxMax",
        rows.len()
    );
    println!(
        "Fig.7  total monetized profit: maxmax {maxmax_total} vs convex {convex_total} (almost equal)"
    );
    let best = rows
        .iter()
        .max_by(|a, b| a.maxmax.partial_cmp(&b.maxmax).expect("finite"))
        .expect("non-empty");
    println!(
        "most profitable loop: maxmax {}, convex {}",
        best.maxmax, best.convex
    );
    Ok(())
}
