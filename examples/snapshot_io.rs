//! Snapshot persistence: generate → save CSV → reload → re-analyze.
//!
//! Shows the data-pipeline face of the library: snapshots round-trip
//! through `tokens.csv`/`pools.csv` exactly, so a census can be archived
//! and re-examined later (the paper's own workflow with its Sept-1-2023
//! snapshot).
//!
//! ```text
//! cargo run --release --example snapshot_io
//! ```

use arbloops::prelude::*;
use arbloops::snapshot::csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SnapshotConfig {
        num_tokens: 20,
        num_pools: 50,
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate()?;
    println!(
        "generated: {} tokens, {} pools, total TVL ${:.0}",
        snapshot.token_count(),
        snapshot.pools().len(),
        snapshot.total_tvl()
    );

    let dir = std::env::temp_dir().join("arbloops_snapshot_demo");
    csv::save(&snapshot, &dir)?;
    println!("saved to {}", dir.display());

    let reloaded = csv::load(&dir)?;
    assert_eq!(reloaded, snapshot, "bit-exact CSV round-trip");
    println!("reloaded: identical ✓");

    // Re-run the analysis pipeline on the reloaded data.
    let filtered = reloaded.filtered(&config);
    let graph = TokenGraph::new(filtered.pools().to_vec())?;
    let loops = graph.arbitrage_loops(3)?;
    println!(
        "analysis on reloaded data: {} filtered pools, {} arbitrage triangles",
        filtered.pools().len(),
        loops.len()
    );
    if let Some(best) = loops.iter().max_by(|a, b| {
        a.log_rate(&graph)
            .unwrap()
            .partial_cmp(&b.log_rate(&graph).unwrap())
            .unwrap()
    }) {
        println!(
            "strongest loop: {best} (log rate {:+.4})",
            best.log_rate(&graph)?
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
