#!/usr/bin/env bash
# Bench trend gate: compare one metric of one row in a current
# BENCH_*.json against the committed baseline and fail the build on a
# regression beyond the tolerance. Replaces the per-gate python heredocs
# that used to be copy-pasted through ci.yml.
#
# Usage:
#   bench_gate.sh CURRENT BASELINE BENCH METRIC DIRECTION TOLERANCE_PCT [KEY=VALUE...]
#
#   CURRENT        the BENCH_*.json this run produced
#   BASELINE       the committed .github/bench-baselines/BENCH_*.json
#   BENCH          value of the "bench" field selecting the row
#   METRIC         numeric field to compare
#   DIRECTION      min -> bigger is better; fail when current < base*(1-tol)
#                  max -> smaller is better; fail when current > base*(1+tol)
#   TOLERANCE_PCT  allowed regression, in percent (e.g. 20)
#   KEY=VALUE      extra row filters (e.g. workload=degenerate-flood)
#
# Refresh a baseline (copy the run's BENCH_*.json over the committed
# file) whenever the runner hardware class changes.
set -euo pipefail
exec python3 - "$@" <<'EOF'
import json
import sys

if len(sys.argv) < 7:
    sys.exit("bench_gate: usage: CURRENT BASELINE BENCH METRIC "
             "min|max TOLERANCE_PCT [KEY=VALUE...]")
current_path, baseline_path, bench, metric, direction, tolerance_pct = sys.argv[1:7]
filters = dict(arg.split("=", 1) for arg in sys.argv[7:])
tolerance = float(tolerance_pct) / 100.0
if direction not in ("min", "max"):
    sys.exit(f"bench_gate: direction must be min or max, got {direction!r}")

def pick(path):
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != bench:
                continue
            if all(str(row.get(key)) == value for key, value in filters.items()):
                return row
    return None

label = " ".join([bench] + [f"{key}={value}" for key, value in filters.items()])
base_row = pick(baseline_path)
if base_row is None:
    sys.exit(f"bench_gate: no {label} row in baseline {baseline_path}")
got_row = pick(current_path)
if got_row is None:
    sys.exit(f"bench_gate: no {label} row in {current_path}")
try:
    base = float(base_row[metric])
    got = float(got_row[metric])
except KeyError as missing:
    sys.exit(f"bench_gate: {label} row lacks metric {missing}")

if direction == "min":
    bound = base * (1.0 - tolerance)
    ok = got >= bound
    bound_name = "floor"
else:
    bound = base * (1.0 + tolerance)
    ok = got <= bound
    bound_name = "ceiling"
print(f"{label} {metric}: baseline {base:g}, current {got:g}, "
      f"{bound_name} {bound:g}")
if not ok:
    sys.exit(f"{label}: {metric} regressed more than {tolerance_pct}%: "
             f"current {got:g} breached the {bound_name} {bound:g} "
             f"(baseline {base:g})")
EOF
