//! Error type for numerical routines.

use std::error::Error;
use std::fmt;

/// Errors produced by optimizers, factorizations, and solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// An iterative method exhausted its iteration budget.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Best residual or gap achieved.
        residual: f64,
    },
    /// A matrix factorization failed (singular or not positive definite).
    SingularMatrix,
    /// A bracketing interval did not contain the sought point.
    InvalidBracket,
    /// The starting point violated strict feasibility.
    InfeasibleStart,
    /// Mismatched vector/matrix dimensions.
    DimensionMismatch,
    /// A function returned NaN or infinity during iteration.
    NonFiniteValue,
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iteration budget exhausted after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::SingularMatrix => {
                write!(f, "matrix is singular or not positive definite")
            }
            NumericsError::InvalidBracket => write!(f, "bracket does not contain the target point"),
            NumericsError::InfeasibleStart => write!(f, "starting point is not strictly feasible"),
            NumericsError::DimensionMismatch => write!(f, "dimension mismatch"),
            NumericsError::NonFiniteValue => write!(f, "non-finite value encountered"),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NumericsError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
        assert!(!NumericsError::SingularMatrix.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
