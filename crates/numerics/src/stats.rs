//! Small statistical helpers (pure functions, no RNG dependency).
//!
//! Callers draw uniforms from their own `rand` source and map them through
//! these transforms; keeping this crate RNG-free avoids version coupling.

/// Box–Muller transform: maps two independent uniforms in `(0, 1]` to two
/// independent standard normal deviates.
///
/// # Panics
///
/// Debug-asserts the inputs lie in `(0, 1]` (a `u1` of exactly 0 would
/// produce infinity).
pub fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    debug_assert!(u1 > 0.0 && u1 <= 1.0, "u1={u1}");
    debug_assert!((0.0..=1.0).contains(&u2), "u2={u2}");
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Maps two uniforms to one log-normal deviate with the given parameters
/// of the underlying normal (`ln X ~ N(mu, sigma²)`).
pub fn log_normal(mu: f64, sigma: f64, u1: f64, u2: f64) -> f64 {
    let (z, _) = box_muller(u1, u2);
    (mu + sigma * z).exp()
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice (0 for fewer than 2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation of two equal-length slices (0 when degenerate).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_muller_produces_plausible_normals() {
        // Deterministic low-discrepancy sweep instead of an RNG.
        let mut samples = Vec::new();
        let n = 5000;
        for i in 0..n {
            let u1 = (i as f64 + 0.5) / n as f64;
            let u2 = ((i as f64 * 0.618_033_988_75) % 1.0).max(1e-12);
            let (z1, z2) = box_muller(u1, u2);
            samples.push(z1);
            samples.push(z2);
        }
        let m = mean(&samples);
        let s = std_dev(&samples);
        assert!(m.abs() < 0.05, "mean={m}");
        assert!((s - 1.0).abs() < 0.05, "std={s}");
    }

    #[test]
    fn log_normal_is_positive() {
        for i in 1..100 {
            let u1 = i as f64 / 100.0;
            let v = log_normal(0.0, 1.0, u1, 0.37);
            assert!(v > 0.0);
        }
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }
}
