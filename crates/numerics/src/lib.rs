//! Numerical substrate: scalar optimizers, dense linear algebra, and a
//! log-barrier interior-point method.
//!
//! No convex-optimization crates are available offline, so this crate
//! implements the three layers the arbitrage strategies need from scratch:
//!
//! * [`scalar`] — 1-D concave maximization (derivative bisection, golden
//!   section, safeguarded Newton) used by the Traditional/MaxMax strategies;
//! * [`linalg`] — small dense matrices with Cholesky and partially-pivoted
//!   LU solves for Newton systems;
//! * [`barrier`] — a damped-Newton log-barrier interior-point method for
//!   smooth concave maximization under smooth concave inequality
//!   constraints, used by the ConvexOptimization strategy (paper eq. 8);
//! * [`rootfind`] — safeguarded scalar root finding.
//!
//! Everything is deterministic and allocation-light; problem sizes in this
//! workspace are tiny (loops of length ≤ ~16 ⇒ ≤ 32 variables), so dense
//! factorizations are the right tool.

pub mod barrier;
pub mod error;
pub mod linalg;
pub mod rootfind;
pub mod scalar;
pub mod stats;

pub use barrier::{solve_barrier, BarrierConfig, BarrierProblem, BarrierSolution};
pub use error::NumericsError;
pub use linalg::Matrix;
pub use scalar::{bisect_derivative, golden_section, newton_max, OptimizeResult};
