//! Small dense matrices and direct solvers.
//!
//! Problem sizes here are tiny (Newton systems of dimension ≤ ~32), so a
//! row-major dense matrix with Cholesky / partially-pivoted LU is both
//! simpler and faster than anything sparse.

use crate::error::NumericsError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero (reuses the allocation).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix-vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when sizes disagree.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::DimensionMismatch);
        }
        let y = self
            .data
            .chunks_exact(self.cols)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(y)
    }

    /// Adds `alpha · v·vᵀ` (an outer product) into the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] unless the matrix is
    /// square with dimension `v.len()`.
    pub fn add_outer(&mut self, alpha: f64, v: &[f64]) -> Result<(), NumericsError> {
        let n = v.len();
        if self.rows != n || self.cols != n {
            return Err(NumericsError::DimensionMismatch);
        }
        for (i, &vi_raw) in v.iter().enumerate() {
            if vi_raw == 0.0 {
                continue;
            }
            let vi = alpha * vi_raw;
            for (cell, &vj) in self.data[i * n..(i + 1) * n].iter_mut().zip(v) {
                *cell += vi * vj;
            }
        }
        Ok(())
    }

    /// Adds `alpha` to every diagonal entry (Levenberg regularization).
    pub fn add_diagonal(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Solves `A·x = b` for symmetric positive definite `A` via Cholesky.
    ///
    /// `A` is not modified. Fails (rather than producing garbage) when `A`
    /// is not positive definite.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] for non-square `A` or wrong
    ///   `b` length.
    /// * [`NumericsError::SingularMatrix`] when a pivot is not positive.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(NumericsError::DimensionMismatch);
        }
        // Factor A = L·Lᵀ, storing L in a scratch copy.
        let mut l = self.data.clone();
        for j in 0..n {
            let mut diag = l[j * n + j];
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            // `!(diag > 0.0)` also rejects NaN, unlike `diag <= 0.0`.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(diag > 0.0) || !diag.is_finite() {
                return Err(NumericsError::SingularMatrix);
            }
            let diag = diag.sqrt();
            l[j * n + j] = diag;
            for i in (j + 1)..n {
                let mut v = l[i * n + j];
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / diag;
            }
        }
        // Forward substitution L·y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= l[i * n + k] * y[k];
            }
            y[i] /= l[i * n + i];
        }
        // Back substitution Lᵀ·x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= l[k * n + i] * y[k];
            }
            y[i] /= l[i * n + i];
        }
        Ok(y)
    }

    /// Solves `A·x = b` via LU with partial pivoting (general square `A`).
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] for non-square `A` or wrong
    ///   `b` length.
    /// * [`NumericsError::SingularMatrix`] when a pivot column is all zero.
    pub fn lu_solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.rows;
        if self.cols != n || b.len() != n {
            return Err(NumericsError::DimensionMismatch);
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Pivot selection.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(NumericsError::SingularMatrix);
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            let p = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / p;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[row * n + j] -= factor * a[col * n + j];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= a[i * n + j] * x[j];
            }
            x[i] /= a[i * n + i];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let x = a.cholesky_solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2.0]? Check: 4·1.5+2·2=10 ✓, 2·1.5+3·2=9 ✓.
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = a.cholesky_solve(&[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert_eq!(
            a.cholesky_solve(&[1.0, 1.0]),
            Err(NumericsError::SingularMatrix)
        );
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let b = [-8.0, 0.0, 3.0];
        let x = a.lu_solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.lu_solve(&[1.0, 1.0]), Err(NumericsError::SingularMatrix));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.matvec(&[1.0]), Err(NumericsError::DimensionMismatch));
        assert_eq!(
            a.cholesky_solve(&[1.0, 1.0]),
            Err(NumericsError::DimensionMismatch)
        );
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 3.0]).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 6.0);
        assert_eq!(a[(1, 0)], 6.0);
        assert_eq!(a[(1, 1)], 18.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    proptest! {
        #[test]
        fn cholesky_and_lu_agree_on_spd(
            vals in proptest::collection::vec(-2.0..2.0f64, 9),
            b in proptest::collection::vec(-5.0..5.0f64, 3),
        ) {
            // Build SPD A = MᵀM + I.
            let m = Matrix::from_rows(&[&vals[0..3], &vals[3..6], &vals[6..9]]);
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    let mut s = 0.0;
                    for k in 0..3 {
                        s += m[(k, i)] * m[(k, j)];
                    }
                    a[(i, j)] = s + if i == j { 1.0 } else { 0.0 };
                }
            }
            let xc = a.cholesky_solve(&b).unwrap();
            let xl = a.lu_solve(&b).unwrap();
            for (c, l) in xc.iter().zip(&xl) {
                prop_assert!((c - l).abs() < 1e-8 * (1.0 + c.abs()));
            }
            // Residual check.
            let r = a.matvec(&xc).unwrap();
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-8 * (1.0 + bi.abs()));
            }
        }
    }
}
