//! Log-barrier interior-point method for smooth concave programs.
//!
//! Solves problems of the form
//!
//! ```text
//! maximize   f(x)          (f concave, C²)
//! subject to g_i(x) ≥ 0    (each g_i concave, C²)
//! ```
//!
//! by maximizing the barrier surrogate `Φ_μ(x) = f(x) + μ·Σ log g_i(x)`
//! with damped Newton steps for a decreasing sequence of `μ`. Because both
//! `f` and every `g_i` are concave, `Φ_μ` is strictly concave on the strict
//! interior and each inner Newton solve has a unique maximizer; the
//! suboptimality of the outer iterate is bounded by `m·μ` (the standard
//! barrier duality gap), which is the termination criterion.
//!
//! The paper's eq. 7/8 programs fit this form exactly: linear objective,
//! concave "CPMM product" constraints, linear linking constraints, and
//! nonnegativity bounds. See `arb-convex` for the problem construction.

// `!(x > 0.0)` is used deliberately throughout: unlike `x <= 0.0` it also
// rejects NaN, which line searches can produce at infeasible trial points.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::error::NumericsError;
use crate::linalg::{self, Matrix};

/// A smooth concave maximization problem with concave `≥ 0` constraints.
///
/// Implementors supply analytic first and second derivatives; the solver
/// never differentiates numerically. Hessian callbacks must *overwrite*
/// their output argument.
pub trait BarrierProblem {
    /// Number of decision variables.
    fn dim(&self) -> usize;

    /// Number of inequality constraints.
    fn num_constraints(&self) -> usize;

    /// Objective `f(x)` to maximize.
    fn objective(&self, x: &[f64]) -> f64;

    /// Gradient of the objective (overwrites `grad`).
    fn objective_grad(&self, x: &[f64], grad: &mut [f64]);

    /// Hessian of the objective (overwrites `hess`).
    fn objective_hess(&self, x: &[f64], hess: &mut Matrix);

    /// Value of constraint `i` (feasible iff `> 0` strictly, `≥ 0` weakly).
    fn constraint(&self, i: usize, x: &[f64]) -> f64;

    /// Gradient of constraint `i` (overwrites `grad`).
    fn constraint_grad(&self, i: usize, x: &[f64], grad: &mut [f64]);

    /// Hessian of constraint `i` (overwrites `hess`).
    fn constraint_hess(&self, i: usize, x: &[f64], hess: &mut Matrix);
}

/// Tuning knobs for [`solve_barrier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierConfig {
    /// Initial barrier weight `μ₀`.
    pub mu_initial: f64,
    /// Multiplicative decrease applied to `μ` between outer iterations.
    pub mu_shrink: f64,
    /// Terminate when `m·μ` (the duality-gap bound) falls below this.
    pub gap_tol: f64,
    /// Inner Newton termination on the Newton decrement `λ²/2`.
    pub newton_tol: f64,
    /// Maximum Newton iterations per outer (centering) step.
    pub max_newton_iter: usize,
    /// Maximum outer iterations.
    pub max_outer_iter: usize,
}

impl Default for BarrierConfig {
    fn default() -> Self {
        BarrierConfig {
            mu_initial: 10.0,
            mu_shrink: 0.2,
            // Duality-gap tolerance in objective units. Monetized profits
            // are dollar-scale, so 1e-6 is micro-dollar precision; pushing
            // far below this exhausts f64 centering precision for no
            // practical gain.
            gap_tol: 1e-6,
            newton_tol: 1e-12,
            max_newton_iter: 80,
            max_outer_iter: 60,
        }
    }
}

/// Result of a barrier solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierSolution {
    /// The (approximately) optimal point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Approximate dual multipliers `λ_i = μ / g_i(x)` at the final iterate,
    /// usable for KKT verification.
    pub multipliers: Vec<f64>,
    /// Final barrier weight.
    pub mu: f64,
    /// Total Newton iterations across all centering steps.
    pub newton_iterations: usize,
    /// Whether the duality-gap tolerance was met.
    pub converged: bool,
}

/// Maximizes `problem` starting from the strictly feasible point `x0`.
///
/// # Errors
///
/// * [`NumericsError::InfeasibleStart`] if any `g_i(x0) ≤ 0`.
/// * [`NumericsError::DimensionMismatch`] if `x0.len() != problem.dim()`.
/// * [`NumericsError::SingularMatrix`] if Newton systems stay unsolvable
///   even under heavy Levenberg regularization.
/// * [`NumericsError::NonFiniteValue`] if callbacks produce NaN.
pub fn solve_barrier<P: BarrierProblem>(
    problem: &P,
    x0: &[f64],
    config: &BarrierConfig,
) -> Result<BarrierSolution, NumericsError> {
    let n = problem.dim();
    let m = problem.num_constraints();
    if x0.len() != n {
        return Err(NumericsError::DimensionMismatch);
    }
    for i in 0..m {
        if !(problem.constraint(i, x0) > 0.0) {
            return Err(NumericsError::InfeasibleStart);
        }
    }

    let mut x = x0.to_vec();
    let mut mu = config.mu_initial;
    let mut newton_total = 0usize;

    // Scratch buffers reused across iterations.
    let mut grad = vec![0.0; n];
    let mut cgrad = vec![0.0; n];
    let mut hess = Matrix::zeros(n, n);
    let mut chess = Matrix::zeros(n, n);

    for _outer in 0..config.max_outer_iter {
        // ---- Centering: damped Newton on Φ_μ ----
        for _inner in 0..config.max_newton_iter {
            // Assemble ∇Φ and ∇²Φ.
            problem.objective_grad(&x, &mut grad);
            problem.objective_hess(&x, &mut hess);
            for i in 0..m {
                let g = problem.constraint(i, &x);
                if !(g > 0.0) || !g.is_finite() {
                    return Err(NumericsError::NonFiniteValue);
                }
                problem.constraint_grad(i, &x, &mut cgrad);
                problem.constraint_hess(i, &x, &mut chess);
                let w1 = mu / g;
                let w2 = mu / (g * g);
                for a in 0..n {
                    grad[a] += w1 * cgrad[a];
                    for b in 0..n {
                        hess[(a, b)] += w1 * chess[(a, b)];
                    }
                }
                // −(μ/g²)·∇g∇gᵀ
                for a in 0..n {
                    if cgrad[a] == 0.0 {
                        continue;
                    }
                    let va = w2 * cgrad[a];
                    for b in 0..n {
                        hess[(a, b)] -= va * cgrad[b];
                    }
                }
            }
            if grad.iter().any(|v| !v.is_finite()) {
                return Err(NumericsError::NonFiniteValue);
            }

            // Solve (−∇²Φ + εI)·δ = ∇Φ with escalating regularization.
            let mut neg_h = Matrix::zeros(n, n);
            for a in 0..n {
                for b in 0..n {
                    neg_h[(a, b)] = -hess[(a, b)];
                }
            }
            let mut eps = 0.0;
            let delta = loop {
                let mut trial = neg_h.clone();
                if eps > 0.0 {
                    trial.add_diagonal(eps);
                }
                match trial.cholesky_solve(&grad) {
                    Ok(d) => break d,
                    Err(_) if eps < 1e12 => {
                        eps = if eps == 0.0 { 1e-10 } else { eps * 100.0 };
                    }
                    Err(_) => return Err(NumericsError::SingularMatrix),
                }
            };

            // Newton decrement.
            let decrement = linalg::dot(&grad, &delta);
            newton_total += 1;
            if decrement.abs() / 2.0 <= config.newton_tol {
                break;
            }

            // Backtracking line search preserving strict feasibility. The
            // Armijo test carries a float-resolution slack: near the
            // optimum the true improvement per step drops below the
            // representable resolution of Φ, and rejecting those steps
            // would stall the final centerings (leaving the iterate a few
            // 1e-4 relative off the optimum).
            let phi = eval_barrier(problem, &x, mu, m)?;
            let slack = 1e-12 * phi.abs().max(1.0);
            let mut t = 1.0;
            let mut accepted = false;
            for _bt in 0..60 {
                let mut xt = x.clone();
                linalg::axpy(t, &delta, &mut xt);
                if let Some(phi_t) = try_eval_barrier(problem, &xt, mu, m) {
                    if phi_t >= phi + 0.01 * t * decrement - slack {
                        x = xt;
                        accepted = true;
                        break;
                    }
                }
                t *= 0.5;
            }
            if !accepted {
                // Step direction exhausted at this precision; centering done.
                break;
            }
        }

        // ---- Gap check and μ decrease ----
        if (m as f64) * mu <= config.gap_tol {
            let multipliers = (0..m).map(|i| mu / problem.constraint(i, &x)).collect();
            return Ok(BarrierSolution {
                objective: problem.objective(&x),
                multipliers,
                x,
                mu,
                newton_iterations: newton_total,
                converged: true,
            });
        }
        mu *= config.mu_shrink;
    }

    let multipliers = (0..m).map(|i| mu / problem.constraint(i, &x)).collect();
    Ok(BarrierSolution {
        objective: problem.objective(&x),
        multipliers,
        x,
        mu,
        newton_iterations: newton_total,
        converged: (m as f64) * mu <= config.gap_tol,
    })
}

/// Evaluates `Φ_μ`, erroring on infeasibility (used where feasibility is an
/// invariant, not a search condition).
fn eval_barrier<P: BarrierProblem>(
    problem: &P,
    x: &[f64],
    mu: f64,
    m: usize,
) -> Result<f64, NumericsError> {
    try_eval_barrier(problem, x, mu, m).ok_or(NumericsError::NonFiniteValue)
}

/// Evaluates `Φ_μ`, returning `None` when `x` is infeasible or produces
/// non-finite values (used by the line search).
fn try_eval_barrier<P: BarrierProblem>(problem: &P, x: &[f64], mu: f64, m: usize) -> Option<f64> {
    let mut v = problem.objective(x);
    if !v.is_finite() {
        return None;
    }
    for i in 0..m {
        let g = problem.constraint(i, x);
        if !(g > 0.0) || !g.is_finite() {
            return None;
        }
        v += mu * g.ln();
    }
    v.is_finite().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// maximize c·x subject to box 0 ≤ x_i ≤ u_i.
    struct BoxLp {
        c: Vec<f64>,
        u: Vec<f64>,
    }

    impl BarrierProblem for BoxLp {
        fn dim(&self) -> usize {
            self.c.len()
        }
        fn num_constraints(&self) -> usize {
            2 * self.c.len()
        }
        fn objective(&self, x: &[f64]) -> f64 {
            linalg::dot(&self.c, x)
        }
        fn objective_grad(&self, _x: &[f64], grad: &mut [f64]) {
            grad.copy_from_slice(&self.c);
        }
        fn objective_hess(&self, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
        }
        fn constraint(&self, i: usize, x: &[f64]) -> f64 {
            let n = self.c.len();
            if i < n {
                x[i]
            } else {
                self.u[i - n] - x[i - n]
            }
        }
        fn constraint_grad(&self, i: usize, _x: &[f64], grad: &mut [f64]) {
            grad.iter_mut().for_each(|v| *v = 0.0);
            let n = self.c.len();
            if i < n {
                grad[i] = 1.0;
            } else {
                grad[i - n] = -1.0;
            }
        }
        fn constraint_hess(&self, _i: usize, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
        }
    }

    /// maximize −Σ w_i (x_i − m_i)² over the box [0, u]^n.
    struct BoxQp {
        w: Vec<f64>,
        m: Vec<f64>,
        u: Vec<f64>,
    }

    impl BarrierProblem for BoxQp {
        fn dim(&self) -> usize {
            self.w.len()
        }
        fn num_constraints(&self) -> usize {
            2 * self.w.len()
        }
        fn objective(&self, x: &[f64]) -> f64 {
            -self
                .w
                .iter()
                .zip(&self.m)
                .zip(x)
                .map(|((w, m), x)| w * (x - m) * (x - m))
                .sum::<f64>()
        }
        fn objective_grad(&self, x: &[f64], grad: &mut [f64]) {
            for i in 0..x.len() {
                grad[i] = -2.0 * self.w[i] * (x[i] - self.m[i]);
            }
        }
        fn objective_hess(&self, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
            for i in 0..self.w.len() {
                hess[(i, i)] = -2.0 * self.w[i];
            }
        }
        fn constraint(&self, i: usize, x: &[f64]) -> f64 {
            let n = self.w.len();
            if i < n {
                x[i]
            } else {
                self.u[i - n] - x[i - n]
            }
        }
        fn constraint_grad(&self, i: usize, _x: &[f64], grad: &mut [f64]) {
            grad.iter_mut().for_each(|v| *v = 0.0);
            let n = self.w.len();
            if i < n {
                grad[i] = 1.0;
            } else {
                grad[i - n] = -1.0;
            }
        }
        fn constraint_hess(&self, _i: usize, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
        }
    }

    /// maximize x + y subject to x² + y² ≤ r².
    struct Disc {
        r2: f64,
    }

    impl BarrierProblem for Disc {
        fn dim(&self) -> usize {
            2
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn objective(&self, x: &[f64]) -> f64 {
            x[0] + x[1]
        }
        fn objective_grad(&self, _x: &[f64], grad: &mut [f64]) {
            grad[0] = 1.0;
            grad[1] = 1.0;
        }
        fn objective_hess(&self, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
        }
        fn constraint(&self, _i: usize, x: &[f64]) -> f64 {
            self.r2 - x[0] * x[0] - x[1] * x[1]
        }
        fn constraint_grad(&self, _i: usize, x: &[f64], grad: &mut [f64]) {
            grad[0] = -2.0 * x[0];
            grad[1] = -2.0 * x[1];
        }
        fn constraint_hess(&self, _i: usize, _x: &[f64], hess: &mut Matrix) {
            hess.clear();
            hess[(0, 0)] = -2.0;
            hess[(1, 1)] = -2.0;
        }
    }

    #[test]
    fn box_lp_reaches_corner() {
        let p = BoxLp {
            c: vec![1.0, 2.0],
            u: vec![3.0, 5.0],
        };
        let sol = solve_barrier(&p, &[1.0, 1.0], &BarrierConfig::default()).unwrap();
        assert!(sol.converged);
        assert!((sol.x[0] - 3.0).abs() < 1e-5, "x0={}", sol.x[0]);
        assert!((sol.x[1] - 5.0).abs() < 1e-5, "x1={}", sol.x[1]);
        assert!((sol.objective - 13.0).abs() < 1e-4);
    }

    #[test]
    fn box_qp_interior_optimum() {
        let p = BoxQp {
            w: vec![1.0, 2.0],
            m: vec![2.0, 3.0],
            u: vec![10.0, 10.0],
        };
        let sol = solve_barrier(&p, &[5.0, 5.0], &BarrierConfig::default()).unwrap();
        assert!(sol.converged);
        assert!((sol.x[0] - 2.0).abs() < 1e-5);
        assert!((sol.x[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn box_qp_active_bound_and_multiplier() {
        // Unconstrained max at 5 but upper bound at 3: optimum clamps to 3,
        // the bound's multiplier approximates the objective slope 2w(m−u)=4.
        let p = BoxQp {
            w: vec![1.0],
            m: vec![5.0],
            u: vec![3.0],
        };
        let sol = solve_barrier(&p, &[1.0], &BarrierConfig::default()).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-4);
        assert!(
            (sol.multipliers[1] - 4.0).abs() < 0.1,
            "λ={}",
            sol.multipliers[1]
        );
    }

    #[test]
    fn disc_constraint_optimum() {
        let p = Disc { r2: 2.0 };
        let sol = solve_barrier(&p, &[0.0, 0.0], &BarrierConfig::default()).unwrap();
        assert!(sol.converged);
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
        assert!((sol.objective - 2.0).abs() < 1e-4);
    }

    #[test]
    fn infeasible_start_rejected() {
        let p = Disc { r2: 1.0 };
        assert_eq!(
            solve_barrier(&p, &[2.0, 0.0], &BarrierConfig::default()),
            Err(NumericsError::InfeasibleStart)
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let p = Disc { r2: 1.0 };
        assert_eq!(
            solve_barrier(&p, &[0.0], &BarrierConfig::default()),
            Err(NumericsError::DimensionMismatch)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn qp_matches_clamped_analytic_solution(
            w in proptest::collection::vec(0.5..4.0f64, 3),
            m in proptest::collection::vec(-2.0..8.0f64, 3),
            u in proptest::collection::vec(1.0..6.0f64, 3),
        ) {
            let p = BoxQp { w: w.clone(), m: m.clone(), u: u.clone() };
            let x0: Vec<f64> = u.iter().map(|ui| ui / 2.0).collect();
            let sol = solve_barrier(&p, &x0, &BarrierConfig::default()).unwrap();
            for i in 0..3 {
                let truth = m[i].clamp(0.0, u[i]);
                prop_assert!((sol.x[i] - truth).abs() < 1e-4,
                    "i={i} got={} want={truth}", sol.x[i]);
            }
        }
    }
}
