//! One-dimensional concave maximization.
//!
//! The Traditional strategy reduces to maximizing the concave profit
//! function `π(Δ) = F(Δ) − Δ` over `Δ ≥ 0`. The paper uses bisection on the
//! optimality condition `dΔout/dΔin = 1`; this module provides that plus
//! derivative-free (golden section) and second-order (Newton) alternatives,
//! all cross-validated against the closed form in property tests.

use crate::error::NumericsError;

/// Outcome of a 1-D optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeResult {
    /// The maximizing argument.
    pub x: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Maximizes a concave function whose derivative `df` is strictly
/// decreasing, by bisecting on the sign of `df` over `[lo, hi]`.
///
/// If `df(lo) <= 0` the maximum is at `lo`; if `df(hi) >= 0` it is at `hi`.
/// This is exactly the paper's "bisection on `dΔout/dΔin = 1`" once the
/// caller passes `df(Δ) = F'(Δ) − 1`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] if `lo > hi` or either bound is
/// non-finite; [`NumericsError::NonFiniteValue`] if `df` produces NaN.
pub fn bisect_derivative(
    mut df: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<OptimizeResult, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumericsError::InvalidBracket);
    }
    let (mut lo, mut hi) = (lo, hi);
    let dlo = df(lo);
    if dlo.is_nan() {
        return Err(NumericsError::NonFiniteValue);
    }
    if dlo <= 0.0 {
        return Ok(OptimizeResult {
            x: lo,
            iterations: 0,
            converged: true,
        });
    }
    let dhi = df(hi);
    if dhi.is_nan() {
        return Err(NumericsError::NonFiniteValue);
    }
    if dhi >= 0.0 {
        return Ok(OptimizeResult {
            x: hi,
            iterations: 0,
            converged: true,
        });
    }
    let mut iterations = 0;
    while iterations < max_iter {
        let mid = 0.5 * (lo + hi);
        let dm = df(mid);
        if dm.is_nan() {
            return Err(NumericsError::NonFiniteValue);
        }
        if dm > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        iterations += 1;
        if hi - lo <= tol * (1.0 + lo.abs()) {
            return Ok(OptimizeResult {
                x: 0.5 * (lo + hi),
                iterations,
                converged: true,
            });
        }
    }
    Ok(OptimizeResult {
        x: 0.5 * (lo + hi),
        iterations,
        converged: false,
    })
}

/// Golden-section search maximizing a unimodal `f` over `[lo, hi]`.
///
/// Derivative-free; ~38% interval reduction per evaluation pair.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] for a malformed interval and
/// [`NumericsError::NonFiniteValue`] if `f` produces NaN.
pub fn golden_section(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<OptimizeResult, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumericsError::InvalidBracket);
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    if fc.is_nan() || fd.is_nan() {
        return Err(NumericsError::NonFiniteValue);
    }
    let mut iterations = 0;
    while iterations < max_iter && (b - a) > tol * (1.0 + a.abs()) {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        if fc.is_nan() || fd.is_nan() {
            return Err(NumericsError::NonFiniteValue);
        }
        iterations += 1;
    }
    Ok(OptimizeResult {
        x: 0.5 * (a + b),
        iterations,
        converged: (b - a) <= tol * (1.0 + a.abs()),
    })
}

/// Safeguarded Newton maximization: Newton steps on `df = 0` with bisection
/// fallback inside a shrinking bracket `[lo, hi]`.
///
/// Requires `df(lo) > 0 > df(hi)` (interior maximum); callers should first
/// clamp to the boundary cases as [`bisect_derivative`] does.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] if the derivative does not
/// change sign over the interval, [`NumericsError::NonFiniteValue`] on NaN.
pub fn newton_max(
    mut df: impl FnMut(f64) -> f64,
    mut d2f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<OptimizeResult, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumericsError::InvalidBracket);
    }
    let dlo = df(lo);
    if dlo <= 0.0 {
        return Ok(OptimizeResult {
            x: lo,
            iterations: 0,
            converged: true,
        });
    }
    let dhi = df(hi);
    if dhi >= 0.0 {
        return Ok(OptimizeResult {
            x: hi,
            iterations: 0,
            converged: true,
        });
    }
    let (mut a, mut b) = (lo, hi);
    let mut x = 0.5 * (a + b);
    let mut iterations = 0;
    while iterations < max_iter {
        let g = df(x);
        if g.is_nan() {
            return Err(NumericsError::NonFiniteValue);
        }
        if g.abs() <= tol {
            return Ok(OptimizeResult {
                x,
                iterations,
                converged: true,
            });
        }
        // Maintain the bracket.
        if g > 0.0 {
            a = x;
        } else {
            b = x;
        }
        let h = d2f(x);
        let newton = if h < 0.0 { x - g / h } else { f64::NAN };
        x = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        iterations += 1;
        if b - a <= tol * (1.0 + a.abs()) {
            return Ok(OptimizeResult {
                x,
                iterations,
                converged: true,
            });
        }
    }
    Ok(OptimizeResult {
        x,
        iterations,
        converged: false,
    })
}

/// Expands `hi` geometrically from `start` until `df(hi) < 0`, producing an
/// upper bracket for an interior maximum of a concave function.
///
/// Returns `None` if no sign change is found within `max_doublings`
/// (the profit function keeps rising — practically unbounded).
pub fn bracket_maximum(
    mut df: impl FnMut(f64) -> f64,
    start: f64,
    max_doublings: usize,
) -> Option<f64> {
    let mut hi = start.max(f64::MIN_POSITIVE);
    for _ in 0..max_doublings {
        if df(hi) < 0.0 {
            return Some(hi);
        }
        hi *= 2.0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Concave test function: f(x) = -(x - m)^2 with maximum at m.
    fn quad(
        m: f64,
    ) -> (
        impl Fn(f64) -> f64,
        impl Fn(f64) -> f64,
        impl Fn(f64) -> f64,
    ) {
        (
            move |x: f64| -(x - m) * (x - m),
            move |x: f64| -2.0 * (x - m),
            move |_x: f64| -2.0,
        )
    }

    #[test]
    fn bisect_finds_quadratic_max() {
        let (_, df, _) = quad(3.7);
        let r = bisect_derivative(df, 0.0, 100.0, 1e-12, 200).unwrap();
        assert!(r.converged);
        assert!((r.x - 3.7).abs() < 1e-9);
    }

    #[test]
    fn bisect_clamps_to_boundary() {
        let (_, df, _) = quad(-5.0); // max left of the interval
        let r = bisect_derivative(df, 0.0, 10.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 0.0);
        let (_, df, _) = quad(50.0); // max right of the interval
        let r = bisect_derivative(df, 0.0, 10.0, 1e-12, 100).unwrap();
        assert_eq!(r.x, 10.0);
    }

    #[test]
    fn bisect_rejects_bad_interval() {
        assert_eq!(
            bisect_derivative(|_| 0.0, 1.0, 0.0, 1e-9, 10),
            Err(NumericsError::InvalidBracket)
        );
    }

    #[test]
    fn golden_finds_quadratic_max() {
        let (f, _, _) = quad(2.5);
        let r = golden_section(f, 0.0, 10.0, 1e-10, 500).unwrap();
        assert!(r.converged);
        assert!((r.x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn newton_finds_quadratic_max_fast() {
        let (_, df, d2f) = quad(4.2);
        let r = newton_max(df, d2f, 0.0, 100.0, 1e-12, 50).unwrap();
        assert!(r.converged);
        assert!((r.x - 4.2).abs() < 1e-9);
        assert!(r.iterations <= 5, "newton took {} iters", r.iterations);
    }

    #[test]
    fn bracket_expands_until_negative_derivative() {
        let (_, df, _) = quad(100.0);
        let hi = bracket_maximum(df, 1.0, 64).unwrap();
        assert!(hi > 100.0);
        // Unbounded growth: df always positive.
        assert_eq!(bracket_maximum(|_| 1.0, 1.0, 16), None);
    }

    #[test]
    fn nan_is_reported() {
        assert_eq!(
            bisect_derivative(|_| f64::NAN, 0.0, 1.0, 1e-9, 10),
            Err(NumericsError::NonFiniteValue)
        );
    }

    proptest! {
        #[test]
        fn three_methods_agree(m in 0.1..500.0f64) {
            let (f, df, d2f) = quad(m);
            let b = bisect_derivative(&df, 0.0, 1000.0, 1e-12, 300).unwrap();
            let g = golden_section(&f, 0.0, 1000.0, 1e-12, 500).unwrap();
            let n = newton_max(&df, &d2f, 0.0, 1000.0, 1e-12, 100).unwrap();
            prop_assert!((b.x - m).abs() < 1e-6);
            prop_assert!((g.x - m).abs() < 1e-4);
            prop_assert!((n.x - m).abs() < 1e-6);
        }

        #[test]
        fn log_concave_function(m in 0.5..50.0f64) {
            // f(x) = log(1+x) − x/m peaks at x = m − 1.
            let df = |x: f64| 1.0 / (1.0 + x) - 1.0 / m;
            let r = bisect_derivative(df, 0.0, 1e4, 1e-12, 300).unwrap();
            let truth = (m - 1.0).max(0.0); // boundary clamp when m < 1
            prop_assert!((r.x - truth).abs() < 1e-5 * (1.0 + m));
        }
    }
}
