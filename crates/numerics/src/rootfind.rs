//! Safeguarded scalar root finding.

use crate::error::NumericsError;

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (or one of them to be
/// zero).
///
/// # Errors
///
/// * [`NumericsError::InvalidBracket`] if the signs do not straddle zero.
/// * [`NumericsError::NonFiniteValue`] if `f` produces NaN.
pub fn bisect_root(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumericsError::InvalidBracket);
    }
    let flo = f(lo);
    let fhi = f(hi);
    if flo.is_nan() || fhi.is_nan() {
        return Err(NumericsError::NonFiniteValue);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidBracket);
    }
    let (mut a, mut b, mut fa) = (lo, hi, flo);
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.is_nan() {
            return Err(NumericsError::NonFiniteValue);
        }
        if fm == 0.0 || (b - a) <= tol * (1.0 + mid.abs()) {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// Newton's method with bisection fallback inside a bracket.
///
/// Each iteration tries a Newton step from the current iterate; if the step
/// leaves the bracket or the derivative vanishes, falls back to bisection.
/// Converges quadratically near simple roots, never diverges.
///
/// # Errors
///
/// Same as [`bisect_root`].
pub fn newton_root(
    mut f: impl FnMut(f64) -> f64,
    mut df: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumericsError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumericsError::InvalidBracket);
    }
    let flo = f(lo);
    let fhi = f(hi);
    if flo.is_nan() || fhi.is_nan() {
        return Err(NumericsError::NonFiniteValue);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidBracket);
    }
    let (mut a, mut b, mut fa) = (lo, hi, flo);
    let mut x = 0.5 * (a + b);
    for _ in 0..max_iter {
        let fx = f(x);
        if fx.is_nan() {
            return Err(NumericsError::NonFiniteValue);
        }
        if fx.abs() <= tol {
            return Ok(x);
        }
        if fx.signum() == fa.signum() {
            a = x;
            fa = fx;
        } else {
            b = x;
        }
        let d = df(x);
        let newton = x - fx / d;
        x = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        if b - a <= tol * (1.0 + x.abs()) {
            return Ok(x);
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect_root(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn newton_sqrt2() {
        let r = newton_root(|x| x * x - 2.0, |x| 2.0 * x, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn endpoint_roots() {
        assert_eq!(bisect_root(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect_root(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn no_sign_change_rejected() {
        assert_eq!(
            bisect_root(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 10),
            Err(NumericsError::InvalidBracket)
        );
    }

    proptest! {
        #[test]
        fn both_methods_agree_on_cubic(c in 0.5..100.0f64) {
            // x^3 = c has root c^(1/3).
            let f = |x: f64| x * x * x - c;
            let df = |x: f64| 3.0 * x * x;
            let hi = c.max(1.0) + 1.0;
            let b = bisect_root(f, 0.0, hi, 1e-13, 300).unwrap();
            let n = newton_root(f, df, 0.0, hi, 1e-13, 100).unwrap();
            let truth = c.cbrt();
            prop_assert!((b - truth).abs() < 1e-6 * (1.0 + truth));
            prop_assert!((n - truth).abs() < 1e-6 * (1.0 + truth));
        }
    }
}
