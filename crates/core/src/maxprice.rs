//! The MaxPrice strategy: start from the highest-priced token.
//!
//! A natural-sounding heuristic — "surely the most valuable token extracts
//! the most value" — that the paper demonstrates is *unreliable*: the
//! optimal start token depends on pool depths along the loop, not just on
//! prices (Fig. 2 and Fig. 6). This module implements the heuristic so the
//! comparison can be reproduced.

use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::traditional::{self, Method, TraditionalOutcome};

/// The index of the highest-priced token (ties break to the lowest index).
pub fn argmax_price(prices: &[f64]) -> usize {
    let mut best = 0;
    for (i, p) in prices.iter().enumerate() {
        if *p > prices[best] {
            best = i;
        }
    }
    best
}

/// Evaluates MaxPrice with the default (closed-form) optimizer.
///
/// # Errors
///
/// See [`traditional::evaluate`].
pub fn evaluate(loop_: &ArbLoop, prices: &[f64]) -> Result<TraditionalOutcome, StrategyError> {
    evaluate_with(loop_, prices, Method::ClosedForm)
}

/// Evaluates MaxPrice with an explicit optimizer.
///
/// # Errors
///
/// See [`traditional::evaluate`].
pub fn evaluate_with(
    loop_: &ArbLoop,
    prices: &[f64],
    method: Method,
) -> Result<TraditionalOutcome, StrategyError> {
    if prices.len() != loop_.len() {
        return Err(StrategyError::InvalidLoop);
    }
    traditional::evaluate(loop_, prices, argmax_price(prices), method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmax;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use proptest::prelude::*;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn argmax_price_basics() {
        assert_eq!(argmax_price(&[2.0, 10.2, 20.0]), 2);
        assert_eq!(argmax_price(&[5.0, 5.0]), 0, "ties break low");
    }

    #[test]
    fn coincides_with_maxmax_on_original_prices() {
        // With Pz = $20 the highest-priced start happens to be optimal.
        let l = paper_loop();
        let prices = [2.0, 10.2, 20.0];
        let mp = evaluate(&l, &prices).unwrap();
        let mm = maxmax::evaluate(&l, &prices).unwrap();
        assert_eq!(mp.start, 2);
        assert_eq!(mp, mm.best);
    }

    #[test]
    fn unreliable_when_px_rises() {
        // Paper Fig. 2: at Px ≈ 15 (still below Pz = 20) the X-rotation
        // earns more, so MaxPrice (which sticks with Z) is suboptimal.
        let l = paper_loop();
        let prices = [15.0, 10.2, 20.0];
        let mp = evaluate(&l, &prices).unwrap();
        let mm = maxmax::evaluate(&l, &prices).unwrap();
        assert_eq!(mp.start, 2, "MaxPrice still starts at the $20 token");
        assert_eq!(mm.best.start, 0, "the optimum moved to token X");
        assert!(
            mm.best.monetized.value() > mp.monetized.value() + 20.0,
            "maxmax {} vs maxprice {}",
            mm.best.monetized,
            mp.monetized
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn never_beats_maxmax(
            r in proptest::collection::vec(50.0..20_000.0f64, 6),
            prices in proptest::collection::vec(0.01..1_000.0f64, 3),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let l = ArbLoop::new(
                vec![
                    SwapCurve::new(r[0], r[1], fee).unwrap(),
                    SwapCurve::new(r[2], r[3], fee).unwrap(),
                    SwapCurve::new(r[4], r[5], fee).unwrap(),
                ],
                vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
            ).unwrap();
            let mp = evaluate(&l, &prices).unwrap();
            let mm = maxmax::evaluate(&l, &prices).unwrap();
            prop_assert!(mm.best.monetized >= mp.monetized);
        }
    }
}
