//! The ConvexOptimization strategy (adapter over `arb-convex`).
//!
//! Builds the paper's eq. 8 program from an [`ArbLoop`] and CEX prices,
//! solves it, and exposes the result in strategy-level terms. The paper's
//! second theorem — ConvexOpt ≥ MaxMax — is asserted by property tests
//! here, as is the third — no MaxMax profit ⇒ the zero plan.

use arb_convex::{LoopPlan, LoopProblem, SolverOptions};

use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::monetize::Usd;

/// Outcome of the ConvexOptimization strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexOutcome {
    /// The solved execution plan (per-hop flows, per-token profits).
    pub plan: LoopPlan,
    /// Monetized profit `Σ_j P_j·π_j`.
    pub monetized: Usd,
}

/// Evaluates the strategy with default solver options.
///
/// # Errors
///
/// See [`evaluate_with`].
pub fn evaluate(loop_: &ArbLoop, prices: &[f64]) -> Result<ConvexOutcome, StrategyError> {
    evaluate_with(loop_, prices, &SolverOptions::default())
}

/// Evaluates the strategy with explicit solver options (formulation,
/// barrier tuning).
///
/// # Errors
///
/// * [`StrategyError::InvalidLoop`] for misaligned prices.
/// * [`StrategyError::Convex`] for solver failures.
pub fn evaluate_with(
    loop_: &ArbLoop,
    prices: &[f64],
    options: &SolverOptions,
) -> Result<ConvexOutcome, StrategyError> {
    if prices.len() != loop_.len() {
        return Err(StrategyError::InvalidLoop);
    }
    let problem = LoopProblem::new(loop_.hops().to_vec(), prices.to_vec())?;
    let plan = problem.solve(options)?;
    let monetized = Usd::new(plan.monetized_profit());
    Ok(ConvexOutcome { plan, monetized })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmax;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use proptest::prelude::*;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_beats_maxmax() {
        let l = paper_loop();
        let prices = [2.0, 10.2, 20.0];
        let cv = evaluate(&l, &prices).unwrap();
        let mm = maxmax::evaluate(&l, &prices).unwrap();
        // Paper: $206.1 vs $205.6.
        assert!((cv.monetized.value() - 206.1).abs() < 0.5, "{cv:?}");
        assert!(cv.monetized >= mm.best.monetized);
        // Profit concentrated in Y (~5) and Z (~7.7).
        assert!((cv.plan.token_profits()[1] - 5.0).abs() < 0.3);
        assert!((cv.plan.token_profits()[2] - 7.7).abs() < 0.3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn theorem_t2_convex_dominates_maxmax(
            r in proptest::collection::vec(50.0..20_000.0f64, 6),
            prices in proptest::collection::vec(0.05..500.0f64, 3),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let l = ArbLoop::new(
                vec![
                    SwapCurve::new(r[0], r[1], fee).unwrap(),
                    SwapCurve::new(r[2], r[3], fee).unwrap(),
                    SwapCurve::new(r[4], r[5], fee).unwrap(),
                ],
                vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
            ).unwrap();
            let cv = evaluate(&l, &prices).unwrap();
            let mm = maxmax::evaluate(&l, &prices).unwrap();
            let tol = 1e-5 * (1.0 + mm.best.monetized.value());
            prop_assert!(
                cv.monetized.value() >= mm.best.monetized.value() - tol,
                "convex {} < maxmax {}", cv.monetized, mm.best.monetized
            );
        }

        #[test]
        fn theorem_t3_no_arb_implies_zero_plan(
            x in 100.0..10_000.0f64,
            y in 100.0..10_000.0f64,
            px in 0.1..100.0f64,
            py in 0.1..100.0f64,
        ) {
            // Mirror-reserve 2-hop loop: round trip γ² < 1 from any start.
            let fee = FeeRate::UNISWAP_V2;
            let l = ArbLoop::new(
                vec![
                    SwapCurve::new(x, y, fee).unwrap(),
                    SwapCurve::new(y, x, fee).unwrap(),
                ],
                vec![TokenId::new(0), TokenId::new(1)],
            ).unwrap();
            let mm = maxmax::evaluate(&l, &[px, py]).unwrap();
            prop_assert_eq!(mm.best.monetized.value(), 0.0);
            let cv = evaluate(&l, &[px, py]).unwrap();
            prop_assert!(cv.plan.is_zero());
            prop_assert_eq!(cv.monetized.value(), 0.0);
        }
    }
}
