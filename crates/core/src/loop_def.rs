//! The executable arbitrage loop consumed by all strategies.

use arb_amm::curve::SwapCurve;
use arb_amm::token::TokenId;

use crate::error::StrategyError;

/// An arbitrage loop: hop `j` swaps `tokens[j]` into `tokens[(j+1) % n]`
/// through the curve `hops[j]`.
///
/// This type is deliberately decoupled from any pool registry or graph —
/// it owns plain curves, so it can be built from a [`TokenGraph`] cycle,
/// a chain-simulator snapshot, or hand-written reserves alike.
///
/// [`TokenGraph`]: https://docs.rs/arb-graph
#[derive(Debug, Clone, PartialEq)]
pub struct ArbLoop {
    hops: Vec<SwapCurve>,
    tokens: Vec<TokenId>,
}

impl ArbLoop {
    /// Creates a loop from aligned hops and token labels.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidLoop`] for fewer than 2 hops or
    /// mismatched lengths.
    pub fn new(hops: Vec<SwapCurve>, tokens: Vec<TokenId>) -> Result<Self, StrategyError> {
        if hops.len() < 2 || hops.len() != tokens.len() {
            return Err(StrategyError::InvalidLoop);
        }
        Ok(ArbLoop { hops, tokens })
    }

    /// An empty scratch loop for buffer-reusing call sites (the streaming
    /// engine's zero-allocation refresh). A scratch loop violates the
    /// ≥ 2-hop invariant until [`ArbLoop::rebuild`] fills it — do not
    /// hand one to a strategy before that.
    pub fn scratch() -> Self {
        ArbLoop {
            hops: Vec::new(),
            tokens: Vec::new(),
        }
    }

    /// Refills this loop in place from borrowed slices, reusing the inner
    /// buffers' capacity — the steady-state path performs no heap
    /// allocation once the buffers have grown to their high-water mark.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::InvalidLoop`] for fewer than 2 hops or
    /// mismatched lengths (the same validation as [`ArbLoop::new`]); the
    /// loop is left empty in that case.
    pub fn rebuild(&mut self, hops: &[SwapCurve], tokens: &[TokenId]) -> Result<(), StrategyError> {
        self.hops.clear();
        self.tokens.clear();
        if hops.len() < 2 || hops.len() != tokens.len() {
            return Err(StrategyError::InvalidLoop);
        }
        self.hops.extend_from_slice(hops);
        self.tokens.extend_from_slice(tokens);
        Ok(())
    }

    /// Number of hops (= number of tokens).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the loop is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hop curves in loop order.
    pub fn hops(&self) -> &[SwapCurve] {
        &self.hops
    }

    /// The token labels in loop order.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// The loop's round-trip rate at zero input (`> 1` ⇔ arbitrage).
    pub fn round_trip_rate(&self) -> f64 {
        self.hops.iter().map(SwapCurve::spot_rate).product()
    }

    /// The hops rotated to start at position `start` (same trade, entered
    /// from a different token).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::RotationOutOfRange`] when
    /// `start >= self.len()`.
    pub fn rotated_hops(&self, start: usize) -> Result<Vec<SwapCurve>, StrategyError> {
        if start >= self.len() {
            return Err(StrategyError::RotationOutOfRange);
        }
        let n = self.len();
        Ok((0..n).map(|k| self.hops[(start + k) % n]).collect())
    }

    /// Resolves the CEX prices of the loop's tokens from a lookup
    /// function, aligned with loop order.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::MissingPrice`] naming the first unpriced
    /// token.
    pub fn resolve_prices<F>(&self, lookup: F) -> Result<Vec<f64>, StrategyError>
    where
        F: Fn(TokenId) -> Option<f64>,
    {
        let mut prices = Vec::with_capacity(self.tokens.len());
        self.resolve_prices_into(lookup, &mut prices)?;
        Ok(prices)
    }

    /// [`ArbLoop::resolve_prices`] into a caller-owned buffer: appends
    /// this loop's prices to `out` (for flat span-indexed batching). On a
    /// missing price, `out` is truncated back to its incoming length.
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::MissingPrice`] naming the first unpriced
    /// token.
    pub fn resolve_prices_into<F>(&self, lookup: F, out: &mut Vec<f64>) -> Result<(), StrategyError>
    where
        F: Fn(TokenId) -> Option<f64>,
    {
        let start = out.len();
        for &token in &self.tokens {
            match lookup(token) {
                Some(price) => out.push(price),
                None => {
                    out.truncate(start);
                    return Err(StrategyError::MissingPrice(token));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    pub(crate) fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![t(0), t(1), t(2)],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert_eq!(
            ArbLoop::new(vec![], vec![]).unwrap_err(),
            StrategyError::InvalidLoop
        );
        let fee = FeeRate::UNISWAP_V2;
        assert_eq!(
            ArbLoop::new(
                vec![SwapCurve::new(1.0, 1.0, fee).unwrap()],
                vec![t(0), t(1)]
            )
            .unwrap_err(),
            StrategyError::InvalidLoop
        );
    }

    #[test]
    fn round_trip_rate() {
        let l = paper_loop();
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((l.round_trip_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn rotation() {
        let l = paper_loop();
        let r1 = l.rotated_hops(1).unwrap();
        assert_eq!(r1[0], l.hops()[1]);
        assert_eq!(r1[2], l.hops()[0]);
        assert_eq!(
            l.rotated_hops(5).unwrap_err(),
            StrategyError::RotationOutOfRange
        );
    }

    #[test]
    fn price_resolution() {
        let l = paper_loop();
        let prices = l
            .resolve_prices(|t| [2.0, 10.2, 20.0].get(t.index()).copied())
            .unwrap();
        assert_eq!(prices, vec![2.0, 10.2, 20.0]);
        let missing = l.resolve_prices(|t| if t.index() == 1 { None } else { Some(1.0) });
        assert_eq!(missing.unwrap_err(), StrategyError::MissingPrice(t(1)));
    }
}
