//! The MaxMax strategy: best rotation by monetized profit.
//!
//! Evaluates the Traditional strategy from *every* token of the loop,
//! monetizes each profit at CEX prices, and keeps the maximum:
//! `Max(π_A·P_A, π_B·P_B, …)`. By construction it dominates every
//! Traditional rotation and the MaxPrice heuristic (the paper's first
//! theorem), which property tests in this crate assert.

use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::traditional::{self, Method, TraditionalOutcome};

/// Outcome of the MaxMax strategy, retaining all rotations (they are the
/// "traditional strategy" comparison points of the paper's Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxMaxOutcome {
    /// The winning rotation.
    pub best: TraditionalOutcome,
    /// Every rotation's outcome, indexed by start position.
    pub rotations: Vec<TraditionalOutcome>,
}

/// Evaluates MaxMax with the default (closed-form) optimizer.
///
/// # Errors
///
/// Forwards rotation-evaluation failures; see [`traditional::evaluate`].
pub fn evaluate(loop_: &ArbLoop, prices: &[f64]) -> Result<MaxMaxOutcome, StrategyError> {
    evaluate_with(loop_, prices, Method::ClosedForm)
}

/// Evaluates MaxMax with an explicit optimizer (the paper uses bisection).
///
/// # Errors
///
/// Forwards rotation-evaluation failures; see [`traditional::evaluate`].
pub fn evaluate_with(
    loop_: &ArbLoop,
    prices: &[f64],
    method: Method,
) -> Result<MaxMaxOutcome, StrategyError> {
    if prices.len() != loop_.len() {
        return Err(StrategyError::InvalidLoop);
    }
    let rotations: Vec<TraditionalOutcome> = (0..loop_.len())
        .map(|start| traditional::evaluate(loop_, prices, start, method))
        .collect::<Result<_, _>>()?;
    let best = *rotations
        .iter()
        .max_by(|a, b| {
            a.monetized
                .partial_cmp(&b.monetized)
                .expect("monetized profits are finite")
        })
        .expect("loops have at least 2 rotations");
    Ok(MaxMaxOutcome { best, rotations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use proptest::prelude::*;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_picks_z_start() {
        // Monetized: X $33.7, Y $201.1, Z $205.6 ⇒ MaxMax starts at Z.
        let out = evaluate(&paper_loop(), &[2.0, 10.2, 20.0]).unwrap();
        assert_eq!(out.best.start, 2);
        assert!((out.best.monetized.value() - 205.6).abs() < 0.5);
        assert_eq!(out.rotations.len(), 3);
    }

    #[test]
    fn maxmax_dominates_every_rotation() {
        let out = evaluate(&paper_loop(), &[2.0, 10.2, 20.0]).unwrap();
        for rot in &out.rotations {
            assert!(out.best.monetized >= rot.monetized);
        }
    }

    #[test]
    fn crossover_as_px_changes() {
        // Paper Fig. 2: around Px ≈ 15 the X-rotation overtakes Z-rotation.
        let l = paper_loop();
        let at = |px: f64| evaluate(&l, &[px, 10.2, 20.0]).unwrap().best.start;
        assert_eq!(at(2.0), 2, "low Px: start at Z");
        assert_eq!(at(18.0), 0, "high Px: start at X");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn theorem_t1_maxmax_dominates_traditional(
            r in proptest::collection::vec(50.0..20_000.0f64, 6),
            prices in proptest::collection::vec(0.01..1_000.0f64, 3),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let l = ArbLoop::new(
                vec![
                    SwapCurve::new(r[0], r[1], fee).unwrap(),
                    SwapCurve::new(r[2], r[3], fee).unwrap(),
                    SwapCurve::new(r[4], r[5], fee).unwrap(),
                ],
                vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
            ).unwrap();
            let out = evaluate(&l, &prices).unwrap();
            for rot in &out.rotations {
                prop_assert!(out.best.monetized >= rot.monetized);
                prop_assert!(rot.monetized.value() >= 0.0);
            }
        }
    }
}
