//! Per-loop strategy comparison — the row behind the paper's Figs. 5–8.

use arb_convex::SolverOptions;

use crate::convexopt;
use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::maxmax;
use crate::maxprice;
use crate::monetize::Usd;
use crate::traditional::Method;

/// Options for a full comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompareOptions {
    /// Optimizer for the 1-D strategies.
    pub method: Method,
    /// Solver options for ConvexOptimization.
    pub convex: SolverOptions,
}

/// All strategies evaluated on one loop.
///
/// * Fig. 5 plots each entry of `traditional` against `maxmax`;
/// * Fig. 6 plots `maxprice` against `maxmax`;
/// * Fig. 7/10 plot `maxmax` against `convex`;
/// * Fig. 8 compares `maxmax_token_profits` with `convex_token_profits`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopComparison {
    /// Monetized profit of every Traditional rotation, by start index.
    pub traditional: Vec<Usd>,
    /// Monetized profit of the MaxPrice heuristic.
    pub maxprice: Usd,
    /// Monetized profit of MaxMax.
    pub maxmax: Usd,
    /// Monetized profit of ConvexOptimization.
    pub convex: Usd,
    /// MaxMax profit in token units (profit only at the winning start).
    pub maxmax_token_profits: Vec<f64>,
    /// ConvexOptimization profit in token units, aligned with loop order.
    pub convex_token_profits: Vec<f64>,
}

/// Evaluates all strategies on one loop.
///
/// # Errors
///
/// Forwards the first strategy failure encountered.
pub fn compare(
    loop_: &ArbLoop,
    prices: &[f64],
    options: &CompareOptions,
) -> Result<LoopComparison, StrategyError> {
    let mm = maxmax::evaluate_with(loop_, prices, options.method)?;
    let mp = maxprice::evaluate_with(loop_, prices, options.method)?;
    let cv = convexopt::evaluate_with(loop_, prices, &options.convex)?;

    let mut maxmax_token_profits = vec![0.0; loop_.len()];
    maxmax_token_profits[mm.best.start] = mm.best.token_profit;

    Ok(LoopComparison {
        traditional: mm.rotations.iter().map(|r| r.monetized).collect(),
        maxprice: mp.monetized,
        maxmax: mm.best.monetized,
        convex: cv.monetized,
        maxmax_token_profits,
        convex_token_profits: cv.plan.token_profits().to_vec(),
    })
}

impl LoopComparison {
    /// The paper's dominance invariants for this row; `tolerance` absorbs
    /// solver slack. Used by figure-shape integration tests.
    pub fn satisfies_dominance(&self, tolerance: f64) -> bool {
        let mm = self.maxmax.value();
        self.traditional.iter().all(|t| t.value() <= mm + tolerance)
            && self.maxprice.value() <= mm + tolerance
            && self.convex.value() >= mm - tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_row() {
        let row = compare(
            &paper_loop(),
            &[2.0, 10.2, 20.0],
            &CompareOptions::default(),
        )
        .unwrap();
        assert_eq!(row.traditional.len(), 3);
        assert!((row.traditional[0].value() - 33.7).abs() < 0.3);
        assert!((row.traditional[1].value() - 201.1).abs() < 0.5);
        assert!((row.traditional[2].value() - 205.6).abs() < 0.5);
        assert!((row.maxmax.value() - 205.6).abs() < 0.5);
        assert!((row.convex.value() - 206.1).abs() < 0.5);
        assert!(row.satisfies_dominance(1e-6));
    }

    #[test]
    fn dominance_check_catches_violations() {
        let mut row = compare(
            &paper_loop(),
            &[2.0, 10.2, 20.0],
            &CompareOptions::default(),
        )
        .unwrap();
        row.convex = Usd::new(0.0); // corrupt: convex below maxmax
        assert!(!row.satisfies_dominance(1e-6));
    }
}
