//! The uniform [`Strategy`] interface over all four approaches.
//!
//! Benchmarks, the bot, and the figure harness treat strategies
//! generically; this module provides the object-safe trait and the four
//! implementations as unit-ish structs.

use arb_convex::SolverOptions;

use crate::convexopt;
use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::maxmax;
use crate::maxprice;
use crate::monetize::Usd;
use crate::traditional::{self, Method};

/// A uniform strategy evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Monetized (USD) profit.
    pub monetized: Usd,
    /// Net profit per loop token, aligned with loop order.
    pub token_profits: Vec<f64>,
    /// Input amount per hop, aligned with loop order (zero except at the
    /// start token for the 1-D strategies).
    pub inputs: Vec<f64>,
}

/// An arbitrage strategy evaluable on any loop.
///
/// Object-safe so heterogeneous strategy sets can be iterated in
/// benchmarks: `Vec<Box<dyn Strategy>>`.
pub trait Strategy {
    /// Short human-readable name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Evaluates the strategy.
    ///
    /// # Errors
    ///
    /// Implementations forward [`StrategyError`]s from their optimizers.
    fn evaluate(&self, loop_: &ArbLoop, prices: &[f64]) -> Result<StrategyOutcome, StrategyError>;
}

/// Helper: a start-rotation outcome as a uniform [`StrategyOutcome`].
fn rotation_outcome(loop_: &ArbLoop, outcome: &traditional::TraditionalOutcome) -> StrategyOutcome {
    let n = loop_.len();
    let mut token_profits = vec![0.0; n];
    token_profits[outcome.start] = outcome.token_profit;
    let mut inputs = vec![0.0; n];
    inputs[outcome.start] = outcome.optimal_input;
    StrategyOutcome {
        monetized: outcome.monetized,
        token_profits,
        inputs,
    }
}

/// Traditional strategy with a fixed start rotation.
#[derive(Debug, Clone, Copy)]
pub struct Traditional {
    /// Start rotation index.
    pub start: usize,
    /// 1-D optimizer.
    pub method: Method,
}

impl Strategy for Traditional {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn evaluate(&self, loop_: &ArbLoop, prices: &[f64]) -> Result<StrategyOutcome, StrategyError> {
        let outcome = traditional::evaluate(loop_, prices, self.start, self.method)?;
        Ok(rotation_outcome(loop_, &outcome))
    }
}

/// MaxPrice strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPrice {
    /// 1-D optimizer.
    pub method: Method,
}

impl Strategy for MaxPrice {
    fn name(&self) -> &'static str {
        "maxprice"
    }

    fn evaluate(&self, loop_: &ArbLoop, prices: &[f64]) -> Result<StrategyOutcome, StrategyError> {
        let outcome = maxprice::evaluate_with(loop_, prices, self.method)?;
        Ok(rotation_outcome(loop_, &outcome))
    }
}

/// MaxMax strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMax {
    /// 1-D optimizer.
    pub method: Method,
}

impl Strategy for MaxMax {
    fn name(&self) -> &'static str {
        "maxmax"
    }

    fn evaluate(&self, loop_: &ArbLoop, prices: &[f64]) -> Result<StrategyOutcome, StrategyError> {
        let outcome = maxmax::evaluate_with(loop_, prices, self.method)?;
        Ok(rotation_outcome(loop_, &outcome.best))
    }
}

/// ConvexOptimization strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvexOptimization {
    /// Solver options (formulation + barrier tuning).
    pub options: SolverOptions,
}

impl Strategy for ConvexOptimization {
    fn name(&self) -> &'static str {
        "convex"
    }

    fn evaluate(&self, loop_: &ArbLoop, prices: &[f64]) -> Result<StrategyOutcome, StrategyError> {
        let outcome = convexopt::evaluate_with(loop_, prices, &self.options)?;
        Ok(StrategyOutcome {
            monetized: outcome.monetized,
            token_profits: outcome.plan.token_profits().to_vec(),
            inputs: outcome.plan.flows().iter().map(|f| f.amount_in).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    #[test]
    fn trait_objects_compose() {
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(Traditional {
                start: 0,
                method: Method::ClosedForm,
            }),
            Box::new(MaxPrice::default()),
            Box::new(MaxMax::default()),
            Box::new(ConvexOptimization::default()),
        ];
        let l = paper_loop();
        let prices = [2.0, 10.2, 20.0];
        let mut results = Vec::new();
        for s in &strategies {
            let out = s.evaluate(&l, &prices).unwrap();
            assert_eq!(out.token_profits.len(), 3);
            assert_eq!(out.inputs.len(), 3);
            results.push((s.name(), out.monetized.value()));
        }
        // Dominance chain on the paper example:
        // traditional(X) < maxprice = maxmax ≤ convex.
        assert!(results[0].1 < results[2].1);
        assert!((results[1].1 - results[2].1).abs() < 1e-9);
        assert!(results[3].1 >= results[2].1 - 1e-9);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Traditional {
                start: 0,
                method: Method::ClosedForm,
            }
            .name(),
            MaxPrice::default().name(),
            MaxMax::default().name(),
            ConvexOptimization::default().name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
