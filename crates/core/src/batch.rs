//! Parallel strategy evaluation across many loops.
//!
//! The empirical pipeline (paper §VI) evaluates four strategies on
//! hundreds of loops; the work is embarrassingly parallel, so this module
//! fans it out over `std::thread` scoped threads. Results preserve input
//! order and are bit-identical to the serial path (asserted in tests).

use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::report::{compare, CompareOptions, LoopComparison};

/// A loop paired with its CEX prices, ready for evaluation.
#[derive(Debug, Clone)]
pub struct LoopCase {
    /// The loop.
    pub loop_: ArbLoop,
    /// Prices aligned with the loop's tokens.
    pub prices: Vec<f64>,
}

/// Compares all strategies on every case, serially.
///
/// # Errors
///
/// Fails fast on the first evaluation error.
pub fn compare_all(
    cases: &[LoopCase],
    options: &CompareOptions,
) -> Result<Vec<LoopComparison>, StrategyError> {
    cases
        .iter()
        .map(|case| compare(&case.loop_, &case.prices, options))
        .collect()
}

/// Compares all strategies on every case across `workers` threads,
/// preserving input order.
///
/// # Errors
///
/// Fails on the first evaluation error (other workers finish their chunks
/// first).
///
/// # Panics
///
/// Panics if a worker thread itself panics (propagated).
pub fn compare_all_parallel(
    cases: &[LoopCase],
    options: &CompareOptions,
    workers: usize,
) -> Result<Vec<LoopComparison>, StrategyError> {
    let workers = workers.max(1);
    if workers == 1 || cases.len() <= 1 {
        return compare_all(cases, options);
    }
    let chunk_size = cases.len().div_ceil(workers);
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|case| compare(&case.loop_, &case.prices, options))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("strategy worker panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(cases.len());
    for chunk_result in results {
        out.extend(chunk_result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cases(n: usize, seed: u64) -> Vec<LoopCase> {
        let mut rng = StdRng::seed_from_u64(seed);
        let fee = FeeRate::UNISWAP_V2;
        (0..n)
            .map(|_| {
                let r = |rng: &mut StdRng| rng.gen_range(100.0..10_000.0);
                let loop_ = ArbLoop::new(
                    vec![
                        SwapCurve::new(r(&mut rng), r(&mut rng), fee).unwrap(),
                        SwapCurve::new(r(&mut rng), r(&mut rng), fee).unwrap(),
                        SwapCurve::new(r(&mut rng), r(&mut rng), fee).unwrap(),
                    ],
                    vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
                )
                .unwrap();
                let prices = (0..3).map(|_| rng.gen_range(0.1..100.0)).collect();
                LoopCase { loop_, prices }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let cases = random_cases(40, 99);
        let options = CompareOptions::default();
        let serial = compare_all(&cases, &options).unwrap();
        for workers in [2, 4, 7] {
            let parallel = compare_all_parallel(&cases, &options, workers).unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn all_rows_satisfy_dominance() {
        let cases = random_cases(60, 123);
        let rows = compare_all_parallel(&cases, &CompareOptions::default(), 4).unwrap();
        assert_eq!(rows.len(), 60);
        for (i, row) in rows.iter().enumerate() {
            assert!(
                row.satisfies_dominance(1e-4 * (1.0 + row.maxmax.value())),
                "case {i}: {row:?}"
            );
        }
    }

    #[test]
    fn single_worker_falls_back_to_serial() {
        let cases = random_cases(5, 7);
        let options = CompareOptions::default();
        assert_eq!(
            compare_all_parallel(&cases, &options, 1).unwrap(),
            compare_all(&cases, &options).unwrap()
        );
    }
}
