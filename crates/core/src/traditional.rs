//! The Traditional strategy: fixed start token, optimal input amount.
//!
//! For a rotation starting at token `t_s`, the trader maximizes
//! `Δout − Δin` in units of `t_s`. The profit function is concave, so the
//! optimum satisfies the paper's first-order condition `dΔout/dΔin = 1`.
//! Four optimizers are provided; [`Method::ClosedForm`] exploits the
//! Möbius composition of the chain (`Δ* = (√(A·D) − D)/B`) and is exact,
//! the others are iterative and exist both as cross-checks and because the
//! paper's own implementation uses bisection.

use arb_amm::curve::SwapCurve;
use arb_amm::mobius::Mobius;
use arb_numerics::scalar;

use crate::error::StrategyError;
use crate::loop_def::ArbLoop;
use crate::monetize::Usd;

/// Which 1-D optimizer to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Exact Möbius closed form (default).
    #[default]
    ClosedForm,
    /// Bisection on `dΔout/dΔin = 1` — the paper's method.
    Bisection,
    /// Safeguarded Newton on the same optimality condition.
    Newton,
    /// Derivative-free golden-section search on the profit itself.
    GoldenSection,
}

/// Outcome of the Traditional strategy for one rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraditionalOutcome {
    /// Rotation index: the strategy starts (and banks profit) at
    /// `loop.tokens()[start]`.
    pub start: usize,
    /// Optimal input amount of the start token.
    pub optimal_input: f64,
    /// Net profit in start-token units.
    pub token_profit: f64,
    /// `token_profit × P_start` — the monetized profit.
    pub monetized: Usd,
}

/// Output of the whole chain (hops already rotated) for a given input.
pub fn chain_output(hops: &[SwapCurve], input: f64) -> f64 {
    hops.iter().fold(input, |amt, hop| hop.amount_out(amt))
}

/// First derivative of the chain output via the chain rule.
pub fn chain_derivative(hops: &[SwapCurve], input: f64) -> f64 {
    let mut amount = input;
    let mut derivative = 1.0;
    for hop in hops {
        derivative *= hop.derivative(amount);
        amount = hop.amount_out(amount);
    }
    derivative
}

/// Second derivative of the chain output via the second-order chain rule:
/// `(F∘G)'' = F''(G)·G'² + F'(G)·G''` applied hop by hop.
pub fn chain_second_derivative(hops: &[SwapCurve], input: f64) -> f64 {
    let mut amount = input;
    let mut first = 1.0;
    let mut second = 0.0;
    for hop in hops {
        let f1 = hop.derivative(amount);
        let f2 = hop.second_derivative(amount);
        second = f2 * first * first + f1 * second;
        first *= f1;
        amount = hop.amount_out(amount);
    }
    second
}

/// Finds the optimal input for an already-rotated hop chain.
///
/// Returns `(input, profit_in_start_token)`; `(0, 0)` for unprofitable
/// rotations.
///
/// # Errors
///
/// Forwards optimizer failures (cannot occur for the closed form).
pub fn optimal_input(hops: &[SwapCurve], method: Method) -> Result<(f64, f64), StrategyError> {
    let mobius: Vec<Mobius> = hops.iter().map(SwapCurve::to_mobius).collect();
    let chain = Mobius::chain(&mobius);
    if chain.rate_at_zero() <= 1.0 {
        return Ok((0.0, 0.0));
    }
    let closed_form = chain.optimal_input();
    let input = match method {
        Method::ClosedForm => closed_form,
        Method::Bisection => {
            let df = |x: f64| chain_derivative(hops, x) - 1.0;
            let hi = scalar::bracket_maximum(df, 1.0, 200).unwrap_or(closed_form * 2.0 + 1.0);
            scalar::bisect_derivative(df, 0.0, hi, 1e-12, 200)?.x
        }
        Method::Newton => {
            let df = |x: f64| chain_derivative(hops, x) - 1.0;
            let d2f = |x: f64| chain_second_derivative(hops, x);
            let hi = scalar::bracket_maximum(df, 1.0, 200).unwrap_or(closed_form * 2.0 + 1.0);
            scalar::newton_max(df, d2f, 0.0, hi, 1e-12, 100)?.x
        }
        Method::GoldenSection => {
            let f = |x: f64| chain_output(hops, x) - x;
            let df = |x: f64| chain_derivative(hops, x) - 1.0;
            let hi = scalar::bracket_maximum(df, 1.0, 200).unwrap_or(closed_form * 2.0 + 1.0);
            scalar::golden_section(f, 0.0, hi, 1e-12, 400)?.x
        }
    };
    let profit = chain_output(hops, input) - input;
    Ok((input, profit.max(0.0)))
}

/// Evaluates the Traditional strategy for one rotation of a loop.
///
/// # Errors
///
/// * [`StrategyError::RotationOutOfRange`] for a bad `start`.
/// * Optimizer failures for the iterative methods.
pub fn evaluate(
    loop_: &ArbLoop,
    prices: &[f64],
    start: usize,
    method: Method,
) -> Result<TraditionalOutcome, StrategyError> {
    if prices.len() != loop_.len() {
        return Err(StrategyError::InvalidLoop);
    }
    let hops = loop_.rotated_hops(start)?;
    let (input, profit) = optimal_input(&hops, method)?;
    Ok(TraditionalOutcome {
        start,
        optimal_input: input,
        token_profit: profit,
        monetized: Usd::new(profit * prices[start]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use proptest::prelude::*;

    fn paper_loop() -> ArbLoop {
        let fee = FeeRate::UNISWAP_V2;
        ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 200.0, fee).unwrap(),
                SwapCurve::new(300.0, 200.0, fee).unwrap(),
                SwapCurve::new(200.0, 400.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
        )
        .unwrap()
    }

    const PRICES: [f64; 3] = [2.0, 10.2, 20.0];

    #[test]
    fn paper_rotation_x() {
        // Paper: input 27.0 X, profit 16.8 X, monetized $33.7.
        let out = evaluate(&paper_loop(), &PRICES, 0, Method::ClosedForm).unwrap();
        assert!((out.optimal_input - 27.0).abs() < 0.1, "{out:?}");
        assert!((out.token_profit - 16.8).abs() < 0.1, "{out:?}");
        assert!((out.monetized.value() - 33.7).abs() < 0.3, "{out:?}");
    }

    #[test]
    fn paper_rotation_y() {
        // Paper: input 31.5 Y, profit 19.7 Y, monetized $201.1.
        let out = evaluate(&paper_loop(), &PRICES, 1, Method::ClosedForm).unwrap();
        assert!((out.optimal_input - 31.5).abs() < 0.1, "{out:?}");
        assert!((out.token_profit - 19.7).abs() < 0.1, "{out:?}");
        assert!((out.monetized.value() - 201.1).abs() < 0.5, "{out:?}");
    }

    #[test]
    fn paper_rotation_z() {
        // Paper: input 16.4 Z, profit 10.3 Z, monetized $205.6.
        let out = evaluate(&paper_loop(), &PRICES, 2, Method::ClosedForm).unwrap();
        assert!((out.optimal_input - 16.4).abs() < 0.1, "{out:?}");
        assert!((out.token_profit - 10.3).abs() < 0.1, "{out:?}");
        assert!((out.monetized.value() - 205.6).abs() < 0.5, "{out:?}");
    }

    #[test]
    fn all_methods_agree_on_paper_loop() {
        let l = paper_loop();
        for start in 0..3 {
            let reference = evaluate(&l, &PRICES, start, Method::ClosedForm).unwrap();
            for method in [Method::Bisection, Method::Newton, Method::GoldenSection] {
                let out = evaluate(&l, &PRICES, start, method).unwrap();
                assert!(
                    (out.optimal_input - reference.optimal_input).abs()
                        < 1e-5 * (1.0 + reference.optimal_input),
                    "{method:?} start {start}: {} vs {}",
                    out.optimal_input,
                    reference.optimal_input
                );
            }
        }
    }

    #[test]
    fn unprofitable_rotation_is_zero() {
        let fee = FeeRate::UNISWAP_V2;
        let l = ArbLoop::new(
            vec![
                SwapCurve::new(100.0, 100.0, fee).unwrap(),
                SwapCurve::new(100.0, 100.0, fee).unwrap(),
            ],
            vec![TokenId::new(0), TokenId::new(1)],
        )
        .unwrap();
        let out = evaluate(&l, &[1.0, 1.0], 0, Method::Bisection).unwrap();
        assert_eq!(out.optimal_input, 0.0);
        assert_eq!(out.token_profit, 0.0);
    }

    #[test]
    fn first_order_condition_holds_at_optimum() {
        let l = paper_loop();
        for start in 0..3 {
            let hops = l.rotated_hops(start).unwrap();
            let (input, _) = optimal_input(&hops, Method::ClosedForm).unwrap();
            let d = chain_derivative(&hops, input);
            assert!((d - 1.0).abs() < 1e-9, "dΔout/dΔin = {d} at optimum");
        }
    }

    #[test]
    fn chain_derivatives_match_finite_differences() {
        let l = paper_loop();
        let hops = l.hops();
        for x in [0.5, 5.0, 20.0, 100.0] {
            let h = 1e-5 * (1.0 + x);
            let fd1 = (chain_output(hops, x + h) - chain_output(hops, x - h)) / (2.0 * h);
            let an1 = chain_derivative(hops, x);
            assert!((fd1 - an1).abs() < 1e-4 * (1.0 + an1.abs()), "x={x}");
            let fd2 = (chain_derivative(hops, x + h) - chain_derivative(hops, x - h)) / (2.0 * h);
            let an2 = chain_second_derivative(hops, x);
            assert!((fd2 - an2).abs() < 1e-3 * (1.0 + an2.abs()), "x={x}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn methods_agree_on_random_loops(
            r in proptest::collection::vec(50.0..50_000.0f64, 6),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let hops = vec![
                SwapCurve::new(r[0], r[1], fee).unwrap(),
                SwapCurve::new(r[2], r[3], fee).unwrap(),
                SwapCurve::new(r[4], r[5], fee).unwrap(),
            ];
            let (reference, ref_profit) = optimal_input(&hops, Method::ClosedForm).unwrap();
            for method in [Method::Bisection, Method::Newton, Method::GoldenSection] {
                let (x, p) = optimal_input(&hops, method).unwrap();
                prop_assert!((x - reference).abs() < 1e-4 * (1.0 + reference),
                    "{method:?}: {x} vs {reference}");
                prop_assert!((p - ref_profit).abs() < 1e-6 * (1.0 + ref_profit));
            }
            // The optimum is never negative-profit.
            prop_assert!(ref_profit >= 0.0);
        }
    }
}
