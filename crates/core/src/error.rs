//! Error type for strategy evaluation.

use arb_amm::token::TokenId;
use std::error::Error;
use std::fmt;

/// Errors from strategy evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StrategyError {
    /// A loop needs at least two hops with aligned token labels.
    InvalidLoop,
    /// No CEX price is available for a loop token.
    MissingPrice(TokenId),
    /// The rotation index exceeds the loop length.
    RotationOutOfRange,
    /// Convex solver failure.
    Convex(arb_convex::ConvexError),
    /// Scalar optimizer failure.
    Numerics(arb_numerics::NumericsError),
    /// Pool math failure.
    Amm(arb_amm::AmmError),
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::InvalidLoop => {
                write!(f, "loop must have at least 2 aligned hops and tokens")
            }
            StrategyError::MissingPrice(t) => write!(f, "no cex price for token {t}"),
            StrategyError::RotationOutOfRange => write!(f, "rotation index out of range"),
            StrategyError::Convex(e) => write!(f, "convex error: {e}"),
            StrategyError::Numerics(e) => write!(f, "numerics error: {e}"),
            StrategyError::Amm(e) => write!(f, "amm error: {e}"),
        }
    }
}

impl Error for StrategyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StrategyError::Convex(e) => Some(e),
            StrategyError::Numerics(e) => Some(e),
            StrategyError::Amm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_convex::ConvexError> for StrategyError {
    fn from(e: arb_convex::ConvexError) -> Self {
        StrategyError::Convex(e)
    }
}

impl From<arb_numerics::NumericsError> for StrategyError {
    fn from(e: arb_numerics::NumericsError) -> Self {
        StrategyError::Numerics(e)
    }
}

impl From<arb_amm::AmmError> for StrategyError {
    fn from(e: arb_amm::AmmError) -> Self {
        StrategyError::Amm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(StrategyError::MissingPrice(TokenId::new(3))
            .to_string()
            .contains("T3"));
        let e = StrategyError::Amm(arb_amm::AmmError::Overflow);
        assert!(e.source().is_some());
        assert!(StrategyError::InvalidLoop.source().is_none());
    }
}
