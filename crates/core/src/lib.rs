//! Arbitrage-loop profit maximization strategies — the paper's
//! contribution.
//!
//! Given an arbitrage loop through CPMM pools and CEX (USD) token prices,
//! this crate implements and compares the four strategies of *"Profit
//! Maximization In Arbitrage Loops"* (ICDCS 2024):
//!
//! * [`traditional`] — fix a start token, optimize the input amount for
//!   maximal profit *in that token* (the literature's default). Four
//!   interchangeable optimizers: the Möbius closed form, bisection on
//!   `dΔout/dΔin = 1` (the paper's method), safeguarded Newton, and
//!   golden-section — cross-validated against each other in tests.
//! * [`maxprice`] — run Traditional from the loop token with the highest
//!   CEX price. The paper shows this heuristic is *unreliable*.
//! * [`maxmax`] — run Traditional from every rotation, monetize each
//!   profit at CEX prices, take the maximum.
//! * [`convexopt`] — solve the paper's eq. 8 convex program (via
//!   `arb-convex`), which provably dominates MaxMax.
//!
//! [`report`] evaluates all strategies on one loop (the row behind the
//! paper's Figs. 5–8) and [`batch`] fans comparisons out across loops in
//! parallel.
//!
//! # Quickstart — the paper's §V example
//!
//! ```
//! use arb_amm::{curve::SwapCurve, fee::FeeRate, token::TokenId};
//! use arb_core::loop_def::ArbLoop;
//! use arb_core::{maxmax, report::compare};
//!
//! # fn main() -> Result<(), arb_core::StrategyError> {
//! let fee = FeeRate::UNISWAP_V2;
//! let loop_ = ArbLoop::new(
//!     vec![
//!         SwapCurve::new(100.0, 200.0, fee)?,
//!         SwapCurve::new(300.0, 200.0, fee)?,
//!         SwapCurve::new(200.0, 400.0, fee)?,
//!     ],
//!     vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
//! )?;
//! let prices = [2.0, 10.2, 20.0];
//! let best = maxmax::evaluate(&loop_, &prices)?;
//! assert!((best.best.monetized.value() - 205.6).abs() < 0.5);
//! let row = compare(&loop_, &prices, &Default::default())?;
//! assert!(row.convex >= row.maxmax);
//! # Ok(())
//! # }
//! ```

pub mod backoff;
pub mod batch;
pub mod convexopt;
pub mod error;
pub mod loop_def;
pub mod maxmax;
pub mod maxprice;
pub mod monetize;
pub mod report;
pub mod strategy;
pub mod traditional;

pub use backoff::{Backoff, BackoffConfig, Clock, ManualClock, MonotonicClock};
pub use error::StrategyError;
pub use loop_def::ArbLoop;
pub use monetize::Usd;
pub use strategy::{ConvexOptimization, MaxMax, MaxPrice, Strategy, StrategyOutcome, Traditional};
