//! Deterministic bounded exponential backoff with an injectable clock.
//!
//! Failure-handling layers (the ingest health machine, the journal's
//! degraded write mode, chaos-recovery supervisors) all need the same
//! primitive: *after N consecutive failures, wait `min(base·2^(N−1),
//! max)` before trying again* — with no jitter and no hidden wall-clock
//! reads, so a replay of the same failure sequence produces the same
//! retry schedule bit for bit.
//!
//! Time is supplied by the caller through the [`Clock`] trait (the same
//! injection pattern as `arb-serve`'s admission governor, whose clock
//! types are re-exported from here). The unit is whatever the caller's
//! clock measures: wall nanoseconds under [`MonotonicClock`], hand
//! cranked under [`ManualClock`], or a plain tick/seal counter when the
//! caller wants a purely logical schedule.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source. Injectable so tests and deterministic
/// harnesses drive time explicitly instead of reading the wall clock.
pub trait Clock: Send + Sync {
    /// Clock reading in the clock's own units (nanoseconds for
    /// [`MonotonicClock`]) since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

impl fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Clock")
    }
}

/// Wall-clock time from [`Instant`], anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests and harnesses.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

/// Sizing for a [`Backoff`]: the first-failure delay and the ceiling it
/// doubles up to. Units are whatever the caller's clock measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Delay after the first failure.
    pub base: u64,
    /// Upper bound on the delay, however many failures accumulate.
    pub max: u64,
}

impl BackoffConfig {
    /// A config with `base` doubling up to `max` (swapped if reversed).
    #[must_use]
    pub fn new(base: u64, max: u64) -> Self {
        Self {
            base: base.min(max),
            max: base.max(max),
        }
    }
}

/// Deterministic bounded exponential backoff.
///
/// Pure state machine: `record_failure(now)` schedules the next attempt
/// at `now + min(base·2^(failures−1), max)`, `record_success` resets,
/// and `is_ready(now)` gates retries. No randomness, no internal clock
/// reads — the same sequence of calls always yields the same schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    config: BackoffConfig,
    failures: u32,
    ready_at: u64,
}

impl Backoff {
    #[must_use]
    pub fn new(config: BackoffConfig) -> Self {
        Self {
            config,
            failures: 0,
            ready_at: 0,
        }
    }

    /// The delay the *current* failure count imposes: `0` when clean,
    /// otherwise `min(base·2^(failures−1), max)` with saturating
    /// doubling.
    #[must_use]
    pub fn delay(&self) -> u64 {
        if self.failures == 0 {
            return 0;
        }
        let exp = u32::min(self.failures - 1, 63);
        self.config
            .base
            .checked_mul(1u64 << exp)
            .map_or(self.config.max, |d| d.min(self.config.max))
    }

    /// Records a failure observed at `now`, deepening the delay and
    /// pushing the next allowed attempt to `now + delay()`.
    pub fn record_failure(&mut self, now: u64) {
        self.failures = self.failures.saturating_add(1);
        self.ready_at = now.saturating_add(self.delay());
    }

    /// Records a success: the schedule resets and attempts are
    /// immediately allowed again.
    pub fn record_success(&mut self) {
        self.failures = 0;
        self.ready_at = 0;
    }

    /// Whether an attempt is allowed at `now`.
    #[must_use]
    pub fn is_ready(&self, now: u64) -> bool {
        now >= self.ready_at
    }

    /// Consecutive failures recorded since the last success.
    #[must_use]
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Clock reading at which the next attempt becomes allowed.
    #[must_use]
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delays_double_and_saturate_at_max() {
        let mut backoff = Backoff::new(BackoffConfig::new(10, 80));
        assert_eq!(backoff.delay(), 0);
        let mut delays = Vec::new();
        for _ in 0..6 {
            backoff.record_failure(0);
            delays.push(backoff.delay());
        }
        assert_eq!(delays, vec![10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn extreme_failure_counts_do_not_overflow() {
        let mut backoff = Backoff::new(BackoffConfig::new(u64::MAX / 2, u64::MAX));
        for _ in 0..200 {
            backoff.record_failure(u64::MAX - 1);
        }
        assert_eq!(backoff.delay(), u64::MAX);
        assert!(!backoff.is_ready(u64::MAX - 2));
    }

    #[test]
    fn success_resets_the_schedule() {
        let mut backoff = Backoff::new(BackoffConfig::new(5, 40));
        backoff.record_failure(100);
        backoff.record_failure(105);
        assert_eq!(backoff.failures(), 2);
        assert!(!backoff.is_ready(105));
        backoff.record_success();
        assert_eq!(backoff.failures(), 0);
        assert!(backoff.is_ready(0));
    }

    #[test]
    fn manual_clock_drives_readiness() {
        let clock = ManualClock::new();
        let mut backoff = Backoff::new(BackoffConfig::new(100, 1_000));
        backoff.record_failure(clock.now_nanos());
        assert!(!backoff.is_ready(clock.now_nanos()));
        clock.advance(99);
        assert!(!backoff.is_ready(clock.now_nanos()));
        clock.advance(1);
        assert!(backoff.is_ready(clock.now_nanos()));
        // A second failure at t=100 doubles the delay: ready at 300.
        backoff.record_failure(clock.now_nanos());
        clock.advance(199);
        assert!(!backoff.is_ready(clock.now_nanos()));
        clock.advance(1);
        assert!(backoff.is_ready(clock.now_nanos()));
    }

    #[test]
    fn identical_histories_yield_identical_schedules() {
        let run = || {
            let mut backoff = Backoff::new(BackoffConfig::new(3, 24));
            let mut schedule = Vec::new();
            for now in [0u64, 5, 9, 40, 41] {
                backoff.record_failure(now);
                schedule.push((backoff.delay(), backoff.ready_at()));
            }
            schedule
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clock_trait_objects_work() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(format!("{:?}", &*clock), "Clock");
        let wall: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let first = wall.now_nanos();
        assert!(wall.now_nanos() >= first);
    }

    #[test]
    fn reversed_config_bounds_are_repaired() {
        let config = BackoffConfig::new(500, 5);
        assert_eq!(config, BackoffConfig::new(5, 500));
    }
}
