//! Monetized profit: token amounts × CEX prices.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A USD amount — the unit all strategies are compared in.
///
/// A newtype rather than a bare `f64` so token amounts and dollar amounts
/// cannot be mixed up in strategy code.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Usd(f64);

impl Usd {
    /// Zero dollars.
    pub const ZERO: Usd = Usd(0.0);

    /// Wraps a dollar amount.
    pub fn new(value: f64) -> Self {
        Usd(value)
    }

    /// The raw `f64` value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The larger of two amounts.
    pub fn max(self, other: Usd) -> Usd {
        Usd(self.0.max(other.0))
    }
}

impl Add for Usd {
    type Output = Usd;

    fn add(self, rhs: Usd) -> Usd {
        Usd(self.0 + rhs.0)
    }
}

impl AddAssign for Usd {
    fn add_assign(&mut self, rhs: Usd) {
        self.0 += rhs.0;
    }
}

impl Sub for Usd {
    type Output = Usd;

    fn sub(self, rhs: Usd) -> Usd {
        Usd(self.0 - rhs.0)
    }
}

impl Sum for Usd {
    fn sum<I: Iterator<Item = Usd>>(iter: I) -> Usd {
        Usd(iter.map(|u| u.0).sum())
    }
}

impl std::fmt::Display for Usd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

/// Monetizes per-token profits against aligned prices:
/// `Σ_j profits[j] · prices[j]`.
///
/// # Panics
///
/// Debug-asserts equal lengths.
pub fn monetize(token_profits: &[f64], prices: &[f64]) -> Usd {
    debug_assert_eq!(token_profits.len(), prices.len());
    Usd(token_profits
        .iter()
        .zip(prices)
        .map(|(amount, price)| amount * price)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_display() {
        let a = Usd::new(10.0);
        let b = Usd::new(2.5);
        assert_eq!((a + b).value(), 12.5);
        assert_eq!((a - b).value(), 7.5);
        assert_eq!(a.max(b), a);
        assert_eq!(format!("{a}"), "$10.00");
        let total: Usd = [a, b].into_iter().sum();
        assert_eq!(total.value(), 12.5);
    }

    #[test]
    fn monetize_weights_by_price() {
        // The paper's convex plan: ~5 Y at $10.2 + ~7.7 Z at $20.
        let m = monetize(&[0.0, 5.0, 7.7], &[2.0, 10.2, 20.0]);
        assert!((m.value() - 205.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(Usd::new(1.0) > Usd::ZERO);
        assert!(Usd::new(-1.0) < Usd::ZERO);
    }
}
