//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides deterministic random-input property testing without shrinking:
//! the [`proptest!`] macro runs each property for `ProptestConfig::cases`
//! deterministic random cases. Strategies cover what the workspace needs —
//! numeric ranges, tuples, `any::<bool|u64>()`, and
//! [`collection::vec`] — and failing inputs are reported via the panic
//! message (no shrinking, so failures print the raw case).

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-property configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies (deterministic per test function).
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG derived from the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// A weighted union of same-valued strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    /// A union drawing each arm with probability `weight / Σ weights`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or every weight is zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(weight, _)| *weight).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.sample(rng);
            }
            pick -= *weight;
        }
        unreachable!("pick is bounded by the weight total")
    }
}

/// Boxes a strategy for storage in a [`Union`] (lets [`prop_oneof!`]
/// unify differently typed arms without type ascription).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Chooses between strategies, optionally weighted — the upstream
/// `prop_oneof![w1 => s1, w2 => s2, ...]` / `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((($weight) as u32, $crate::boxed($strategy))),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::boxed($strategy))),+])
    };
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// A length spec for [`vec()`]: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// The error type property bodies may `return Err(..)` with (bodies run
/// as `Result`-returning closures, exactly like upstream proptest).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// Asserts a property-condition (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Defines property tests over random inputs.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a `#[test]`
/// (the `#[test]` attribute is written explicitly on each item, as upstream
/// proptest also accepts) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    // The closure exists so `return Ok(())` skips a case,
                    // matching upstream proptest's Result-typed bodies.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        let ($($pat,)+) = ($($crate::Strategy::sample(&($strategy), &mut rng),)+);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    outcome.expect("property returned Err");
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.0..2.0f64, n in 3u32..9) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn tuples_and_vecs(ops in crate::collection::vec((0u32..3, any::<bool>(), 1.0..100.0f64), 1..40)) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
            for (op, _flag, amount) in ops {
                prop_assert!(op < 3);
                prop_assert!((1.0..100.0).contains(&amount));
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_transforms(n in (0u32..5).prop_map(|x| x * 10)) {
            prop_assert_eq!(n % 10, 0);
            prop_assert!(n < 50);
        }

        #[test]
        fn prop_oneof_draws_every_weighted_arm(
            picks in crate::collection::vec(
                prop_oneof![
                    3 => (0u32..1).prop_map(|_| "heavy"),
                    1 => (0u32..1).prop_map(|_| "light"),
                ],
                64,
            )
        ) {
            prop_assert!(picks.contains(&"heavy"));
            prop_assert!(picks.iter().all(|&p| p == "heavy" || p == "light"));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = 0.0..1.0f64;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a).to_bits(), s.sample(&mut b).to_bits());
        }
    }
}
