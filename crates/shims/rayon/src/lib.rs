//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Provides `par_iter().map(..).collect()` over slices, implemented with
//! `std::thread::scope` and contiguous chunking. Results preserve input
//! order exactly, so a parallel stage is bit-identical to its serial
//! equivalent. The worker count defaults to the machine's available
//! parallelism.

use std::num::NonZeroUsize;

/// The number of worker threads used by parallel iterators.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel iterator types.
pub mod iter {
    /// A parallel iterator over `&[T]`.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    /// A mapped parallel iterator, ready to collect.
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps every element through `f` in parallel.
        pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Number of elements.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Whether the iterator is empty.
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
        /// Runs the map in parallel and collects, preserving input order.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let workers = super::current_num_threads().clamp(1, self.items.len().max(1));
            if workers == 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let chunk_size = self.items.len().div_ceil(workers);
            let f = &self.f;
            let mut chunk_results: Vec<Vec<U>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk_size)
                    .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                    .collect();
                chunk_results = handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-shim worker panicked"))
                    .collect();
            });
            chunk_results.into_iter().flatten().collect()
        }
    }

    /// A parallel iterator over `&mut [T]`.
    pub struct ParIterMut<'a, T> {
        items: &'a mut [T],
    }

    /// A mapped mutable parallel iterator, ready to collect.
    pub struct ParMapMut<'a, T, F> {
        items: &'a mut [T],
        f: F,
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Maps every element through `f` in parallel, with mutable
        /// access. One worker owns each contiguous chunk, so `f` never
        /// observes another worker's element.
        pub fn map<U: Send, F: Fn(&mut T) -> U + Sync>(self, f: F) -> ParMapMut<'a, T, F> {
            ParMapMut {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every element in parallel **in place**, without
        /// collecting anything — the fan-out shape for callers that write
        /// results into the elements themselves (e.g. a scratch arena's
        /// evaluation slots) and must not allocate per-item output.
        pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
            let workers = super::current_num_threads().clamp(1, self.items.len().max(1));
            if workers == 1 {
                self.items.iter_mut().for_each(f);
                return;
            }
            let chunk_size = self.items.len().div_ceil(workers);
            let f = &f;
            std::thread::scope(|scope| {
                for chunk in self.items.chunks_mut(chunk_size) {
                    scope.spawn(move || chunk.iter_mut().for_each(f));
                }
            });
        }

        /// Number of elements.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Whether the iterator is empty.
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    impl<T: Send, U: Send, F: Fn(&mut T) -> U + Sync> ParMapMut<'_, T, F> {
        /// Runs the map in parallel and collects, preserving input order.
        pub fn collect<C: FromIterator<U>>(self) -> C {
            let workers = super::current_num_threads().clamp(1, self.items.len().max(1));
            if workers == 1 {
                return self.items.iter_mut().map(&self.f).collect();
            }
            let chunk_size = self.items.len().div_ceil(workers);
            let f = &self.f;
            let mut chunk_results: Vec<Vec<U>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .items
                    .chunks_mut(chunk_size)
                    .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<U>>()))
                    .collect();
                chunk_results = handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-shim worker panicked"))
                    .collect();
            });
            chunk_results.into_iter().flatten().collect()
        }
    }

    /// Types convertible into a parallel iterator by reference.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates the parallel iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    /// Types convertible into a parallel iterator by mutable reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates the mutable parallel iterator.
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

/// The common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParIterMut, ParMap, ParMapMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collects_results() {
        let items: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, String> = items.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = items
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = items.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_iter_mut_mutates_and_preserves_order() {
        let mut items: Vec<u64> = (0..1_000).collect();
        let doubled: Vec<u64> = items
            .par_iter_mut()
            .map(|x| {
                *x *= 2;
                *x
            })
            .collect();
        assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(items, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_for_each_mutates_in_place() {
        let mut items: Vec<u64> = (0..1_000).collect();
        items.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(items, (0..1_000).map(|x| x * 3).collect::<Vec<_>>());
        let mut empty: Vec<u64> = Vec::new();
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_iter_mut_collects_results() {
        let mut items: Vec<u64> = (0..100).collect();
        let err: Result<Vec<u64>, String> = items
            .par_iter_mut()
            .map(|x| {
                if *x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(*x)
                }
            })
            .collect();
        assert!(err.is_err());
        let mut empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
