//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements a minimal but honest measurement loop: every benchmark is
//! warmed up, then timed over enough iterations to fill a measurement
//! window, and the mean ns/iter is printed. No statistics beyond the mean,
//! no HTML reports — the point is that `cargo bench` runs offline and
//! produces comparable numbers between commits on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters_hint: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..3.min(self.iters_hint) {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        let window = Duration::from_millis(200);
        while start.elapsed() < window && iters < self.iters_hint {
            black_box(f());
            iters += 1;
        }
        let total = start.elapsed();
        self.last_mean_ns = if iters == 0 {
            f64::NAN
        } else {
            total.as_nanos() as f64 / iters as f64
        };
    }

    /// Times `routine`, rebuilding its input with `setup` outside the
    /// measured region each iteration.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        for _ in 0..3.min(self.iters_hint) {
            black_box(routine(setup()));
        }
        let window = Duration::from_millis(200);
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < window && iters < self.iters_hint {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.last_mean_ns = if iters == 0 {
            f64::NAN
        } else {
            measured.as_nanos() as f64 / iters as f64
        };
    }
}

/// A benchmark identifier: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_hint: sample_size.max(1) * 100,
        last_mean_ns: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.last_mean_ns;
    if ns.is_finite() {
        println!("{label:<50} {:>14.1} ns/iter", ns);
    } else {
        println!("{label:<50} {:>14} ns/iter", "-");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration budget (kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 100, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("g", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
