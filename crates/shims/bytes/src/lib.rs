//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: little-endian put/get of `u8`/`u32`/`u64`/`u128`,
//! `BytesMut::freeze`, and cursor-style consumption via the [`Buf`]
//! trait.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes one byte. Panics when empty.
    fn get_u8(&mut self) -> u8;

    /// Consumes a little-endian `u32`. Panics on underrun.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes a little-endian `u64`. Panics on underrun.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes a little-endian `u128`. Panics on underrun.
    fn get_u128_le(&mut self) -> u128;
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] cursor.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte view with a consumption cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// A cursor over a copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// A cursor over static data.
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A sub-range of the unconsumed bytes as a fresh cursor.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "bytes underrun");
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_u128_le(&mut self) -> u128 {
        u128::from_le_bytes(self.take(16).try_into().expect("16 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_u128_le(u128::MAX - 3);
        assert_eq!(buf.len(), 1 + 4 + 8 + 16);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.get_u128_le(), u128::MAX - 3);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slice_is_a_fresh_cursor() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(2);
        let frozen = buf.freeze();
        let mut head = frozen.slice(0..4);
        assert_eq!(head.remaining(), 4);
        assert_eq!(head.get_u32_le(), 1);
        assert!(head.is_empty());
    }

    #[test]
    #[should_panic(expected = "bytes underrun")]
    fn underrun_panics() {
        let mut bytes = Bytes::from_static(&[1, 2]);
        let _ = bytes.get_u32_le();
    }
}
