//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no registry access, so this shim provides the
//! exact API surface the workspace consumes — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and [`Rng::gen_bool`]
//! — backed by the xoshiro256++ generator seeded through SplitMix64.
//!
//! The streams differ from upstream `rand`; everything in this workspace
//! that depends on randomness is either property-based or loops until a
//! structural target is met, so only determinism-per-seed matters.

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// A sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let span = high - low;
        let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        low + v
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // The closed upper bound is hit with probability ~2^-53; treating
        // the range as half-open is indistinguishable in practice.
        f64::sample_half_open(rng, *self.start(), f64::next_up(*self.end()))
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (not the upstream ChaCha-based `StdRng`, but an equally
    /// deterministic stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&heads), "heads={heads}");
    }
}
