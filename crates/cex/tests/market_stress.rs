//! Order-book and venue behaviour under randomized stress.

use arb_amm::token::TokenId;
use arb_cex::feed::PriceFeed;
use arb_cex::orderbook::{OrderBook, Side};
use arb_cex::venue::{Exchange, MarketConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantity conservation under arbitrary mixed order flow: everything
    /// traded + everything resting + everything cancelled-or-IOC-dropped
    /// equals everything submitted.
    #[test]
    fn order_flow_conserves_quantity(
        ops in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 1..500u64, 1..100u64), 1..120
        )
    ) {
        let mut book = OrderBook::new();
        let mut submitted: u64 = 0;
        let mut traded: u64 = 0;
        for (is_bid, is_market, price, qty) in ops {
            let side = if is_bid { Side::Bid } else { Side::Ask };
            submitted += qty;
            let trades = if is_market {
                let (_, trades) = book.submit_market(side, qty).unwrap();
                // IOC remainder evaporates; count it as resolved.
                trades
            } else {
                let (_, trades) = book.submit_limit(side, price, qty).unwrap();
                trades
            };
            traded += 2 * trades.iter().map(|t| t.quantity).sum::<u64>();
        }
        let resting = book.depth(Side::Bid) + book.depth(Side::Ask);
        // Each executed lot consumes one maker lot and one taker lot
        // (hence the 2×); what remains rests or was dropped.
        prop_assert!(traded + resting <= submitted * 2);
        prop_assert!(resting <= submitted);
        // The book never ends crossed.
        if let (Some(b), Some(a)) = (book.best_bid(), book.best_ask()) {
            prop_assert!(b < a);
        }
    }

    /// Mid prices stay strictly positive and finite across any volatility
    /// configuration in the supported range.
    #[test]
    fn venue_mids_stay_positive(
        seed in any::<u64>(),
        vol in 0.0..0.05f64,
        initial in 0.1..10_000.0f64,
        ticks in 1..120usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ex = Exchange::new("stress");
        let token = TokenId::new(0);
        ex.add_market(token, MarketConfig {
            volatility: vol,
            ..MarketConfig::new(initial)
        });
        for _ in 0..ticks {
            ex.tick(&mut rng);
        }
        let mid = ex.usd_price(token).unwrap();
        prop_assert!(mid.is_finite() && mid > 0.0, "mid = {mid}");
    }
}

#[test]
fn multi_market_exchange_is_isolated() {
    // Activity in one market must not leak prices into another.
    let mut rng = StdRng::seed_from_u64(3);
    let mut ex = Exchange::new("iso");
    let stable = TokenId::new(0);
    let volatile = TokenId::new(1);
    ex.add_market(
        stable,
        MarketConfig {
            volatility: 0.0,
            noise_intensity: 0.0,
            ..MarketConfig::new(1.0)
        },
    );
    ex.add_market(
        volatile,
        MarketConfig {
            volatility: 0.05,
            ..MarketConfig::new(100.0)
        },
    );
    for _ in 0..200 {
        ex.tick(&mut rng);
    }
    let stable_mid = ex.usd_price(stable).unwrap();
    // Zero volatility and no noise: the stable market's mid never moves
    // beyond its own spread.
    assert!(
        (stable_mid - 1.0).abs() < 0.01,
        "stable mid drifted: {stable_mid}"
    );
}
