//! Error type for exchange simulation.

use std::error::Error;
use std::fmt;

/// Errors from CEX simulation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CexError {
    /// The referenced market does not exist on this exchange.
    UnknownMarket,
    /// A price or quantity was zero, negative, or non-finite.
    InvalidParameter,
    /// The referenced order id is not resting in the book.
    UnknownOrder,
}

impl fmt::Display for CexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CexError::UnknownMarket => "market does not exist on this exchange",
            CexError::InvalidParameter => "parameter must be positive and finite",
            CexError::UnknownOrder => "order id is not resting in the book",
        };
        f.write_str(msg)
    }
}

impl Error for CexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!CexError::UnknownMarket.to_string().is_empty());
        assert!(!CexError::InvalidParameter.to_string().is_empty());
        assert!(!CexError::UnknownOrder.to_string().is_empty());
    }
}
