//! Per-token USD markets and multi-market exchanges.

use std::collections::BTreeMap;

use arb_amm::token::TokenId;
use rand::Rng;

use crate::error::CexError;
use crate::feed::{PriceFeed, PriceTable};
use crate::market_maker::MarketMaker;
use crate::orderbook::{OrderBook, Side, Trade};
use crate::random_walk::Gbm;

/// Ticks per USD: prices are quoted with 1e-6 USD precision.
pub const TICKS_PER_USD: f64 = 1_000_000.0;

/// Configuration for one token/USD market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarketConfig {
    /// Initial reference price in USD.
    pub initial_price: f64,
    /// GBM per-tick drift.
    pub drift: f64,
    /// GBM per-tick volatility.
    pub volatility: f64,
    /// Market-maker half spread in basis points.
    pub half_spread_bps: f64,
    /// Market-maker quote size in lots.
    pub quote_lots: u64,
    /// Probability per tick that a noise trader sends a market order.
    pub noise_intensity: f64,
    /// Maximum noise order size in lots.
    pub noise_max_lots: u64,
}

impl MarketConfig {
    /// Sensible defaults around the given initial USD price.
    pub fn new(initial_price: f64) -> Self {
        MarketConfig {
            initial_price,
            drift: 0.0,
            volatility: 0.002,
            half_spread_bps: 5.0,
            quote_lots: 10_000,
            noise_intensity: 0.7,
            noise_max_lots: 500,
        }
    }
}

/// One token's USD market: order book + reference process + agents.
#[derive(Debug, Clone)]
pub struct Venue {
    book: OrderBook,
    reference: Gbm,
    maker: MarketMaker,
    config: MarketConfig,
    trades: Vec<Trade>,
}

impl Venue {
    /// Creates a venue from a config.
    ///
    /// # Panics
    ///
    /// Panics on non-positive initial price (see [`Gbm::new`]).
    pub fn new(config: MarketConfig) -> Self {
        Venue {
            book: OrderBook::new(),
            reference: Gbm::new(config.initial_price, config.drift, config.volatility),
            maker: MarketMaker::new(config.half_spread_bps, config.quote_lots),
            config,
            trades: Vec::new(),
        }
    }

    /// Advances the market one tick: reference moves, the maker requotes,
    /// and (probabilistically) a noise trader crosses the spread.
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<(), CexError> {
        let reference = self.reference.step(rng);
        let reference_ticks = (reference * TICKS_PER_USD).round().max(1.0) as u64;
        self.maker.requote(&mut self.book, reference_ticks)?;
        if rng.gen_bool(self.config.noise_intensity.clamp(0.0, 1.0)) {
            let side = if rng.gen_bool(0.5) {
                Side::Bid
            } else {
                Side::Ask
            };
            let lots = rng.gen_range(1..=self.config.noise_max_lots.max(1));
            let (_, trades) = self.book.submit_market(side, lots)?;
            self.trades.extend(trades);
        }
        Ok(())
    }

    /// Mid price in USD (book mid if two-sided, else the reference).
    pub fn mid_usd(&self) -> f64 {
        self.book
            .mid_ticks()
            .map_or(self.reference.price(), |m| m / TICKS_PER_USD)
    }

    /// All fills so far (noise flow against the maker).
    pub fn trades(&self) -> &[Trade] {
        &self.trades
    }

    /// The current book (for inspection).
    pub fn book(&self) -> &OrderBook {
        &self.book
    }
}

/// An exchange hosting one USD market per token — a Binance stand-in.
#[derive(Debug, Clone)]
pub struct Exchange {
    name: String,
    markets: BTreeMap<TokenId, Venue>,
}

impl Exchange {
    /// Creates an empty exchange.
    pub fn new(name: &str) -> Self {
        Exchange {
            name: name.to_owned(),
            markets: BTreeMap::new(),
        }
    }

    /// The exchange name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lists (adds) a market for `token`.
    pub fn add_market(&mut self, token: TokenId, config: MarketConfig) {
        self.markets.insert(token, Venue::new(config));
    }

    /// Number of listed markets.
    pub fn market_count(&self) -> usize {
        self.markets.len()
    }

    /// Advances every market one tick (deterministic in iteration order:
    /// markets tick in ascending token order).
    pub fn tick<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for venue in self.markets.values_mut() {
            // Quoting can only fail for sub-tick prices; skip such markets
            // this tick rather than poisoning the whole exchange.
            let _ = venue.tick(rng);
        }
    }

    /// The venue for a token.
    ///
    /// # Errors
    ///
    /// Returns [`CexError::UnknownMarket`] when the token is not listed.
    pub fn market(&self, token: TokenId) -> Result<&Venue, CexError> {
        self.markets.get(&token).ok_or(CexError::UnknownMarket)
    }

    /// Snapshot of all mid prices as a [`PriceTable`].
    pub fn price_table(&self) -> PriceTable {
        self.markets
            .iter()
            .map(|(t, v)| (*t, v.mid_usd()))
            .collect()
    }
}

impl PriceFeed for Exchange {
    fn usd_price(&self, token: TokenId) -> Option<f64> {
        self.markets.get(&token).map(Venue::mid_usd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn venue_mid_tracks_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut venue = Venue::new(MarketConfig::new(2000.0));
        for _ in 0..200 {
            venue.tick(&mut rng).unwrap();
        }
        let mid = venue.mid_usd();
        // 200 ticks of 0.2% vol: price should stay within a broad band.
        assert!(mid > 1000.0 && mid < 4000.0, "mid={mid}");
    }

    #[test]
    fn venue_generates_trades() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut venue = Venue::new(MarketConfig::new(100.0));
        for _ in 0..100 {
            venue.tick(&mut rng).unwrap();
        }
        assert!(!venue.trades().is_empty(), "noise flow should trade");
    }

    #[test]
    fn exchange_prices_all_markets() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ex = Exchange::new("binance");
        ex.add_market(t(0), MarketConfig::new(2000.0));
        ex.add_market(t(1), MarketConfig::new(1.0));
        for _ in 0..50 {
            ex.tick(&mut rng);
        }
        assert_eq!(ex.market_count(), 2);
        let table = ex.price_table();
        assert_eq!(table.len(), 2);
        assert!(table.usd_price(t(0)).unwrap() > 100.0);
        assert!(table.usd_price(t(1)).unwrap() < 100.0);
        assert_eq!(ex.usd_price(t(2)), None);
        assert!(ex.market(t(2)).is_err());
    }

    #[test]
    fn determinism_by_seed() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ex = Exchange::new("x");
            ex.add_market(t(0), MarketConfig::new(50.0));
            for _ in 0..100 {
                ex.tick(&mut rng);
            }
            ex.usd_price(t(0)).unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
