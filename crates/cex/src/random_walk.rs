//! Geometric Brownian motion reference prices.

use arb_numerics::stats::box_muller;
use rand::Rng;

/// A geometric Brownian motion price process:
/// `S ← S·exp((μ − σ²/2)·Δt + σ·√Δt·Z)` per step with `Δt = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gbm {
    price: f64,
    drift: f64,
    volatility: f64,
}

impl Gbm {
    /// Creates a process at `initial_price` with per-step drift `μ` and
    /// volatility `σ`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_price` is not positive/finite or `volatility` is
    /// negative.
    pub fn new(initial_price: f64, drift: f64, volatility: f64) -> Self {
        assert!(
            initial_price.is_finite() && initial_price > 0.0,
            "initial price must be positive"
        );
        assert!(volatility >= 0.0, "volatility must be non-negative");
        Gbm {
            price: initial_price,
            drift,
            volatility,
        }
    }

    /// Current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Advances one step and returns the new price.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let (z, _) = box_muller(u1, u2);
        let exponent = self.drift - 0.5 * self.volatility * self.volatility + self.volatility * z;
        self.price *= exponent.exp();
        self.price
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_numerics::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn price_stays_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gbm = Gbm::new(100.0, 0.0, 0.1);
        for _ in 0..10_000 {
            assert!(gbm.step(&mut rng) > 0.0);
        }
    }

    #[test]
    fn zero_volatility_grows_deterministically() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gbm = Gbm::new(100.0, 0.01, 0.0);
        let p = gbm.step(&mut rng);
        assert!((p - 100.0 * (0.01f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn log_returns_match_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gbm = Gbm::new(50.0, 0.0005, 0.02);
        let mut log_returns = Vec::new();
        let mut prev = gbm.price();
        for _ in 0..20_000 {
            let next = gbm.step(&mut rng);
            log_returns.push((next / prev).ln());
            prev = next;
        }
        let expected_mean = 0.0005 - 0.5 * 0.02 * 0.02;
        assert!((mean(&log_returns) - expected_mean).abs() < 5e-4);
        assert!((std_dev(&log_returns) - 0.02).abs() < 1e-3);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut gbm = Gbm::new(10.0, 0.0, 0.05);
            (0..100).map(|_| gbm.step(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "initial price")]
    fn rejects_non_positive_price() {
        Gbm::new(0.0, 0.0, 0.1);
    }
}
