//! A limit order book with price-time priority matching.
//!
//! Prices are integer *ticks* (the venue layer fixes the tick size), and
//! quantities are integer lots, so the book is exact — no float keys. The
//! matching engine is embedded: submitting an order first crosses it
//! against the opposite side (takers trade at resting prices, FIFO within
//! a level), then rests any remainder.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::error::CexError;

/// Identifier of a resting or historical order.
pub type OrderId = u64;

/// Which side of the book an order belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Buy interest (matches against asks).
    Bid,
    /// Sell interest (matches against bids).
    Ask,
}

impl Side {
    /// The opposite side.
    pub fn opposite(self) -> Side {
        match self {
            Side::Bid => Side::Ask,
            Side::Ask => Side::Bid,
        }
    }
}

/// A fill between a resting maker order and an incoming taker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trade {
    /// The resting order that provided liquidity.
    pub maker: OrderId,
    /// The incoming order that took liquidity.
    pub taker: OrderId,
    /// Execution price in ticks (the maker's price).
    pub price_ticks: u64,
    /// Executed quantity in lots.
    pub quantity: u64,
}

#[derive(Debug, Clone)]
struct RestingOrder {
    id: OrderId,
    quantity: u64,
}

/// The book itself.
#[derive(Debug, Clone, Default)]
pub struct OrderBook {
    bids: BTreeMap<u64, VecDeque<RestingOrder>>,
    asks: BTreeMap<u64, VecDeque<RestingOrder>>,
    locate: HashMap<OrderId, (Side, u64)>,
    next_id: OrderId,
}

impl OrderBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Best (highest) bid price in ticks.
    pub fn best_bid(&self) -> Option<u64> {
        self.bids.keys().next_back().copied()
    }

    /// Best (lowest) ask price in ticks.
    pub fn best_ask(&self) -> Option<u64> {
        self.asks.keys().next().copied()
    }

    /// Mid price in ticks, if both sides are quoted.
    pub fn mid_ticks(&self) -> Option<f64> {
        Some((self.best_bid()? as f64 + self.best_ask()? as f64) / 2.0)
    }

    /// Total resting quantity on a side.
    pub fn depth(&self, side: Side) -> u64 {
        let levels = match side {
            Side::Bid => &self.bids,
            Side::Ask => &self.asks,
        };
        levels
            .values()
            .flat_map(|q| q.iter().map(|o| o.quantity))
            .sum()
    }

    /// Number of resting orders.
    pub fn order_count(&self) -> usize {
        self.locate.len()
    }

    /// Submits a limit order; crossing quantity executes immediately at
    /// resting prices, the remainder rests at `price_ticks`.
    ///
    /// Returns the order id (also used as the taker id in returned trades)
    /// and the fills generated.
    ///
    /// # Errors
    ///
    /// Returns [`CexError::InvalidParameter`] for zero quantity or price.
    pub fn submit_limit(
        &mut self,
        side: Side,
        price_ticks: u64,
        quantity: u64,
    ) -> Result<(OrderId, Vec<Trade>), CexError> {
        if quantity == 0 || price_ticks == 0 {
            return Err(CexError::InvalidParameter);
        }
        let id = self.allocate_id();
        let mut remaining = quantity;
        let trades = self.cross(side, Some(price_ticks), &mut remaining, id);
        if remaining > 0 {
            let levels = match side {
                Side::Bid => &mut self.bids,
                Side::Ask => &mut self.asks,
            };
            levels
                .entry(price_ticks)
                .or_default()
                .push_back(RestingOrder {
                    id,
                    quantity: remaining,
                });
            self.locate.insert(id, (side, price_ticks));
        }
        Ok((id, trades))
    }

    /// Submits a market order (immediate-or-cancel): executes against the
    /// opposite side until filled or the book is empty.
    ///
    /// # Errors
    ///
    /// Returns [`CexError::InvalidParameter`] for zero quantity.
    pub fn submit_market(
        &mut self,
        side: Side,
        quantity: u64,
    ) -> Result<(OrderId, Vec<Trade>), CexError> {
        if quantity == 0 {
            return Err(CexError::InvalidParameter);
        }
        let id = self.allocate_id();
        let mut remaining = quantity;
        let trades = self.cross(side, None, &mut remaining, id);
        Ok((id, trades))
    }

    /// Cancels a resting order.
    ///
    /// # Errors
    ///
    /// Returns [`CexError::UnknownOrder`] if the id is not resting (already
    /// filled, cancelled, or never rested).
    pub fn cancel(&mut self, id: OrderId) -> Result<(), CexError> {
        let (side, price) = self.locate.remove(&id).ok_or(CexError::UnknownOrder)?;
        let levels = match side {
            Side::Bid => &mut self.bids,
            Side::Ask => &mut self.asks,
        };
        if let Some(queue) = levels.get_mut(&price) {
            queue.retain(|o| o.id != id);
            if queue.is_empty() {
                levels.remove(&price);
            }
        }
        Ok(())
    }

    fn allocate_id(&mut self) -> OrderId {
        self.next_id += 1;
        self.next_id
    }

    /// Core matching: consume opposite-side liquidity while the price
    /// limit admits it (None = market order, any price).
    fn cross(
        &mut self,
        side: Side,
        limit: Option<u64>,
        remaining: &mut u64,
        taker: OrderId,
    ) -> Vec<Trade> {
        let mut trades = Vec::new();
        loop {
            if *remaining == 0 {
                break;
            }
            let best = match side {
                Side::Bid => self.asks.keys().next().copied(),
                Side::Ask => self.bids.keys().next_back().copied(),
            };
            let Some(level_price) = best else { break };
            let admissible = match (side, limit) {
                (_, None) => true,
                (Side::Bid, Some(l)) => level_price <= l,
                (Side::Ask, Some(l)) => level_price >= l,
            };
            if !admissible {
                break;
            }
            let levels = match side {
                Side::Bid => &mut self.asks,
                Side::Ask => &mut self.bids,
            };
            let queue = levels.get_mut(&level_price).expect("level exists");
            while *remaining > 0 {
                let Some(front) = queue.front_mut() else {
                    break;
                };
                let take = (*remaining).min(front.quantity);
                front.quantity -= take;
                *remaining -= take;
                trades.push(Trade {
                    maker: front.id,
                    taker,
                    price_ticks: level_price,
                    quantity: take,
                });
                if front.quantity == 0 {
                    let done = queue.pop_front().expect("front exists");
                    self.locate.remove(&done.id);
                }
            }
            if queue.is_empty() {
                levels.remove(&level_price);
            }
        }
        trades
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn resting_and_best_prices() {
        let mut book = OrderBook::new();
        book.submit_limit(Side::Bid, 99, 10).unwrap();
        book.submit_limit(Side::Bid, 98, 10).unwrap();
        book.submit_limit(Side::Ask, 101, 5).unwrap();
        assert_eq!(book.best_bid(), Some(99));
        assert_eq!(book.best_ask(), Some(101));
        assert_eq!(book.mid_ticks(), Some(100.0));
        assert_eq!(book.depth(Side::Bid), 20);
        assert_eq!(book.depth(Side::Ask), 5);
    }

    #[test]
    fn crossing_limit_executes_at_resting_price() {
        let mut book = OrderBook::new();
        let (maker, _) = book.submit_limit(Side::Ask, 100, 10).unwrap();
        let (taker, trades) = book.submit_limit(Side::Bid, 105, 4).unwrap();
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].price_ticks, 100, "taker pays maker's price");
        assert_eq!(trades[0].quantity, 4);
        assert_eq!(trades[0].maker, maker);
        assert_eq!(trades[0].taker, taker);
        assert_eq!(book.depth(Side::Ask), 6);
        assert_eq!(book.depth(Side::Bid), 0, "fully filled, nothing rests");
    }

    #[test]
    fn partial_fill_rests_remainder() {
        let mut book = OrderBook::new();
        book.submit_limit(Side::Ask, 100, 3).unwrap();
        let (_, trades) = book.submit_limit(Side::Bid, 100, 10).unwrap();
        assert_eq!(trades.len(), 1);
        assert_eq!(book.best_bid(), Some(100), "remainder rests at limit");
        assert_eq!(book.depth(Side::Bid), 7);
        assert_eq!(book.best_ask(), None);
    }

    #[test]
    fn fifo_within_level() {
        let mut book = OrderBook::new();
        let (first, _) = book.submit_limit(Side::Ask, 100, 5).unwrap();
        let (second, _) = book.submit_limit(Side::Ask, 100, 5).unwrap();
        let (_, trades) = book.submit_market(Side::Bid, 7).unwrap();
        assert_eq!(trades.len(), 2);
        assert_eq!(trades[0].maker, first);
        assert_eq!(trades[0].quantity, 5);
        assert_eq!(trades[1].maker, second);
        assert_eq!(trades[1].quantity, 2);
    }

    #[test]
    fn market_order_ioc_semantics() {
        let mut book = OrderBook::new();
        book.submit_limit(Side::Ask, 100, 3).unwrap();
        let (_, trades) = book.submit_market(Side::Bid, 10).unwrap();
        assert_eq!(trades.len(), 1);
        assert_eq!(trades[0].quantity, 3);
        // Unfilled remainder is cancelled, not rested.
        assert_eq!(book.depth(Side::Bid), 0);
    }

    #[test]
    fn cancel_removes_order() {
        let mut book = OrderBook::new();
        let (id, _) = book.submit_limit(Side::Bid, 90, 10).unwrap();
        book.cancel(id).unwrap();
        assert_eq!(book.best_bid(), None);
        assert_eq!(book.cancel(id), Err(CexError::UnknownOrder));
    }

    #[test]
    fn zero_quantity_rejected() {
        let mut book = OrderBook::new();
        assert_eq!(
            book.submit_limit(Side::Bid, 100, 0).unwrap_err(),
            CexError::InvalidParameter
        );
        assert_eq!(
            book.submit_market(Side::Ask, 0).unwrap_err(),
            CexError::InvalidParameter
        );
    }

    #[test]
    fn non_crossing_limits_never_trade() {
        let mut book = OrderBook::new();
        book.submit_limit(Side::Bid, 99, 10).unwrap();
        let (_, trades) = book.submit_limit(Side::Ask, 100, 10).unwrap();
        assert!(trades.is_empty());
        assert_eq!(book.order_count(), 2);
    }

    proptest! {
        #[test]
        fn book_never_crosses_after_random_flow(
            ops in proptest::collection::vec(
                (0..2u8, 1..200u64, 1..50u64), 1..200
            )
        ) {
            let mut book = OrderBook::new();
            for (side, price, qty) in ops {
                let side = if side == 0 { Side::Bid } else { Side::Ask };
                book.submit_limit(side, price, qty).unwrap();
                if let (Some(b), Some(a)) = (book.best_bid(), book.best_ask()) {
                    prop_assert!(b < a, "book crossed: bid {b} >= ask {a}");
                }
            }
        }

        #[test]
        fn conservation_of_quantity(
            rest_qty in 1..100u64,
            take_qty in 1..100u64,
        ) {
            let mut book = OrderBook::new();
            book.submit_limit(Side::Ask, 100, rest_qty).unwrap();
            let (_, trades) = book.submit_market(Side::Bid, take_qty).unwrap();
            let traded: u64 = trades.iter().map(|t| t.quantity).sum();
            prop_assert_eq!(traded, rest_qty.min(take_qty));
            prop_assert_eq!(book.depth(Side::Ask), rest_qty - traded);
        }
    }
}
