//! The USD price feed consumed by the strategy layer.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use arb_amm::token::TokenId;

/// A source of USD token prices.
///
/// The strategy crates depend only on this trait, so prices can come from a
/// static table, a live [`crate::venue::Exchange`], or an aggregation of
/// several.
pub trait PriceFeed {
    /// The USD price of `token`, if this feed knows it.
    fn usd_price(&self, token: TokenId) -> Option<f64>;
}

/// An immutable-snapshot price table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PriceTable {
    prices: HashMap<TokenId, f64>,
}

impl PriceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a token's price (overwrites silently; NaN and negatives are
    /// ignored rather than stored).
    pub fn set(&mut self, token: TokenId, price: f64) {
        if price.is_finite() && price >= 0.0 {
            self.prices.insert(token, price);
        }
    }

    /// Number of priced tokens.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the table has no prices.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Iterates over `(token, price)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, f64)> + '_ {
        self.prices.iter().map(|(t, p)| (*t, *p))
    }
}

impl PriceFeed for PriceTable {
    fn usd_price(&self, token: TokenId) -> Option<f64> {
        self.prices.get(&token).copied()
    }
}

impl FromIterator<(TokenId, f64)> for PriceTable {
    fn from_iter<I: IntoIterator<Item = (TokenId, f64)>>(iter: I) -> Self {
        let mut table = PriceTable::new();
        for (t, p) in iter {
            table.set(t, p);
        }
        table
    }
}

impl Extend<(TokenId, f64)> for PriceTable {
    fn extend<I: IntoIterator<Item = (TokenId, f64)>>(&mut self, iter: I) {
        for (t, p) in iter {
            self.set(t, p);
        }
    }
}

/// A thread-safe, updatable price table — the "periodically re-downloaded
/// API snapshot" shared between a feed-updater thread and strategy threads.
#[derive(Debug, Clone, Default)]
pub struct SharedPriceTable {
    inner: Arc<RwLock<PriceTable>>,
}

impl SharedPriceTable {
    /// Creates an empty shared table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the entire snapshot.
    pub fn publish(&self, table: PriceTable) {
        *self.inner.write().expect("price table lock poisoned") = table;
    }

    /// Reads a consistent snapshot clone.
    pub fn snapshot(&self) -> PriceTable {
        self.inner
            .read()
            .expect("price table lock poisoned")
            .clone()
    }
}

impl PriceFeed for SharedPriceTable {
    fn usd_price(&self, token: TokenId) -> Option<f64> {
        self.inner
            .read()
            .expect("price table lock poisoned")
            .usd_price(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn set_and_get() {
        let mut table = PriceTable::new();
        table.set(t(0), 2000.0);
        assert_eq!(table.usd_price(t(0)), Some(2000.0));
        assert_eq!(table.usd_price(t(1)), None);
    }

    #[test]
    fn invalid_prices_ignored() {
        let mut table = PriceTable::new();
        table.set(t(0), f64::NAN);
        table.set(t(1), -5.0);
        table.set(t(2), f64::INFINITY);
        assert!(table.is_empty());
    }

    #[test]
    fn from_iterator() {
        let table: PriceTable = [(t(0), 1.0), (t(1), 2.0)].into_iter().collect();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn shared_table_publish_and_read() {
        let shared = SharedPriceTable::new();
        assert_eq!(shared.usd_price(t(0)), None);
        let mut table = PriceTable::new();
        table.set(t(0), 42.0);
        shared.publish(table);
        assert_eq!(shared.usd_price(t(0)), Some(42.0));
        assert_eq!(shared.snapshot().len(), 1);
    }

    #[test]
    fn shared_table_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedPriceTable>();
    }

    #[test]
    fn shared_across_threads() {
        let shared = SharedPriceTable::new();
        let writer = shared.clone();
        let handle = std::thread::spawn(move || {
            let mut table = PriceTable::new();
            table.set(TokenId::new(9), 7.0);
            writer.publish(table);
        });
        handle.join().unwrap();
        assert_eq!(shared.usd_price(t(9)), Some(7.0));
    }
}
