//! Cross-exchange price aggregation — the CoinGecko stand-in.
//!
//! The paper's CEX prices come from CoinGecko, which aggregates venue
//! prices. [`Aggregator`] averages the mid prices of every exchange listing
//! a token, producing the [`PriceTable`] snapshot the strategy layer
//! consumes.

use arb_amm::token::TokenId;
use arb_numerics::stats::mean;

use crate::feed::{PriceFeed, PriceTable};
use crate::venue::Exchange;

/// Aggregates prices across exchanges by equal-weight averaging.
#[derive(Debug, Default)]
pub struct Aggregator {
    exchanges: Vec<Exchange>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an exchange to the panel.
    pub fn add_exchange(&mut self, exchange: Exchange) {
        self.exchanges.push(exchange);
    }

    /// The exchanges in the panel.
    pub fn exchanges(&self) -> &[Exchange] {
        &self.exchanges
    }

    /// Mutable access for ticking the panel forward.
    pub fn exchanges_mut(&mut self) -> &mut [Exchange] {
        &mut self.exchanges
    }

    /// Advances every exchange one tick with the shared RNG.
    pub fn tick<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) {
        for ex in &mut self.exchanges {
            ex.tick(rng);
        }
    }

    /// The aggregated price of one token (mean over listing venues).
    pub fn price(&self, token: TokenId) -> Option<f64> {
        let quotes: Vec<f64> = self
            .exchanges
            .iter()
            .filter_map(|ex| ex.usd_price(token))
            .collect();
        if quotes.is_empty() {
            None
        } else {
            Some(mean(&quotes))
        }
    }

    /// Snapshot of aggregated prices for every token listed anywhere.
    pub fn price_table(&self) -> PriceTable {
        let mut tokens = std::collections::BTreeSet::new();
        for ex in &self.exchanges {
            for (t, _) in ex.price_table().iter() {
                tokens.insert(t);
            }
        }
        tokens
            .into_iter()
            .filter_map(|t| self.price(t).map(|p| (t, p)))
            .collect()
    }
}

impl PriceFeed for Aggregator {
    fn usd_price(&self, token: TokenId) -> Option<f64> {
        self.price(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::MarketConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn aggregates_listing_venues_only() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut agg = Aggregator::new();
        let mut a = Exchange::new("a");
        a.add_market(t(0), MarketConfig::new(100.0));
        a.add_market(t(1), MarketConfig::new(5.0));
        let mut b = Exchange::new("b");
        b.add_market(t(0), MarketConfig::new(102.0));
        agg.add_exchange(a);
        agg.add_exchange(b);
        for _ in 0..30 {
            agg.tick(&mut rng);
        }
        let table = agg.price_table();
        assert_eq!(table.len(), 2);
        // Token 0 averaged over both venues lies between their mids.
        let pa = agg.exchanges()[0].usd_price(t(0)).unwrap();
        let pb = agg.exchanges()[1].usd_price(t(0)).unwrap();
        let agg_price = table.usd_price(t(0)).unwrap();
        assert!(agg_price >= pa.min(pb) && agg_price <= pa.max(pb));
        // Token 1 listed on one venue: equals that venue's mid.
        assert_eq!(table.usd_price(t(1)), agg.exchanges()[0].usd_price(t(1)));
        assert_eq!(agg.usd_price(t(7)), None);
    }

    #[test]
    fn empty_aggregator_prices_nothing() {
        let agg = Aggregator::new();
        assert_eq!(agg.price(t(0)), None);
        assert!(agg.price_table().is_empty());
    }
}
