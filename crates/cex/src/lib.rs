//! Simulated centralized exchanges (CEX) and the USD price feed.
//!
//! The paper monetizes arbitrage profit with token prices "downloaded from
//! CoinGecko (Binance)". Offline, this crate stands in for that data source
//! with an honest simulation pipeline rather than hard-coded numbers:
//!
//! * [`orderbook`] — a limit order book with price-time priority matching;
//! * [`random_walk`] — geometric Brownian motion reference prices;
//! * [`market_maker`] — agents quoting a spread around the reference;
//! * [`venue`] — one token's USD market (book + reference + noise flow) and
//!   an [`venue::Exchange`] holding many markets;
//! * [`aggregator`] — cross-exchange mid-price averaging (the
//!   CoinGecko-like API the strategies consume);
//! * [`feed`] — the [`feed::PriceFeed`] trait and thread-safe
//!   [`feed::SharedPriceTable`].
//!
//! Everything is deterministic given an RNG seed.
//!
//! # Quickstart
//!
//! ```
//! use arb_amm::token::TokenId;
//! use arb_cex::venue::{Exchange, MarketConfig};
//! use arb_cex::feed::PriceFeed;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let eth = TokenId::new(0);
//! let mut binance = Exchange::new("binance");
//! binance.add_market(eth, MarketConfig::new(2000.0));
//! for _ in 0..50 {
//!     binance.tick(&mut rng);
//! }
//! let table = binance.price_table();
//! assert!(table.usd_price(eth).unwrap() > 0.0);
//! ```

pub mod aggregator;
pub mod error;
pub mod feed;
pub mod market_maker;
pub mod orderbook;
pub mod random_walk;
pub mod venue;

pub use error::CexError;
pub use feed::{PriceFeed, PriceTable, SharedPriceTable};
pub use orderbook::{OrderBook, OrderId, Side, Trade};
pub use venue::{Exchange, MarketConfig};
