//! Market-maker agents quoting a spread around a reference price.

use crate::error::CexError;
use crate::orderbook::{OrderBook, OrderId, Side};

/// A simple symmetric market maker.
///
/// Each [`MarketMaker::requote`] cancels the maker's previous quotes and
/// posts a fresh bid/ask pair around the reference price. Real market
/// makers manage inventory; this one provides the *liquidity structure*
/// (a standing two-sided book with a configurable spread) that makes venue
/// mid prices meaningful.
#[derive(Debug, Clone)]
pub struct MarketMaker {
    half_spread_bps: f64,
    quote_lots: u64,
    resting: Vec<OrderId>,
}

impl MarketMaker {
    /// Creates a maker quoting `quote_lots` on each side at
    /// `half_spread_bps` basis points from the reference.
    ///
    /// # Panics
    ///
    /// Panics if `half_spread_bps` is negative/non-finite or
    /// `quote_lots == 0`.
    pub fn new(half_spread_bps: f64, quote_lots: u64) -> Self {
        assert!(
            half_spread_bps.is_finite() && half_spread_bps >= 0.0,
            "half spread must be non-negative"
        );
        assert!(quote_lots > 0, "quote size must be positive");
        MarketMaker {
            half_spread_bps,
            quote_lots,
            resting: Vec::new(),
        }
    }

    /// Cancels stale quotes and posts a new bid/ask around
    /// `reference_ticks`.
    ///
    /// # Errors
    ///
    /// Returns [`CexError::InvalidParameter`] if the computed bid rounds to
    /// zero ticks (reference too small for the tick grid).
    pub fn requote(&mut self, book: &mut OrderBook, reference_ticks: u64) -> Result<(), CexError> {
        for id in self.resting.drain(..) {
            // Quotes may have been fully taken since the last tick.
            let _ = book.cancel(id);
        }
        let half = self.half_spread_bps / 10_000.0;
        let bid = (reference_ticks as f64 * (1.0 - half)).floor() as u64;
        let ask = (reference_ticks as f64 * (1.0 + half)).ceil() as u64;
        if bid == 0 {
            return Err(CexError::InvalidParameter);
        }
        let ask = ask.max(bid + 1); // never self-cross
        let (bid_id, _) = book.submit_limit(Side::Bid, bid, self.quote_lots)?;
        let (ask_id, _) = book.submit_limit(Side::Ask, ask, self.quote_lots)?;
        self.resting.push(bid_id);
        self.resting.push(ask_id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requote_posts_two_sided_book() {
        let mut book = OrderBook::new();
        let mut mm = MarketMaker::new(10.0, 100);
        mm.requote(&mut book, 1_000_000).unwrap();
        let bid = book.best_bid().unwrap();
        let ask = book.best_ask().unwrap();
        assert!(bid < 1_000_000 && ask > 1_000_000);
        // 10 bps of 1e6 = 1000 ticks.
        assert_eq!(bid, 999_000);
        assert_eq!(ask, 1_001_000);
    }

    #[test]
    fn requote_replaces_previous_quotes() {
        let mut book = OrderBook::new();
        let mut mm = MarketMaker::new(10.0, 100);
        mm.requote(&mut book, 1_000_000).unwrap();
        mm.requote(&mut book, 2_000_000).unwrap();
        assert_eq!(book.order_count(), 2, "old quotes cancelled");
        assert!(book.best_bid().unwrap() > 1_500_000);
    }

    #[test]
    fn tiny_reference_never_self_crosses() {
        let mut book = OrderBook::new();
        let mut mm = MarketMaker::new(0.0, 10);
        mm.requote(&mut book, 5).unwrap();
        assert!(book.best_bid().unwrap() < book.best_ask().unwrap());
    }

    #[test]
    fn zero_bid_rejected() {
        let mut book = OrderBook::new();
        let mut mm = MarketMaker::new(10_000.0, 10); // 100% half-spread
        assert_eq!(
            mm.requote(&mut book, 1).unwrap_err(),
            CexError::InvalidParameter
        );
    }
}
