//! The staged ingestion front-end between event sources and engines.
//!
//! The engines in `arb-engine` used to be fed directly from
//! `Chain::drain_events` — one source, no batching discipline, no
//! bound on how far behind a slow consumer could fall, and the CEX
//! price feed living entirely outside the journaled stream. The
//! paper's profit races are races against staleness (Milionis et al.,
//! arXiv:2305.14604) and against *ordering* between venues
//! (arXiv:2410.11552), so this crate makes the ingestion boundary a
//! first-class, measured subsystem:
//!
//! ```text
//!  chain A ──offer──▶ ┌──────────┐   seal_block()
//!  chain B ──offer──▶ │ Ingestor │ ── multiplex ──▶ journal (raw)
//!  CEX feed ─offer──▶ └──────────┘         │
//!                                      coalesce (LWW per pool/token,
//!                                       PoolCreated = barrier)
//!                                          │
//!                               bounded queue (lag policy:
//!                               block source / coalesce harder)
//!                                          │
//!  IngestHandle ──pop──▶ IngestDriver ──▶ ShardedRuntime + PriceTable
//!                                          │
//!                                   ranked opportunities
//! ```
//!
//! * **Multiplexing** ([`Ingestor`]) — several sources (dexsim chains,
//!   the CEX feed) merge into one deterministically ordered stream:
//!   within a sealed block, events are ordered by source registration
//!   priority, then by per-source arrival order. The merged *raw*
//!   stream is journaled (feed updates travel inline as
//!   [`arb_dexsim::events::Event::FeedPrice`]), so one journal replays
//!   the whole market without a live feed.
//! * **Coalescing** ([`mod@coalesce`]) — bursty per-pool `Sync`s collapse
//!   last-write-wins before the engine sees them; `PoolCreated` is a
//!   barrier. Sound because the graph's `apply_sync` is itself
//!   last-write-wins over absolute reserves (see the module docs of
//!   [`mod@crate::coalesce`] for the commutation argument, and the
//!   crate's proptests for the proof harness).
//! * **Backpressure** ([`IngestConfig`]) — the producer/consumer
//!   boundary is a bounded queue with an explicit [`LagPolicy`]: block
//!   the source, or degrade by merging new blocks into the queue tail
//!   and coalescing across them. Either way nothing is dropped and
//!   per-source order is preserved. [`IngestStats`] surfaces events
//!   in/out, the coalesce ratio, queue depth high-water, and producer
//!   stall time.
//!
//! [`IngestDriver`] is the consumer half: it pops sealed batches,
//! routes feed updates into its [`arb_cex::feed::PriceTable`], applies
//! chain events to a [`arb_engine::ShardedRuntime`], and stamps
//! end-to-end (seal → ranking updated) latency. Its checkpoints carry
//! the feed, so restore needs no price source either.

//!
//! **Degradation** ([`mod@health`]) — every site (each source, the
//! journal, the consumer) carries a deterministic [`HealthMonitor`]
//! (Healthy → Lagging → Quarantined → Recovered). A journal commit
//! failure no longer aborts the seal: the batch stays pending, serving
//! continues journal-degraded, and later seals retry under bounded
//! backoff. [`IngestConfig::max_stall`] bounds the
//! [`LagPolicy::BlockSource`] stall with a watchdog that degrades into
//! tail-merging instead of parking forever.

pub mod coalesce;
pub mod driver;
pub mod error;
pub mod health;
mod queue;
pub mod source;
pub mod stats;

pub use coalesce::coalesce;
pub use driver::IngestDriver;
pub use error::IngestError;
pub use health::{HealthConfig, HealthMonitor, HealthState};
pub use queue::IngestBatch;
pub use source::{IngestConfig, IngestHandle, Ingestor, LagPolicy, SourceId};
pub use stats::IngestStats;
