//! The producer half: source registration, multiplexing, sealing.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use arb_amm::token::TokenId;
use arb_dexsim::events::Event;
use arb_journal::{JournalError, JournalWriter};
use arb_obs::{Obs, SpanTimer};

use crate::coalesce::coalesce;
use crate::error::IngestError;
use crate::health::{HealthConfig, HealthMonitor, HealthState};
use crate::queue::{IngestBatch, QueueState, Shared, WaitOutcome};
use crate::stats::{IngestStats, StatsMirror};

/// Pre-resolved span timers over the sealing pipeline, one per stage
/// (`ingest.seal_ns` wraps the other three).
#[derive(Debug, Clone)]
struct SealSpans {
    seal: SpanTimer,
    journal: SpanTimer,
    coalesce: SpanTimer,
    queue: SpanTimer,
}

/// A registered event source. Registration order **is** priority:
/// within a sealed block, all of source 0's events precede all of
/// source 1's, and each source's own arrival order is preserved — the
/// deterministic total order the journal records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(u16);

impl SourceId {
    /// The source's registration index (= its priority, 0 highest).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What the producer does when the consumer lags and the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LagPolicy {
    /// Block [`Ingestor::seal_block`] until the consumer frees a slot;
    /// the stall time is surfaced in [`IngestStats::stall_nanos`]. The
    /// source sees backpressure, the engine sees every block.
    #[default]
    BlockSource,
    /// Degraded mode: merge the new block into the newest queued batch
    /// and coalesce across them, so the queue depth stays bounded while
    /// the per-batch coalescing works harder. The source never blocks;
    /// the engine sees fewer, denser batches.
    CoalesceHarder,
}

/// Front-end tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Queue bound, in sealed batches (minimum 1).
    pub queue_capacity: usize,
    /// Full-queue behavior.
    pub lag_policy: LagPolicy,
    /// Per-block last-write-wins coalescing ([`coalesce`]). Disable to
    /// deliver the raw multiplexed stream (the journal always records
    /// raw either way).
    pub coalesce: bool,
    /// Watchdog for [`LagPolicy::BlockSource`]: give up after this much
    /// blocked waiting, merge the sealed block into the queue tail
    /// (degraded coalescing, no data loss), and surface
    /// [`IngestError::StallTimeout`] plus a consumer health transition.
    /// `None` (the default) preserves the original block-forever
    /// behavior.
    pub max_stall: Option<Duration>,
    /// Thresholds for the per-site [`HealthMonitor`]s (sources, the
    /// journal, the consumer).
    pub health: HealthConfig,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 8,
            lag_policy: LagPolicy::BlockSource,
            coalesce: true,
            max_stall: None,
            health: HealthConfig::default(),
        }
    }
}

struct Source {
    name: String,
    staged: Vec<Event>,
    /// Cumulative events offered (the source's stream position).
    position: u64,
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source")
            .field("name", &self.name)
            .field("staged", &self.staged.len())
            .field("position", &self.position)
            .finish()
    }
}

/// The producer: stages per-source events, seals them into one
/// deterministically ordered block, journals the raw stream, coalesces,
/// and enqueues for the consumer under the configured lag policy.
#[derive(Debug)]
pub struct Ingestor {
    config: IngestConfig,
    shared: Arc<Shared>,
    sources: Vec<Source>,
    journal: Option<Arc<Mutex<JournalWriter>>>,
    /// Offset of the next raw event on the multiplexed stream (the
    /// journal coordinate space when a journal is attached).
    next_offset: u64,
    /// Seals performed so far — the deterministic clock driving the
    /// health state machines (no wall time, so reruns reproduce the
    /// exact transition sequence).
    seals: u64,
    /// Per-source health, parallel to `sources` (site
    /// `ingest.source.<name>`).
    source_health: Vec<HealthMonitor>,
    /// Journal commit health (site `journal.io`), driving the
    /// retry-with-backoff degraded mode.
    journal_health: HealthMonitor,
    /// Downstream consumer health (site `ingest.consumer`), driven by
    /// queue pressure and the `max_stall` watchdog.
    consumer_health: HealthMonitor,
    /// The most recent journal commit failure, held while the journal
    /// runs degraded (cleared by the recommit that drains the backlog).
    last_journal_error: Option<JournalError>,
    /// Sealing-stage span timers, when observability is attached.
    obs: Option<SealSpans>,
    /// The attached observability bundle, for wiring monitors created
    /// after `set_obs`.
    obs_handle: Option<Obs>,
}

impl Ingestor {
    /// A front-end with no journal attached.
    pub fn new(config: IngestConfig) -> Self {
        Ingestor {
            config,
            shared: Arc::new(Shared::new(config.queue_capacity)),
            sources: Vec::new(),
            journal: None,
            next_offset: 0,
            seals: 0,
            source_health: Vec::new(),
            journal_health: HealthMonitor::new("journal.io", config.health),
            consumer_health: HealthMonitor::new("ingest.consumer", config.health),
            last_journal_error: None,
            obs: None,
            obs_handle: None,
        }
    }

    /// Attaches observability: span timers over every sealing stage
    /// (`ingest.seal_ns` → `journal_ns`/`coalesce_ns`/`queue_ns`) and a
    /// registry mirror of [`IngestStats`] under `ingest.*`, updated
    /// under the queue lock so the registry and the legacy struct can
    /// never disagree.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = Some(SealSpans {
            seal: obs.span("ingest.seal_ns"),
            journal: obs.span("ingest.journal_ns"),
            coalesce: obs.span("ingest.coalesce_ns"),
            queue: obs.span("ingest.queue_ns"),
        });
        let mut guard = self.shared.lock();
        let mirror = StatsMirror::new(obs.registry());
        mirror.sync(&guard.stats);
        guard.obs = Some(mirror);
        drop(guard);
        for monitor in &mut self.source_health {
            monitor.set_obs(obs);
        }
        self.journal_health.set_obs(obs);
        self.consumer_health.set_obs(obs);
        self.obs_handle = Some(obs.clone());
    }

    /// Builder form of [`Ingestor::set_obs`].
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Attaches a journal: every sealed block's **raw** multiplexed
    /// events are appended and committed before the batch is queued, so
    /// the durable stream is a full-fidelity record (coalescing is a
    /// delivery optimization, not a storage one). Adopts the writer's
    /// tail as the stream offset.
    #[must_use]
    pub fn with_journal(mut self, writer: Arc<Mutex<JournalWriter>>) -> Self {
        self.next_offset = writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_offset();
        self.journal = Some(writer);
        self
    }

    /// Registers a source. Registration order is merge priority — put
    /// the price feed before the chains to mirror the "feed updates
    /// apply before the block's events" convention used everywhere else
    /// in the workspace.
    pub fn register_source(&mut self, name: &str) -> SourceId {
        let id = SourceId(u16::try_from(self.sources.len()).expect("too many ingest sources"));
        self.sources.push(Source {
            name: name.to_string(),
            staged: Vec::new(),
            position: 0,
        });
        let mut monitor = HealthMonitor::new(format!("ingest.source.{name}"), self.config.health);
        if let Some(obs) = &self.obs_handle {
            monitor.set_obs(obs);
        }
        self.source_health.push(monitor);
        id
    }

    /// The registered source names, in priority order.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.name.as_str()).collect()
    }

    /// Per-source cumulative offered-event counts, in priority order.
    /// After a full drain these are the consumed positions a checkpoint
    /// should record (`RuntimeCheckpoint::source_positions`).
    pub fn source_positions(&self) -> Vec<u64> {
        self.sources.iter().map(|s| s.position).collect()
    }

    /// Restores per-source positions after a recovery, so positions
    /// keep counting from where the checkpointed process left off.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::UnknownSource`] when `positions` names
    /// more sources than are registered.
    pub fn restore_positions(&mut self, positions: &[u64]) -> Result<(), IngestError> {
        if positions.len() > self.sources.len() {
            return Err(IngestError::UnknownSource(positions.len() - 1));
        }
        for (source, &position) in self.sources.iter_mut().zip(positions) {
            source.position = position;
        }
        Ok(())
    }

    /// The consumer handle. Clone freely; handles stay valid after the
    /// ingestor closes (they drain the queue, then see end-of-stream).
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The stream offset the next sealed event will occupy.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// A stats snapshot.
    pub fn stats(&self) -> IngestStats {
        self.shared.lock().stats
    }

    /// Seals performed so far — the tick coordinate the health state
    /// machines run on.
    pub fn seals(&self) -> u64 {
        self.seals
    }

    /// Health of one registered source (site `ingest.source.<name>`).
    pub fn source_health(&self, source: SourceId) -> Option<&HealthMonitor> {
        self.source_health.get(source.index())
    }

    /// Health of the attached journal's commit path (site
    /// `journal.io`). Stays Healthy when no journal is attached.
    pub fn journal_health(&self) -> &HealthMonitor {
        &self.journal_health
    }

    /// Health of the downstream consumer (site `ingest.consumer`),
    /// driven by backpressure and the `max_stall` watchdog.
    pub fn consumer_health(&self) -> &HealthMonitor {
        &self.consumer_health
    }

    /// Whether the stream is running journal-degraded: a commit failed
    /// and its batch is still pending retry, so the durable journal
    /// lags the applied stream. Serving continues; checkpoints should
    /// be deferred until this clears.
    pub fn journal_degraded(&self) -> bool {
        self.last_journal_error.is_some()
            || matches!(
                self.journal_health.state(),
                HealthState::Lagging | HealthState::Quarantined
            )
    }

    /// The journal failure currently holding the stream in degraded
    /// mode, if any (cleared by the recommit that drains the backlog).
    pub fn last_journal_error(&self) -> Option<&JournalError> {
        self.last_journal_error.as_ref()
    }

    /// Stages events from `source` for the next seal. Order within a
    /// source is preserved verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::UnknownSource`] for an id this ingestor
    /// did not issue.
    pub fn offer(
        &mut self,
        source: SourceId,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<usize, IngestError> {
        let slot = self
            .sources
            .get_mut(source.index())
            .ok_or(IngestError::UnknownSource(source.index()))?;
        let before = slot.staged.len();
        slot.staged.extend(events);
        let added = slot.staged.len() - before;
        slot.position += added as u64;
        Ok(added)
    }

    /// Stages CEX feed moves as inline [`Event::FeedPrice`] events —
    /// the bridge that puts the price stream into the same journaled
    /// coordinate space as chain events.
    ///
    /// # Errors
    ///
    /// As [`Ingestor::offer`].
    pub fn offer_feed_moves(
        &mut self,
        source: SourceId,
        moves: &[(TokenId, f64)],
    ) -> Result<usize, IngestError> {
        self.offer(
            source,
            moves
                .iter()
                .map(|&(token, price)| Event::feed_price(token, price)),
        )
    }

    /// Seals the current block: multiplexes staged events in source
    /// priority order, journals the raw stream, coalesces, and enqueues
    /// one batch (always exactly one — an empty block still marks a
    /// tick boundary). Returns the stream offset after the seal.
    ///
    /// A journal commit failure does **not** abort the seal: the batch
    /// stays pending inside the writer, the block is still delivered,
    /// and later seals retry the commit under the journal health
    /// machine's bounded backoff ([`Ingestor::journal_degraded`] is
    /// true until the backlog drains). Serving keeps running on an
    /// unwritable disk; only durability lags.
    ///
    /// # Errors
    ///
    /// * [`IngestError::Closed`] — [`Ingestor::close`] was called.
    /// * [`IngestError::StallTimeout`] — the [`IngestConfig::max_stall`]
    ///   watchdog fired under [`LagPolicy::BlockSource`]; the block was
    ///   merged into the queue tail (no data loss).
    pub fn seal_block(&mut self) -> Result<u64, IngestError> {
        let _seal = self.obs.as_ref().map(|o| o.seal.start());
        let seal_tick = self.seals;
        self.seals += 1;
        let mut raw: Vec<Event> = Vec::new();
        let mut progressed = Vec::with_capacity(self.sources.len());
        for source in &mut self.sources {
            progressed.push(!source.staged.is_empty());
            raw.append(&mut source.staged);
        }
        // Silence only counts against a source when some peer moved
        // this seal; an all-quiet market penalizes nobody.
        if progressed.contains(&true) {
            for (monitor, moved) in self.source_health.iter_mut().zip(&progressed) {
                if *moved {
                    monitor.record_progress(seal_tick);
                } else {
                    monitor.record_idle(seal_tick);
                }
            }
        }
        let first_offset = self.next_offset;
        self.next_offset += raw.len() as u64;

        let mut journal_failed = false;
        let mut journal_recommitted = false;
        if let Some(journal) = &self.journal {
            let _journal = self.obs.as_ref().map(|o| o.journal.start());
            let mut writer = journal.lock().unwrap_or_else(PoisonError::into_inner);
            writer.append_batch(&raw);
            // Commit only when there is something at stake and (while
            // quarantined) the backoff window has elapsed — quiet seals
            // retry the failed backlog for free.
            if writer.pending_events() > 0 && self.journal_health.should_attempt(seal_tick) {
                match writer.commit() {
                    Ok(_) => {
                        journal_recommitted = self.last_journal_error.take().is_some();
                        self.journal_health.record_progress(seal_tick);
                    }
                    Err(error) => {
                        journal_failed = true;
                        self.last_journal_error = Some(JournalError::from(error));
                        self.journal_health.record_failure(seal_tick);
                    }
                }
            }
        }

        let events = if self.config.coalesce {
            let _coalesce = self.obs.as_ref().map(|o| o.coalesce.start());
            coalesce(&raw)
        } else {
            raw.clone()
        };
        let batch = IngestBatch {
            first_offset,
            raw_events: raw.len(),
            sealed_at: Instant::now(),
            events,
        };
        // The block's own ledger contribution, credited only once the
        // batch actually lands in the queue (same lock), so
        // `events_in == events_out + coalesced_away + queued` holds at
        // every enqueue/pop boundary — crediting before the enqueue
        // (the old order) let a consumer racing a stalled producer
        // observe a drifted ledger.
        let sealed_raw = raw.len() as u64;
        let block_coalesced = (raw.len() - batch.events.len()) as u64;

        let _queue = self.obs.as_ref().map(|o| o.queue.start());
        let mut guard = self.shared.lock();
        if guard.closed {
            return Err(IngestError::Closed);
        }
        // Journal counters ride the same lock as the flow-ledger
        // credits so the registry mirror sees one consistent snapshot.
        guard.stats.journal_write_failures += u64::from(journal_failed);
        guard.stats.journal_recommits += u64::from(journal_recommitted);
        if guard.queue.len() >= guard.capacity {
            match self.config.lag_policy {
                LagPolicy::BlockSource => {
                    let stalled = Instant::now();
                    if let Some(max_stall) = self.config.max_stall {
                        let (mut guard, outcome) =
                            self.shared.wait_not_full_deadline(guard, max_stall);
                        let waited = stalled.elapsed().as_nanos() as u64;
                        guard.stats.stall_nanos += waited;
                        match outcome {
                            WaitOutcome::Closed => {
                                guard.sync_obs();
                                return Err(IngestError::Closed);
                            }
                            WaitOutcome::TimedOut => {
                                // The watchdog fired: degrade exactly
                                // like CoalesceHarder (merge into the
                                // tail, nothing dropped) and surface a
                                // typed error instead of blocking the
                                // producer forever on a wedged
                                // consumer.
                                let squeezed =
                                    merge_into_tail(&mut guard, batch, self.config.coalesce);
                                guard.stats.events_in += sealed_raw;
                                guard.stats.coalesced_away += block_coalesced + squeezed;
                                guard.stats.batches_sealed += 1;
                                guard.stats.degraded_merges += 1;
                                guard.stats.stall_timeouts += 1;
                                guard.debug_check_ledger();
                                guard.sync_obs();
                                drop(guard);
                                self.consumer_health.record_failure(seal_tick);
                                return Err(IngestError::StallTimeout {
                                    waited_nanos: waited,
                                });
                            }
                            WaitOutcome::Open => {
                                guard.stats.events_in += sealed_raw;
                                guard.stats.coalesced_away += block_coalesced;
                                guard.stats.batches_sealed += 1;
                                self.shared.push(&mut guard, batch);
                                drop(guard);
                                self.consumer_health.record_progress(seal_tick);
                                return Ok(self.next_offset);
                            }
                        }
                    }
                    let (mut open_guard, open) = self.shared.wait_not_full(guard);
                    open_guard.stats.stall_nanos += stalled.elapsed().as_nanos() as u64;
                    if !open {
                        open_guard.sync_obs();
                        return Err(IngestError::Closed);
                    }
                    open_guard.stats.events_in += sealed_raw;
                    open_guard.stats.coalesced_away += block_coalesced;
                    open_guard.stats.batches_sealed += 1;
                    self.shared.push(&mut open_guard, batch);
                    drop(open_guard);
                    self.consumer_health.record_progress(seal_tick);
                    return Ok(self.next_offset);
                }
                LagPolicy::CoalesceHarder => {
                    let squeezed = merge_into_tail(&mut guard, batch, self.config.coalesce);
                    guard.stats.events_in += sealed_raw;
                    guard.stats.coalesced_away += block_coalesced + squeezed;
                    guard.stats.batches_sealed += 1;
                    guard.stats.degraded_merges += 1;
                    guard.debug_check_ledger();
                    guard.sync_obs();
                    drop(guard);
                    self.consumer_health.record_idle(seal_tick);
                    return Ok(self.next_offset);
                }
            }
        }
        guard.stats.events_in += sealed_raw;
        guard.stats.coalesced_away += block_coalesced;
        guard.stats.batches_sealed += 1;
        self.shared.push(&mut guard, batch);
        drop(guard);
        self.consumer_health.record_progress(seal_tick);
        Ok(self.next_offset)
    }

    /// Closes the stream: queued batches stay drainable, further seals
    /// and pops past the drain report end-of-stream.
    pub fn close(&self) {
        self.shared.close();
    }
}

/// Merges `batch` into the newest queued batch (degraded coalescing:
/// queue depth stays bounded, per-batch coalescing works harder).
/// Returns how many events the cross-batch coalesce squeezed out.
fn merge_into_tail(state: &mut QueueState, batch: IngestBatch, coalesce_on: bool) -> u64 {
    let tail = state.queue.back_mut().expect("full queue has a tail batch");
    let before = tail.events.len() + batch.events.len();
    let mut merged = Vec::with_capacity(before);
    merged.extend_from_slice(&tail.events);
    merged.extend_from_slice(&batch.events);
    tail.events = if coalesce_on {
        coalesce(&merged)
    } else {
        merged
    };
    tail.raw_events += batch.raw_events;
    (before - tail.events.len()) as u64
}

/// The consumer handle over the bounded queue.
#[derive(Debug, Clone)]
pub struct IngestHandle {
    shared: Arc<Shared>,
}

impl IngestHandle {
    /// Pops the oldest sealed batch, or `None` when the queue is empty.
    pub fn try_pop(&self) -> Option<IngestBatch> {
        self.shared.try_pop()
    }

    /// Blocks for the next batch; `None` once the stream is closed and
    /// fully drained.
    pub fn pop_blocking(&self) -> Option<IngestBatch> {
        self.shared.pop_blocking()
    }

    /// Batches currently queued.
    pub fn depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the producer closed the stream (queued batches may still
    /// remain).
    pub fn is_closed(&self) -> bool {
        self.shared.lock().closed
    }

    /// A stats snapshot.
    pub fn stats(&self) -> IngestStats {
        self.shared.lock().stats
    }
}
