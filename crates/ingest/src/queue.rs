//! The bounded producer/consumer boundary between sealer and engine.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use arb_dexsim::events::Event;

use crate::stats::{IngestStats, StatsMirror};

/// One sealed block of the multiplexed stream, as delivered to the
/// consumer: coalesced events plus the bookkeeping needed for journal
/// alignment and end-to-end latency measurement.
#[derive(Debug, Clone)]
pub struct IngestBatch {
    /// Journal offset of this block's first **raw** event (the journal
    /// records the pre-coalesce multiplexed stream).
    pub first_offset: u64,
    /// The block's events after coalescing, in delivery order.
    pub events: Vec<Event>,
    /// Raw (pre-coalesce) events this batch subsumes; grows when lagging
    /// blocks are merged in under `LagPolicy::CoalesceHarder`.
    pub raw_events: usize,
    /// When the earliest block folded into this batch was sealed — the
    /// "events in" end of the events-in → ranking-updated latency.
    pub sealed_at: Instant,
}

/// How a deadline-bounded producer wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitOutcome {
    /// Room opened up; the stream is still open.
    Open,
    /// The stream closed while waiting.
    Closed,
    /// The watchdog fired before the consumer freed space.
    TimedOut,
}

/// The shared half of the boundary: a bounded batch queue plus the
/// stats both sides update.
#[derive(Debug)]
pub(crate) struct Shared {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
pub(crate) struct QueueState {
    pub queue: VecDeque<IngestBatch>,
    pub capacity: usize,
    pub closed: bool,
    pub stats: IngestStats,
    /// Registry instruments mirroring `stats`, when observability is
    /// attached (see `Ingestor::set_obs`).
    pub obs: Option<StatsMirror>,
}

impl QueueState {
    /// Post-coalesce events currently queued — the in-flight leg of the
    /// flow ledger.
    pub fn queued_events(&self) -> u64 {
        self.queue.iter().map(|b| b.events.len() as u64).sum()
    }

    /// Debug invariant: the flow ledger balances at every enqueue/pop
    /// boundary (`events_in == events_out + coalesced_away + queued`).
    /// Stats crediting happens under the same lock as the queue
    /// mutation, so any drift here is a real accounting bug, not a
    /// race.
    pub fn debug_check_ledger(&self) {
        debug_assert!(
            self.stats.ledger_balanced(self.queued_events()),
            "ingest flow ledger drifted: {:?} with {} queued",
            self.stats,
            self.queued_events(),
        );
    }

    /// Pushes the updated stats into the registry mirror, if attached.
    pub fn sync_obs(&self) {
        if let Some(mirror) = &self.obs {
            mirror.sync(&self.stats);
        }
    }
}

impl Shared {
    pub fn new(capacity: usize) -> Self {
        Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                stats: IngestStats::default(),
                obs: None,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().expect("ingest queue poisoned")
    }

    /// Parks the producer until the queue has room or the stream closes;
    /// returns the guard and whether the stream is still open.
    pub fn wait_not_full<'a>(
        &'a self,
        mut guard: MutexGuard<'a, QueueState>,
    ) -> (MutexGuard<'a, QueueState>, bool) {
        while guard.queue.len() >= guard.capacity && !guard.closed {
            guard = self.not_full.wait(guard).expect("ingest queue poisoned");
        }
        let open = !guard.closed;
        (guard, open)
    }

    /// [`Shared::wait_not_full`] with a watchdog: gives up after
    /// `max_stall` of cumulative waiting instead of parking forever on
    /// a wedged consumer.
    pub fn wait_not_full_deadline<'a>(
        &'a self,
        mut guard: MutexGuard<'a, QueueState>,
        max_stall: Duration,
    ) -> (MutexGuard<'a, QueueState>, WaitOutcome) {
        let deadline = Instant::now() + max_stall;
        while guard.queue.len() >= guard.capacity && !guard.closed {
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return (guard, WaitOutcome::TimedOut);
            };
            let (next, _timeout) = self
                .not_full
                .wait_timeout(guard, remaining)
                .expect("ingest queue poisoned");
            guard = next;
        }
        let outcome = if guard.closed {
            WaitOutcome::Closed
        } else {
            WaitOutcome::Open
        };
        (guard, outcome)
    }

    /// Pushes a sealed batch (caller must hold room) and wakes a
    /// consumer.
    pub fn push(&self, guard: &mut MutexGuard<'_, QueueState>, batch: IngestBatch) {
        guard.queue.push_back(batch);
        let depth = guard.queue.len();
        if depth > guard.stats.depth_high_water {
            guard.stats.depth_high_water = depth;
        }
        guard.debug_check_ledger();
        guard.sync_obs();
        self.not_empty.notify_one();
    }

    /// Pops the oldest batch if one is queued, crediting delivery stats
    /// and waking a blocked producer.
    pub fn try_pop(&self) -> Option<IngestBatch> {
        let mut guard = self.lock();
        let batch = guard.queue.pop_front()?;
        guard.stats.events_out += batch.events.len() as u64;
        guard.stats.batches_delivered += 1;
        guard.debug_check_ledger();
        guard.sync_obs();
        self.not_full.notify_one();
        Some(batch)
    }

    /// Blocks until a batch arrives; `None` once the stream is closed
    /// *and* drained.
    pub fn pop_blocking(&self) -> Option<IngestBatch> {
        let mut guard = self.lock();
        loop {
            if let Some(batch) = guard.queue.pop_front() {
                guard.stats.events_out += batch.events.len() as u64;
                guard.stats.batches_delivered += 1;
                guard.debug_check_ledger();
                guard.sync_obs();
                self.not_full.notify_one();
                return Some(batch);
            }
            if guard.closed {
                return None;
            }
            guard = self.not_empty.wait(guard).expect("ingest queue poisoned");
        }
    }

    /// Closes the stream: producers error out, consumers drain what is
    /// queued and then see end-of-stream.
    pub fn close(&self) {
        let mut guard = self.lock();
        guard.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}
