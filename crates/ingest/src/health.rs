//! Per-site health state machines for graceful degradation.
//!
//! Each tracked site — an ingest source, the journal writer, the
//! downstream consumer — owns a [`HealthMonitor`] walking a small
//! deterministic state machine:
//!
//! ```text
//!            idle ≥ lag_after_idle            idle ≥ quarantine_after_idle
//!            or an explicit failure           or failures ≥ quarantine_after_failures
//!  Healthy ─────────────────────▶ Lagging ─────────────────────▶ Quarantined
//!     ▲                             │   ▲                            │
//!     │  progress × recovery_streak │   │ failure                    │ progress
//!     └────────── Recovered ◀───────┴───┴────────────────────────────┘
//! ```
//!
//! Time is whatever monotone counter the caller feeds in — the ingest
//! front-end uses its seal counter, so the machine (and the bounded
//! exponential backoff gating quarantined retries, an
//! [`arb_core::Backoff`]) is a pure function of the observation
//! sequence: no wall clock, reruns reproduce the exact same
//! transitions. Transitions are mirrored to `arb-obs` as a
//! `health.<site>.state` gauge, a `health.<site>.transitions` counter,
//! and a `health.<site>` flight-recorder mark carrying the tick.

use std::fmt;

use arb_core::backoff::{Backoff, BackoffConfig};
use arb_obs::Obs;

/// Where a site sits on the healthy → degraded spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Making normal progress.
    Healthy,
    /// Behind or failing, but still attempted every time.
    Lagging,
    /// Persistently failing; attempts are gated by bounded exponential
    /// backoff so a dead site cannot hog its callers.
    Quarantined,
    /// Progressing again after degradation; promoted back to
    /// [`HealthState::Healthy`] once the streak is long enough.
    Recovered,
}

impl HealthState {
    /// Stable lowercase label (metric/marker suffixes).
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Lagging => "lagging",
            HealthState::Quarantined => "quarantined",
            HealthState::Recovered => "recovered",
        }
    }

    /// Numeric encoding for the `health.<site>.state` gauge: 0 healthy,
    /// 1 lagging, 2 quarantined, 3 recovered.
    pub fn gauge_value(self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Lagging => 1.0,
            HealthState::Quarantined => 2.0,
            HealthState::Recovered => 3.0,
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Thresholds for one [`HealthMonitor`]. All counts are in caller
/// observations (ingest: seals), not wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive idle observations (others progressed, this site did
    /// not) before Healthy/Recovered demotes to Lagging.
    pub lag_after_idle: u64,
    /// Consecutive idle observations before Lagging demotes to
    /// Quarantined.
    pub quarantine_after_idle: u64,
    /// Consecutive explicit failures before Lagging demotes to
    /// Quarantined.
    pub quarantine_after_failures: u32,
    /// Observations of progress a Recovered site must string together
    /// before it is Healthy again.
    pub recovery_streak: u64,
    /// Backoff gating retry attempts while Quarantined, in the same
    /// units as the caller's tick counter.
    pub backoff: BackoffConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            lag_after_idle: 4,
            quarantine_after_idle: 16,
            quarantine_after_failures: 3,
            recovery_streak: 2,
            backoff: BackoffConfig::new(1, 16),
        }
    }
}

/// One site's health state machine. Drive it with exactly one of
/// [`HealthMonitor::record_progress`], [`HealthMonitor::record_idle`],
/// or [`HealthMonitor::record_failure`] per observation; consult
/// [`HealthMonitor::should_attempt`] before expensive retries.
#[derive(Debug)]
pub struct HealthMonitor {
    site: String,
    config: HealthConfig,
    state: HealthState,
    backoff: Backoff,
    idle_streak: u64,
    failure_streak: u32,
    progress_streak: u64,
    transitions: u64,
    obs: Option<Obs>,
}

impl HealthMonitor {
    /// A monitor for `site` (dotted fault-site name, e.g.
    /// `ingest.source.feed` or `journal.io`), starting Healthy.
    pub fn new(site: impl Into<String>, config: HealthConfig) -> Self {
        HealthMonitor {
            site: site.into(),
            config,
            state: HealthState::Healthy,
            backoff: Backoff::new(config.backoff),
            idle_streak: 0,
            failure_streak: 0,
            progress_streak: 0,
            transitions: 0,
            obs: None,
        }
    }

    /// Mirrors state to `obs` (`health.<site>.state` gauge,
    /// `health.<site>.transitions` counter, `health.<site>` marker).
    pub fn set_obs(&mut self, obs: &Obs) {
        obs.registry()
            .gauge(&format!("health.{}.state", self.site))
            .set(self.state.gauge_value());
        self.obs = Some(obs.clone());
    }

    /// The dotted site name this monitor tracks.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Total state transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Consecutive explicit failures.
    pub fn failure_streak(&self) -> u32 {
        self.failure_streak
    }

    /// Whether the caller should attempt this site's work at `now`.
    /// Always true outside Quarantined; while Quarantined, true only
    /// once the bounded exponential backoff window has elapsed.
    pub fn should_attempt(&self, now: u64) -> bool {
        self.state != HealthState::Quarantined || self.backoff.is_ready(now)
    }

    /// The site made progress at `now`: resets streaks and promotes
    /// degraded states toward Healthy (via Recovered).
    pub fn record_progress(&mut self, now: u64) {
        self.idle_streak = 0;
        self.failure_streak = 0;
        self.backoff.record_success();
        match self.state {
            HealthState::Healthy => {}
            HealthState::Lagging | HealthState::Quarantined => {
                self.progress_streak = 1;
                if self.config.recovery_streak <= 1 {
                    self.transition(HealthState::Healthy, now);
                } else {
                    self.transition(HealthState::Recovered, now);
                }
            }
            HealthState::Recovered => {
                self.progress_streak += 1;
                if self.progress_streak >= self.config.recovery_streak {
                    self.transition(HealthState::Healthy, now);
                }
            }
        }
    }

    /// The site sat out an observation where peers progressed. An
    /// all-quiet market penalizes nobody — only call this when *some*
    /// site progressed at `now` and this one did not.
    pub fn record_idle(&mut self, now: u64) {
        self.idle_streak += 1;
        self.progress_streak = 0;
        match self.state {
            HealthState::Healthy | HealthState::Recovered => {
                if self.idle_streak >= self.config.lag_after_idle {
                    self.transition(HealthState::Lagging, now);
                }
            }
            HealthState::Lagging => {
                if self.idle_streak >= self.config.quarantine_after_idle {
                    self.quarantine(now);
                }
            }
            HealthState::Quarantined => {}
        }
    }

    /// An attempt at `now` failed outright (journal commit error,
    /// consumer stall timeout). Demotes immediately — an explicit
    /// failure is stronger evidence than silence.
    pub fn record_failure(&mut self, now: u64) {
        self.failure_streak = self.failure_streak.saturating_add(1);
        self.progress_streak = 0;
        match self.state {
            HealthState::Healthy | HealthState::Recovered => {
                self.transition(HealthState::Lagging, now);
            }
            HealthState::Lagging => {
                if self.failure_streak >= self.config.quarantine_after_failures {
                    self.quarantine(now);
                }
            }
            HealthState::Quarantined => self.backoff.record_failure(now),
        }
    }

    fn quarantine(&mut self, now: u64) {
        self.transition(HealthState::Quarantined, now);
        self.backoff.record_failure(now);
    }

    fn transition(&mut self, to: HealthState, now: u64) {
        if to == self.state {
            return;
        }
        self.state = to;
        self.transitions += 1;
        if let Some(obs) = &self.obs {
            obs.registry()
                .gauge(&format!("health.{}.state", self.site))
                .set(to.gauge_value());
            obs.registry()
                .counter(&format!("health.{}.transitions", self.site))
                .inc();
            obs.marker(&format!("health.{}", self.site)).mark(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new("test.site", HealthConfig::default())
    }

    #[test]
    fn idle_walks_healthy_to_quarantined() {
        let mut m = monitor();
        for now in 0..3 {
            m.record_idle(now);
            assert_eq!(m.state(), HealthState::Healthy);
        }
        m.record_idle(3); // 4th idle: lag_after_idle
        assert_eq!(m.state(), HealthState::Lagging);
        for now in 4..15 {
            m.record_idle(now);
        }
        assert_eq!(m.state(), HealthState::Lagging);
        m.record_idle(15); // 16th idle: quarantine_after_idle
        assert_eq!(m.state(), HealthState::Quarantined);
    }

    #[test]
    fn failures_quarantine_faster_than_silence() {
        let mut m = monitor();
        m.record_failure(0);
        assert_eq!(m.state(), HealthState::Lagging);
        m.record_failure(1);
        assert_eq!(m.state(), HealthState::Lagging);
        m.record_failure(2); // quarantine_after_failures = 3
        assert_eq!(m.state(), HealthState::Quarantined);
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn quarantine_gates_attempts_with_bounded_backoff() {
        let mut m = monitor();
        for now in 0..3 {
            m.record_failure(now);
        }
        assert_eq!(m.state(), HealthState::Quarantined);
        // First quarantined failure at now=2: delay 1 → ready at 3.
        assert!(!m.should_attempt(2));
        assert!(m.should_attempt(3));
        m.record_failure(3); // second failure: delay 2 → ready at 5.
        assert!(!m.should_attempt(4));
        assert!(m.should_attempt(5));
        // Delay never exceeds the configured max (16).
        for now in 6..40 {
            if m.should_attempt(now) {
                m.record_failure(now);
            }
        }
        assert!(m.should_attempt(39 + 16));
    }

    #[test]
    fn recovery_needs_a_streak_of_progress() {
        let mut m = monitor();
        for now in 0..3 {
            m.record_failure(now);
        }
        assert_eq!(m.state(), HealthState::Quarantined);
        m.record_progress(10);
        assert_eq!(m.state(), HealthState::Recovered);
        assert!(m.should_attempt(10));
        m.record_progress(11); // recovery_streak = 2
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.failure_streak(), 0);
    }

    #[test]
    fn a_failure_mid_recovery_demotes_again() {
        let mut m = monitor();
        for now in 0..3 {
            m.record_failure(now);
        }
        m.record_progress(5);
        assert_eq!(m.state(), HealthState::Recovered);
        m.record_failure(6);
        assert_eq!(m.state(), HealthState::Lagging);
    }

    #[test]
    fn transitions_mirror_to_obs() {
        let obs = Obs::default();
        let mut m = monitor();
        m.set_obs(&obs);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.gauge("health.test.site.state"), Some(0.0));
        for now in 0..3 {
            m.record_failure(now);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(snap.gauge("health.test.site.state"), Some(2.0));
        assert_eq!(snap.counter("health.test.site.transitions"), Some(2));
    }

    #[test]
    fn same_observation_sequence_reproduces_transitions() {
        let drive = |m: &mut HealthMonitor| {
            let mut trace = Vec::new();
            for now in 0..40u64 {
                match now % 7 {
                    0 | 1 => m.record_progress(now),
                    2..=4 => m.record_idle(now),
                    _ => m.record_failure(now),
                }
                trace.push((m.state(), m.should_attempt(now)));
            }
            trace
        };
        assert_eq!(drive(&mut monitor()), drive(&mut monitor()));
    }
}
