//! Ingest error type.

use std::error::Error;
use std::fmt;

/// Errors from the ingestion front-end.
#[derive(Debug)]
#[non_exhaustive]
pub enum IngestError {
    /// The stream was closed; no further blocks can be sealed or
    /// consumed.
    Closed,
    /// An [`crate::SourceId`] that this ingestor never registered.
    UnknownSource(usize),
    /// Under [`crate::LagPolicy::BlockSource`] with a configured
    /// `max_stall`, the consumer failed to free queue space before the
    /// watchdog fired. This is a backpressure signal, not data loss:
    /// the sealed block was merged into the queue tail (degraded
    /// coalescing) before returning, so no events were dropped.
    StallTimeout {
        /// How long the producer waited before giving up, in
        /// nanoseconds.
        waited_nanos: u64,
    },
    /// Journaling the multiplexed stream failed.
    Journal(arb_journal::JournalError),
    /// Applying a consumed batch to the runtime failed.
    Engine(arb_engine::EngineError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Closed => write!(f, "ingest stream is closed"),
            IngestError::UnknownSource(index) => {
                write!(f, "unknown ingest source index {index}")
            }
            IngestError::StallTimeout { waited_nanos } => write!(
                f,
                "ingest consumer stalled past the watchdog: waited {:.3}ms \
                 for queue space (sealed block merged into the tail)",
                *waited_nanos as f64 / 1e6
            ),
            IngestError::Journal(e) => write!(f, "ingest journal error: {e}"),
            IngestError::Engine(e) => write!(f, "ingest engine error: {e}"),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Journal(e) => Some(e),
            IngestError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<arb_journal::JournalError> for IngestError {
    fn from(e: arb_journal::JournalError) -> Self {
        IngestError::Journal(e)
    }
}

impl From<arb_engine::EngineError> for IngestError {
    fn from(e: arb_engine::EngineError) -> Self {
        IngestError::Engine(e)
    }
}
