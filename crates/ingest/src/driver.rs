//! The consumer half: drains sealed batches into a [`ShardedRuntime`].

use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_engine::{OpportunityPipeline, RuntimeCheckpoint, RuntimeReport, ShardedRuntime};
use arb_obs::{Counter, Histogram, Marker, Obs, SpanTimer};

use crate::error::IngestError;
use crate::queue::IngestBatch;
use crate::source::IngestHandle;

/// Pre-resolved apply-side instruments (see [`IngestDriver::set_obs`]).
#[derive(Debug, Clone)]
struct DriverObs {
    /// Wraps feed routing + `apply_events` for one batch.
    apply: SpanTimer,
    /// Seal → ranking-updated latency per batch.
    e2e_ns: Histogram,
    /// Flight-recorder tick mark; the value is the zero-based index of
    /// the batch just applied, so a post-mortem dump shows exactly
    /// which tick the process died on.
    tick: Marker,
    chain_events_applied: Counter,
    feed_updates_applied: Counter,
    raw_events_applied: Counter,
}

/// Consumes [`IngestBatch`]es from an [`IngestHandle`] and applies them
/// to a [`ShardedRuntime`], splitting inline [`Event::FeedPrice`]
/// updates into the owned [`PriceTable`] so the batch's chain events are
/// evaluated under the batch's final prices — the same "feed first,
/// then events" order a directly-fed runtime sees each tick.
#[derive(Debug)]
pub struct IngestDriver {
    runtime: ShardedRuntime,
    feed: PriceTable,
    handle: IngestHandle,
    scratch: Vec<Event>,
    chain_events_applied: u64,
    feed_updates_applied: u64,
    raw_events_applied: u64,
    last_latency_nanos: u64,
    batches_applied: u64,
    obs: Option<DriverObs>,
}

impl IngestDriver {
    /// Wraps an already-current runtime and feed around `handle`.
    pub fn new(runtime: ShardedRuntime, feed: PriceTable, handle: IngestHandle) -> Self {
        IngestDriver {
            runtime,
            feed,
            handle,
            scratch: Vec::new(),
            chain_events_applied: 0,
            feed_updates_applied: 0,
            raw_events_applied: 0,
            last_latency_nanos: 0,
            batches_applied: 0,
            obs: None,
        }
    }

    /// Attaches observability to the apply side — an `ingest.apply_ns`
    /// span per batch, the `ingest.e2e_ns` seal-to-ranking latency
    /// histogram, an `ingest.tick` flight mark per batch — and forwards
    /// the handle to the wrapped runtime so engine refresh/merge spans
    /// land in the same registry.
    pub fn set_obs(&mut self, obs: &Obs) {
        let registry = obs.registry();
        self.obs = Some(DriverObs {
            apply: obs.span("ingest.apply_ns"),
            e2e_ns: registry.histogram("ingest.e2e_ns"),
            tick: obs.marker("ingest.tick"),
            chain_events_applied: registry.counter("ingest.chain_events_applied"),
            feed_updates_applied: registry.counter("ingest.feed_updates_applied"),
            raw_events_applied: registry.counter("ingest.raw_events_applied"),
        });
        self.runtime.set_obs(obs);
    }

    /// Applies the next queued batch if one is ready. `Ok(None)` means
    /// the queue was empty (closed or not — check
    /// [`IngestHandle::is_closed`] to tell the cases apart).
    ///
    /// # Errors
    ///
    /// [`IngestError::Engine`] when the runtime rejects the batch.
    pub fn try_step(&mut self) -> Result<Option<RuntimeReport>, IngestError> {
        match self.handle.try_pop() {
            Some(batch) => self.apply(batch).map(Some),
            None => Ok(None),
        }
    }

    /// Blocks for the next batch and applies it; `Ok(None)` once the
    /// stream is closed and fully drained.
    ///
    /// # Errors
    ///
    /// As [`IngestDriver::try_step`].
    pub fn step_blocking(&mut self) -> Result<Option<RuntimeReport>, IngestError> {
        match self.handle.pop_blocking() {
            Some(batch) => self.apply(batch).map(Some),
            None => Ok(None),
        }
    }

    /// Drains every currently queued batch and returns the report from
    /// the last one applied (`None` when nothing was queued).
    ///
    /// # Errors
    ///
    /// As [`IngestDriver::try_step`].
    pub fn drain(&mut self) -> Result<Option<RuntimeReport>, IngestError> {
        let mut last = None;
        while let Some(batch) = self.handle.try_pop() {
            last = Some(self.apply(batch)?);
        }
        Ok(last)
    }

    fn apply(&mut self, batch: IngestBatch) -> Result<RuntimeReport, IngestError> {
        let apply_span = self.obs.as_ref().map(|o| o.apply.start());
        self.scratch.clear();
        for event in &batch.events {
            if let Some((token, price)) = event.as_feed_price() {
                self.feed.set(token, price);
                self.feed_updates_applied += 1;
            } else {
                self.scratch.push(*event);
            }
        }
        self.chain_events_applied += self.scratch.len() as u64;
        self.raw_events_applied += batch.raw_events as u64;
        let report = self.runtime.apply_events(&self.scratch, &self.feed)?;
        self.last_latency_nanos = batch.sealed_at.elapsed().as_nanos() as u64;
        drop(apply_span);
        if let Some(obs) = &self.obs {
            obs.e2e_ns.record(self.last_latency_nanos);
            obs.tick.mark(self.batches_applied);
            obs.chain_events_applied
                .set_at_least(self.chain_events_applied);
            obs.feed_updates_applied
                .set_at_least(self.feed_updates_applied);
            obs.raw_events_applied.set_at_least(self.raw_events_applied);
        }
        self.batches_applied += 1;
        Ok(report)
    }

    /// Captures runtime state *plus* the current price table (sorted by
    /// token id, so the snapshot bytes are deterministic), making the
    /// checkpoint self-contained: recovery needs no live feed. The
    /// caller owns [`RuntimeCheckpoint::source_positions`].
    pub fn checkpoint(&self) -> RuntimeCheckpoint {
        let mut checkpoint = self.runtime.checkpoint();
        let mut feed: Vec<(u32, u64)> = self
            .feed
            .iter()
            .map(|(token, price)| (token.index() as u32, price.to_bits()))
            .collect();
        feed.sort_unstable_by_key(|&(token, _)| token);
        checkpoint.feed = feed;
        checkpoint
    }

    /// Rebuilds a driver from a checkpoint: the runtime restores
    /// exactly and the price table is reloaded from the checkpoint's
    /// feed section.
    ///
    /// # Errors
    ///
    /// [`IngestError::Engine`] when the runtime checkpoint fails
    /// validation.
    pub fn restore(
        pipeline: OpportunityPipeline,
        checkpoint: &RuntimeCheckpoint,
        handle: IngestHandle,
    ) -> Result<Self, IngestError> {
        let runtime = ShardedRuntime::restore(pipeline, checkpoint)?;
        let mut feed = PriceTable::new();
        for &(token, bits) in &checkpoint.feed {
            feed.set(TokenId::new(token), f64::from_bits(bits));
        }
        Ok(IngestDriver::new(runtime, feed, handle))
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &ShardedRuntime {
        &self.runtime
    }

    /// Mutable access to the driven runtime — for installing hooks
    /// ([`arb_engine::TickHook`]) or observability on an already-wired
    /// driver. Structural mutation (rebuilds, checkpoint restores) stays
    /// the driver's job; callers should limit themselves to attachments.
    pub fn runtime_mut(&mut self) -> &mut ShardedRuntime {
        &mut self.runtime
    }

    /// The owned price table (current as of the last applied batch).
    pub fn feed(&self) -> &PriceTable {
        &self.feed
    }

    /// The consumer handle this driver drains.
    pub fn handle(&self) -> &IngestHandle {
        &self.handle
    }

    /// Chain (non-feed) events handed to the runtime so far.
    pub fn chain_events_applied(&self) -> u64 {
        self.chain_events_applied
    }

    /// Inline feed updates absorbed into the price table so far.
    pub fn feed_updates_applied(&self) -> u64 {
        self.feed_updates_applied
    }

    /// Raw (pre-coalesce) events the applied batches subsumed.
    pub fn raw_events_applied(&self) -> u64 {
        self.raw_events_applied
    }

    /// Sealed batches applied to the runtime so far. The `ingest.tick`
    /// flight-recorder mark carries the zero-based index, so after `n`
    /// applied batches the newest mark reads `n - 1`.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Seal-to-ranking latency of the most recent batch, in nanoseconds.
    pub fn last_latency_nanos(&self) -> u64 {
        self.last_latency_nanos
    }
}
