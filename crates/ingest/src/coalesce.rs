//! Last-write-wins event coalescing.
//!
//! Within one sealed block, only the *final* `Sync` per pool (and the
//! final `FeedPrice` per token) can influence the post-block ranking:
//!
//! * `TokenGraph::apply_sync` replaces reserves with the **absolute**
//!   values carried by the event, so any earlier `Sync` of the same
//!   pool is fully overwritten by a later one — including the
//!   retire/revive transitions, which are themselves a function of the
//!   last applied reserves only. Live slots therefore end bit-identical
//!   whether the intermediate `Sync`s were applied or skipped. (The one
//!   observable difference is the *last valid* reserves remembered by a
//!   slot retired mid-block — state that is unreadable until a reviving
//!   `Sync`, which overwrites it absolutely. The crate's proptests pin
//!   both halves of this argument.)
//! * `PriceTable::set` is an absolute overwrite per token, and the
//!   consumer refreshes rankings once per batch under the final table.
//!
//! `PoolCreated` is a **barrier**: it allocates the next pool slot, so
//! no event may move across it — a `Sync` before the creation refers to
//! a different (smaller) id space than one after it. Coalescing
//! restarts on the far side of every barrier. `Swap`/`Mint`/`Burn`
//! carry no reserve state (engines use them only to mark pools dirty)
//! and pass through untouched, in order.
//!
//! A coalesced event keeps the queue position of the **first** write it
//! subsumes while carrying the payload of the **last** — positions only
//! ever move earlier, so an event can never migrate past a barrier that
//! followed it.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use arb_dexsim::events::Event;

/// Collapses `events` last-write-wins per pool (`Sync`) and per token
/// (`FeedPrice`), treating `PoolCreated` as a barrier. All other events
/// pass through in order. The result applied to a `TokenGraph` +
/// `PriceTable` yields the same live state as applying `events`
/// unabridged — see the module docs for why, and the crate proptests
/// for the harness that checks it against random interleavings.
pub fn coalesce(events: &[Event]) -> Vec<Event> {
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    // Position in `out` of the latest coalescible write per pool/token.
    let mut sync_at: HashMap<u32, usize> = HashMap::new();
    let mut feed_at: HashMap<u32, usize> = HashMap::new();
    for &event in events {
        match event {
            Event::Sync { pool, .. } => match sync_at.entry(pool.index() as u32) {
                Entry::Occupied(slot) => out[*slot.get()] = event,
                Entry::Vacant(slot) => {
                    slot.insert(out.len());
                    out.push(event);
                }
            },
            Event::FeedPrice { token, .. } => match feed_at.entry(token.index() as u32) {
                Entry::Occupied(slot) => out[*slot.get()] = event,
                Entry::Vacant(slot) => {
                    slot.insert(out.len());
                    out.push(event);
                }
            },
            Event::PoolCreated { .. } => {
                // Barrier: syncs on either side see different slot
                // universes; restart coalescing. Feed prices commute
                // with structure (prices are only read at refresh time,
                // after the whole batch), so `feed_at` survives.
                sync_at.clear();
                out.push(event);
            }
            _ => out.push(event),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::PoolId;
    use arb_amm::token::TokenId;

    fn sync(pool: u32, reserve: u128) -> Event {
        Event::Sync {
            pool: PoolId::new(pool),
            reserve_a: reserve,
            reserve_b: reserve + 1,
        }
    }

    fn created(pool: u32) -> Event {
        Event::PoolCreated {
            pool: PoolId::new(pool),
            token_a: TokenId::new(0),
            token_b: TokenId::new(1),
            reserve_a: 10,
            reserve_b: 10,
            fee: FeeRate::UNISWAP_V2,
        }
    }

    #[test]
    fn last_sync_per_pool_wins_at_the_first_position() {
        let stream = [sync(0, 1), sync(1, 1), sync(0, 2), sync(0, 3)];
        assert_eq!(coalesce(&stream), vec![sync(0, 3), sync(1, 1)]);
    }

    #[test]
    fn pool_created_is_a_barrier() {
        let stream = [sync(0, 1), created(3), sync(0, 2)];
        assert_eq!(coalesce(&stream), stream.to_vec());
        // …and coalescing resumes independently on each side.
        let stream = [sync(0, 1), sync(0, 2), created(3), sync(0, 4), sync(0, 5)];
        assert_eq!(coalesce(&stream), vec![sync(0, 2), created(3), sync(0, 5)]);
    }

    #[test]
    fn feed_prices_coalesce_per_token_across_barriers() {
        let t = TokenId::new;
        let stream = [
            Event::feed_price(t(0), 1.0),
            Event::feed_price(t(1), 5.0),
            created(3),
            Event::feed_price(t(0), 2.0),
        ];
        assert_eq!(
            coalesce(&stream),
            vec![
                Event::feed_price(t(0), 2.0),
                Event::feed_price(t(1), 5.0),
                created(3),
            ]
        );
    }

    #[test]
    fn non_reserve_events_pass_through_in_order() {
        let swap = Event::Swap {
            pool: PoolId::new(0),
            token_in: TokenId::new(0),
            amount_in: 5,
            amount_out: 4,
        };
        let stream = [sync(0, 1), swap, sync(0, 2)];
        assert_eq!(coalesce(&stream), vec![sync(0, 2), swap]);
    }

    #[test]
    fn retire_then_revive_collapses_to_the_final_state() {
        // A drain (zero reserves) followed by a refill coalesces to just
        // the refill: the intermediate retirement is unobservable.
        let stream = [sync(0, 100), sync(0, 0), sync(0, 250)];
        assert_eq!(coalesce(&stream), vec![sync(0, 250)]);
    }

    #[test]
    fn empty_and_singleton_streams_are_untouched() {
        assert_eq!(coalesce(&[]), Vec::<Event>::new());
        assert_eq!(coalesce(&[sync(2, 7)]), vec![sync(2, 7)]);
    }
}
