//! Ingestion counters: what the front-end absorbed, dropped via
//! coalescing, and how hard the boundary pushed back.

use std::fmt;

/// Cumulative front-end counters, snapshot via
/// [`crate::Ingestor::stats`] / [`crate::IngestHandle::stats`].
///
/// The flow invariant on a fully drained stream is
/// `events_in == events_out + coalesced_away`: every multiplexed event
/// is either delivered to the consumer or provably subsumed by a later
/// one (last-write-wins per pool / per token).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Raw events accepted across all sources (pre-coalescing).
    pub events_in: u64,
    /// Events actually delivered to the consumer (post-coalescing).
    pub events_out: u64,
    /// Events discharged by coalescing (within a block, plus across
    /// blocks under the degraded merge policy).
    pub coalesced_away: u64,
    /// Blocks sealed by the producer.
    pub batches_sealed: u64,
    /// Batches popped by the consumer.
    pub batches_delivered: u64,
    /// Blocks merged into an already-queued batch because the queue was
    /// full under [`crate::LagPolicy::CoalesceHarder`].
    pub degraded_merges: u64,
    /// Highest queue depth (in batches) ever observed.
    pub depth_high_water: usize,
    /// Total time the producer spent blocked on a full queue under
    /// [`crate::LagPolicy::BlockSource`], in nanoseconds.
    pub stall_nanos: u64,
}

impl IngestStats {
    /// Raw-to-delivered compression: `events_in / events_out`. `1.0`
    /// means coalescing discharged nothing; `2.0` means the engine saw
    /// half the raw traffic. Counts only delivered events, so read it
    /// after draining. Returns 1.0 before anything was delivered.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.events_out == 0 {
            1.0
        } else {
            self.events_in as f64 / self.events_out as f64
        }
    }
}

impl fmt::Display for IngestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in / {} out ({:.2}x coalesce), {} sealed / {} delivered \
             ({} degraded merges), depth hw {}, {:.3}ms stalled",
            self.events_in,
            self.events_out,
            self.coalesce_ratio(),
            self.batches_sealed,
            self.batches_delivered,
            self.degraded_merges,
            self.depth_high_water,
            self.stall_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_the_empty_stream() {
        assert_eq!(IngestStats::default().coalesce_ratio(), 1.0);
        let stats = IngestStats {
            events_in: 10,
            events_out: 4,
            coalesced_away: 6,
            ..IngestStats::default()
        };
        assert!((stats.coalesce_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_a_one_liner() {
        let line = IngestStats::default().to_string();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains("coalesce"), "{line}");
    }
}
