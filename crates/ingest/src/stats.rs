//! Ingestion counters: what the front-end absorbed, dropped via
//! coalescing, and how hard the boundary pushed back.

use std::fmt;

use arb_obs::{Counter, Gauge, Registry};

/// Cumulative front-end counters, snapshot via
/// [`crate::Ingestor::stats`] / [`crate::IngestHandle::stats`].
///
/// The flow invariant on a fully drained stream is
/// `events_in == events_out + coalesced_away`: every multiplexed event
/// is either delivered to the consumer or provably subsumed by a later
/// one (last-write-wins per pool / per token).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Raw events accepted across all sources (pre-coalescing).
    pub events_in: u64,
    /// Events actually delivered to the consumer (post-coalescing).
    pub events_out: u64,
    /// Events discharged by coalescing (within a block, plus across
    /// blocks under the degraded merge policy).
    pub coalesced_away: u64,
    /// Blocks sealed by the producer.
    pub batches_sealed: u64,
    /// Batches popped by the consumer.
    pub batches_delivered: u64,
    /// Blocks merged into an already-queued batch because the queue was
    /// full under [`crate::LagPolicy::CoalesceHarder`].
    pub degraded_merges: u64,
    /// Highest queue depth (in batches) ever observed.
    pub depth_high_water: usize,
    /// Total time the producer spent blocked on a full queue under
    /// [`crate::LagPolicy::BlockSource`], in nanoseconds.
    pub stall_nanos: u64,
    /// Times the `max_stall` watchdog fired under
    /// [`crate::LagPolicy::BlockSource`]: the producer gave up waiting,
    /// merged the sealed block into the queue tail, and surfaced
    /// [`crate::IngestError::StallTimeout`].
    pub stall_timeouts: u64,
    /// Journal commits that failed and were left pending for retry
    /// (the stream kept flowing in degraded, journal-lagging mode).
    pub journal_write_failures: u64,
    /// Journal commits that succeeded after at least one failure —
    /// each one drains the pending backlog and ends a degraded window.
    pub journal_recommits: u64,
}

impl IngestStats {
    /// Raw-to-delivered compression: `events_in / events_out`. `1.0`
    /// means coalescing discharged nothing; `2.0` means the engine saw
    /// half the raw traffic. Counts only delivered events, so read it
    /// after draining. Returns 1.0 before anything was delivered.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.events_out == 0 {
            1.0
        } else {
            self.events_in as f64 / self.events_out as f64
        }
    }

    /// The flow-ledger invariant: every absorbed event is delivered,
    /// coalesced away, or still queued (`queued_events`). On a fully
    /// drained stream `queued_events` is 0 and this reduces to
    /// `events_in == events_out + coalesced_away`. The queue asserts
    /// this (debug builds) every time a batch is enqueued or popped.
    pub fn ledger_balanced(&self, queued_events: u64) -> bool {
        self.events_in == self.events_out + self.coalesced_away + queued_events
    }
}

/// Pre-resolved registry instruments mirroring [`IngestStats`] — the
/// flow ledger exposed through `arb-obs` under `ingest.*`. `sync` is
/// called with the stats already updated (under the queue lock), so
/// the registry and the legacy struct can never drift apart.
#[derive(Debug, Clone)]
pub(crate) struct StatsMirror {
    events_in: Counter,
    events_out: Counter,
    coalesced_away: Counter,
    batches_sealed: Counter,
    batches_delivered: Counter,
    degraded_merges: Counter,
    depth_high_water: Counter,
    stall_ns: Counter,
    stall_timeouts: Counter,
    journal_write_failures: Counter,
    journal_recommits: Counter,
    coalesce_ratio: Gauge,
}

impl StatsMirror {
    pub fn new(registry: &Registry) -> Self {
        StatsMirror {
            events_in: registry.counter("ingest.events_in"),
            events_out: registry.counter("ingest.events_out"),
            coalesced_away: registry.counter("ingest.coalesced_away"),
            batches_sealed: registry.counter("ingest.batches_sealed"),
            batches_delivered: registry.counter("ingest.batches_delivered"),
            degraded_merges: registry.counter("ingest.degraded_merges"),
            depth_high_water: registry.counter("ingest.depth_high_water"),
            stall_ns: registry.counter("ingest.stall_ns"),
            stall_timeouts: registry.counter("ingest.stall_timeouts"),
            journal_write_failures: registry.counter("ingest.journal_write_failures"),
            journal_recommits: registry.counter("ingest.journal_recommits"),
            coalesce_ratio: registry.gauge("ingest.coalesce_ratio"),
        }
    }

    pub fn sync(&self, stats: &IngestStats) {
        self.events_in.set_at_least(stats.events_in);
        self.events_out.set_at_least(stats.events_out);
        self.coalesced_away.set_at_least(stats.coalesced_away);
        self.batches_sealed.set_at_least(stats.batches_sealed);
        self.batches_delivered.set_at_least(stats.batches_delivered);
        self.degraded_merges.set_at_least(stats.degraded_merges);
        self.depth_high_water
            .set_at_least(stats.depth_high_water as u64);
        self.stall_ns.set_at_least(stats.stall_nanos);
        self.stall_timeouts.set_at_least(stats.stall_timeouts);
        self.journal_write_failures
            .set_at_least(stats.journal_write_failures);
        self.journal_recommits.set_at_least(stats.journal_recommits);
        self.coalesce_ratio.set(stats.coalesce_ratio());
    }
}

impl fmt::Display for IngestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in / {} out ({:.2}x coalesce), {} sealed / {} delivered \
             ({} degraded merges), depth hw {}, {:.3}ms stalled \
             ({} timeouts), journal {} failed / {} recommitted",
            self.events_in,
            self.events_out,
            self.coalesce_ratio(),
            self.batches_sealed,
            self.batches_delivered,
            self.degraded_merges,
            self.depth_high_water,
            self.stall_nanos as f64 / 1e6,
            self.stall_timeouts,
            self.journal_write_failures,
            self.journal_recommits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_balances_on_a_drained_stream() {
        // Drained: everything in was either delivered or coalesced.
        let stats = IngestStats {
            events_in: 10,
            events_out: 6,
            coalesced_away: 4,
            ..IngestStats::default()
        };
        assert!(stats.ledger_balanced(0));
        // Mid-stream: two events still queued.
        let stats = IngestStats {
            events_in: 10,
            events_out: 4,
            coalesced_away: 4,
            ..IngestStats::default()
        };
        assert!(stats.ledger_balanced(2));
        assert!(!stats.ledger_balanced(0));
    }

    #[test]
    fn mirror_tracks_stats_and_ratio() {
        let registry = Registry::new();
        let mirror = StatsMirror::new(&registry);
        let stats = IngestStats {
            events_in: 10,
            events_out: 4,
            coalesced_away: 6,
            batches_sealed: 3,
            batches_delivered: 2,
            degraded_merges: 1,
            depth_high_water: 5,
            stall_nanos: 77,
            stall_timeouts: 2,
            journal_write_failures: 4,
            journal_recommits: 3,
        };
        mirror.sync(&stats);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ingest.events_in"), Some(10));
        assert_eq!(snap.counter("ingest.events_out"), Some(4));
        assert_eq!(snap.counter("ingest.coalesced_away"), Some(6));
        assert_eq!(snap.counter("ingest.batches_sealed"), Some(3));
        assert_eq!(snap.counter("ingest.batches_delivered"), Some(2));
        assert_eq!(snap.counter("ingest.degraded_merges"), Some(1));
        assert_eq!(snap.counter("ingest.depth_high_water"), Some(5));
        assert_eq!(snap.counter("ingest.stall_ns"), Some(77));
        assert_eq!(snap.counter("ingest.stall_timeouts"), Some(2));
        assert_eq!(snap.counter("ingest.journal_write_failures"), Some(4));
        assert_eq!(snap.counter("ingest.journal_recommits"), Some(3));
        assert_eq!(snap.gauge("ingest.coalesce_ratio"), Some(2.5));
    }

    #[test]
    fn ratio_handles_the_empty_stream() {
        assert_eq!(IngestStats::default().coalesce_ratio(), 1.0);
        let stats = IngestStats {
            events_in: 10,
            events_out: 4,
            coalesced_away: 6,
            ..IngestStats::default()
        };
        assert!((stats.coalesce_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_a_one_liner() {
        let line = IngestStats::default().to_string();
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains("coalesce"), "{line}");
    }
}
