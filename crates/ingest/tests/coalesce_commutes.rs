//! Property test: [`coalesce`] commutes with `TokenGraph::apply_sync` /
//! `PriceTable::set` — applying a coalesced stream leaves every
//! *observable* piece of state (live flags, live reserves, log-rates,
//! pool count, price table) bit-identical to applying the raw stream,
//! across random interleavings of `Sync`s, `PoolCreated` barriers, and
//! retire/revive transitions. The one deliberately unobservable
//! difference — the "last valid reserves" remembered inside a slot that
//! is retired at end of stream — is pinned by the convergence half: a
//! reviving `Sync` overwrites it absolutely, after which the graphs
//! agree everywhere.

use arb_amm::fee::FeeRate;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_dexsim::units::{to_display, to_raw};
use arb_graph::TokenGraph;
use arb_ingest::coalesce;
use proptest::prelude::*;

const TOKENS: u32 = 4;
const BASE_POOLS: u32 = 4;

fn base_graph() -> TokenGraph {
    let pools = (0..BASE_POOLS)
        .map(|i| {
            Pool::new(
                TokenId::new(i % TOKENS),
                TokenId::new((i + 1) % TOKENS),
                100.0 + f64::from(i),
                120.0 + f64::from(i),
                FeeRate::UNISWAP_V2,
            )
            .expect("valid base pool")
        })
        .collect();
    TokenGraph::new(pools).expect("valid base graph")
}

/// Decodes one fuzzed command byte pair into an event against the
/// current slot count. Roughly half the syncs are degenerate (zero
/// reserves) so retire/revive transitions are exercised constantly.
fn build_event(op: u8, value: u8, slots: &mut u32) -> Event {
    match op % 8 {
        // Barrier: create a pool on the next slot.
        0 => {
            let pool = PoolId::new(*slots);
            *slots += 1;
            Event::PoolCreated {
                pool,
                token_a: TokenId::new(u32::from(value) % TOKENS),
                token_b: TokenId::new((u32::from(value) + 1) % TOKENS),
                reserve_a: to_raw(50.0 + f64::from(value)),
                reserve_b: to_raw(60.0 + f64::from(value)),
                fee: FeeRate::UNISWAP_V2,
            }
        }
        // Degenerate sync: retires the pool (reserve 0).
        1 | 2 => Event::Sync {
            pool: PoolId::new(u32::from(value) % *slots),
            reserve_a: 0,
            reserve_b: to_raw(10.0),
        },
        // Feed price move.
        3 => Event::feed_price(
            TokenId::new(u32::from(value) % TOKENS),
            1.0 + f64::from(value) / 7.0,
        ),
        // Valid sync: updates or revives.
        _ => Event::Sync {
            pool: PoolId::new(u32::from(value) % *slots),
            reserve_a: to_raw(5.0 + f64::from(op) + f64::from(value)),
            reserve_b: to_raw(9.0 + f64::from(value)),
        },
    }
}

fn apply(graph: &mut TokenGraph, feed: &mut PriceTable, events: &[Event]) {
    for event in events {
        match *event {
            Event::Sync {
                pool,
                reserve_a,
                reserve_b,
            } => {
                graph
                    .apply_sync(pool, to_display(reserve_a), to_display(reserve_b))
                    .expect("sync targets an allocated slot");
            }
            Event::PoolCreated {
                token_a,
                token_b,
                reserve_a,
                reserve_b,
                fee,
                ..
            } => {
                let pool = Pool::new(
                    token_a,
                    token_b,
                    to_display(reserve_a),
                    to_display(reserve_b),
                    fee,
                )
                .expect("created pools carry valid reserves");
                graph.add_pool(pool);
            }
            Event::FeedPrice { token, price_bits } => {
                feed.set(token, f64::from_bits(price_bits));
            }
            _ => {}
        }
    }
}

fn assert_live_state_identical(raw: &TokenGraph, merged: &TokenGraph) {
    assert_eq!(raw.pool_count(), merged.pool_count());
    assert_eq!(raw.live_pool_count(), merged.live_pool_count());
    for index in 0..raw.pool_count() {
        let id = PoolId::new(index as u32);
        assert_eq!(raw.is_live(id), merged.is_live(id), "liveness of {id}");
        if raw.is_live(id) {
            let (a, b) = (raw.pool(id).unwrap(), merged.pool(id).unwrap());
            assert_eq!(a.reserve_a().to_bits(), b.reserve_a().to_bits(), "{id}");
            assert_eq!(a.reserve_b().to_bits(), b.reserve_b().to_bits(), "{id}");
            let (ra, rb) = (raw.pool_log_rates(id), merged.pool_log_rates(id));
            assert_eq!(ra[0].to_bits(), rb[0].to_bits(), "log rate of {id}");
            assert_eq!(ra[1].to_bits(), rb[1].to_bits(), "log rate of {id}");
        }
    }
}

fn assert_feeds_identical(raw: &PriceTable, merged: &PriceTable) {
    assert_eq!(raw.len(), merged.len());
    let collect = |table: &PriceTable| {
        let mut entries: Vec<(usize, u64)> = table
            .iter()
            .map(|(token, price)| (token.index(), price.to_bits()))
            .collect();
        entries.sort_unstable();
        entries
    };
    assert_eq!(collect(raw), collect(merged));
}

proptest! {
    #[test]
    fn coalesced_stream_yields_identical_observable_state(
        ops in proptest::collection::vec((0u8..255, 0u8..255), 0..48),
    ) {
        let mut slots = BASE_POOLS;
        let events: Vec<Event> = ops
            .iter()
            .map(|&(op, value)| build_event(op, value, &mut slots))
            .collect();
        let merged_events = coalesce(&events);
        prop_assert!(merged_events.len() <= events.len());

        let (mut raw_graph, mut raw_feed) = (base_graph(), PriceTable::new());
        let (mut merged_graph, mut merged_feed) = (base_graph(), PriceTable::new());
        apply(&mut raw_graph, &mut raw_feed, &events);
        apply(&mut merged_graph, &mut merged_feed, &merged_events);
        assert_live_state_identical(&raw_graph, &merged_graph);
        assert_feeds_identical(&raw_feed, &merged_feed);

        // Convergence: revive every slot that ended retired. The reviving
        // sync is absolute, so after it the two graphs must agree on
        // retired slots too — the only state coalescing was allowed to
        // diverge on is unobservable and overwritten here.
        let revive: Vec<Event> = (0..raw_graph.pool_count() as u32)
            .filter(|&i| !raw_graph.is_live(PoolId::new(i)))
            .map(|i| Event::Sync {
                pool: PoolId::new(i),
                reserve_a: to_raw(77.0 + f64::from(i)),
                reserve_b: to_raw(88.0),
            })
            .collect();
        apply(&mut raw_graph, &mut raw_feed, &revive);
        apply(&mut merged_graph, &mut merged_feed, &revive);
        prop_assert_eq!(raw_graph.live_pool_count(), raw_graph.pool_count());
        assert_live_state_identical(&raw_graph, &merged_graph);
    }

    #[test]
    fn coalescing_is_idempotent(
        ops in proptest::collection::vec((0u8..255, 0u8..255), 0..48),
    ) {
        let mut slots = BASE_POOLS;
        let events: Vec<Event> = ops
            .iter()
            .map(|&(op, value)| build_event(op, value, &mut slots))
            .collect();
        let once = coalesce(&events);
        prop_assert_eq!(coalesce(&once), once.clone());
    }
}
