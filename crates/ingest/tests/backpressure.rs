//! Backpressure contract: a stalled consumer never causes drops or
//! reordering under `LagPolicy::BlockSource`, and never unbounded queue
//! growth under `LagPolicy::CoalesceHarder`.

use std::thread;
use std::time::Duration;

use arb_amm::pool::PoolId;
use arb_dexsim::events::Event;
use arb_ingest::{HealthState, IngestConfig, IngestError, Ingestor, LagPolicy};

fn sync(pool: u32, reserve: u128) -> Event {
    Event::Sync {
        pool: PoolId::new(pool),
        reserve_a: reserve,
        reserve_b: reserve + 1,
    }
}

#[test]
fn stalled_consumer_never_drops_or_reorders_events() {
    const BLOCKS: u64 = 50;
    const PER_BLOCK: u64 = 4;

    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 2,
        lag_policy: LagPolicy::BlockSource,
        // Raw delivery: every event must come out exactly as it went in.
        coalesce: false,
        ..IngestConfig::default()
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    let sent: Vec<Event> = (0..BLOCKS * PER_BLOCK)
        // All targeting pool 0: maximally coalescible, so only the
        // `coalesce: false` config (and no silent drop) can preserve them.
        .map(|i| sync(0, u128::from(i)))
        .collect();

    let producer = {
        let sent = sent.clone();
        thread::spawn(move || {
            for block in sent.chunks(PER_BLOCK as usize) {
                ingestor
                    .offer(chain, block.iter().copied())
                    .expect("chain source is registered");
                ingestor.seal_block().expect("seal while open");
            }
            let stats = ingestor.stats();
            ingestor.close();
            stats
        })
    };

    // Let the producer slam into the full queue before draining.
    thread::sleep(Duration::from_millis(60));
    let mut received: Vec<Event> = Vec::new();
    let mut offsets: Vec<u64> = Vec::new();
    while let Some(batch) = handle.pop_blocking() {
        offsets.push(batch.first_offset);
        received.extend(batch.events);
    }
    let producer_stats = producer.join().expect("producer thread panics");

    assert_eq!(received, sent, "no drops, no reorders, no coalescing");
    let mut sorted = offsets.clone();
    sorted.sort_unstable();
    assert_eq!(offsets, sorted, "batches arrive in stream order");
    assert!(
        producer_stats.stall_nanos > 0,
        "the producer must have blocked on the full queue: {producer_stats}"
    );
    let stats = handle.stats();
    assert_eq!(stats.events_in, BLOCKS * PER_BLOCK);
    assert_eq!(stats.events_out + stats.coalesced_away, stats.events_in);
    assert_eq!(stats.coalesced_away, 0);
    assert_eq!(stats.depth_high_water, 2, "bounded at capacity");
    assert_eq!(stats.batches_delivered, BLOCKS);
}

#[test]
fn coalesce_harder_bounds_depth_without_losing_final_state() {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::CoalesceHarder,
        coalesce: true,
        ..IngestConfig::default()
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    // Nobody consumes: 32 sealed blocks of 3 pools each pile into one
    // merged batch instead of growing the queue.
    for round in 0..32u128 {
        for pool in 0..3u32 {
            ingestor
                .offer(chain, [sync(pool, 1000 * round + u128::from(pool))])
                .expect("registered");
        }
        ingestor.seal_block().expect("seal while open");
    }
    ingestor.close();

    assert_eq!(handle.depth(), 1, "degraded mode keeps the queue bounded");
    let batch = handle.pop_blocking().expect("one merged batch");
    assert!(handle.pop_blocking().is_none(), "closed after the drain");
    assert_eq!(batch.first_offset, 0, "merged batch keeps earliest offset");
    assert_eq!(batch.raw_events, 32 * 3);
    // Last write wins per pool across every merged block.
    assert_eq!(
        batch.events,
        vec![sync(0, 31_000), sync(1, 31_001), sync(2, 31_002)]
    );

    let stats = handle.stats();
    assert_eq!(stats.events_in, 32 * 3);
    assert_eq!(stats.events_out, 3);
    assert_eq!(stats.events_out + stats.coalesced_away, stats.events_in);
    assert_eq!(stats.degraded_merges, 31);
    assert_eq!(stats.depth_high_water, 1);
    assert!(stats.coalesce_ratio() >= 30.0, "{stats}");
}

#[test]
fn freeing_a_slot_unblocks_a_stalled_producer() {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::BlockSource,
        coalesce: true,
        ..IngestConfig::default()
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    ingestor.offer(chain, [sync(0, 1)]).expect("registered");
    ingestor.seal_block().expect("first seal fits");
    let producer = thread::spawn(move || {
        ingestor.offer(chain, [sync(0, 2)]).expect("registered");
        // Queue is full and nobody pops: this blocks until close().
        ingestor.seal_block()
    });

    thread::sleep(Duration::from_millis(30));
    let first = handle.pop_blocking().expect("first sealed batch");
    assert_eq!(first.events, vec![sync(0, 1)]);
    let sealed = producer.join().expect("producer thread panics");
    assert!(sealed.is_ok(), "freed slot lets the stalled seal finish");
    assert_eq!(
        handle.pop_blocking().expect("second batch").events,
        vec![sync(0, 2)]
    );
}

#[test]
fn max_stall_watchdog_degrades_instead_of_blocking_forever() {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::BlockSource,
        coalesce: true,
        max_stall: Some(Duration::from_millis(20)),
        ..IngestConfig::default()
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    ingestor.offer(chain, [sync(0, 1)]).expect("registered");
    ingestor.seal_block().expect("first seal fits");
    ingestor.offer(chain, [sync(0, 2)]).expect("registered");
    // Queue full, nobody popping: the watchdog must fire instead of
    // parking this thread forever.
    let err = ingestor.seal_block().expect_err("watchdog fires");
    assert!(
        matches!(err, IngestError::StallTimeout { waited_nanos } if waited_nanos > 0),
        "unexpected error: {err}"
    );
    assert_eq!(
        ingestor.consumer_health().state(),
        HealthState::Lagging,
        "a watchdog timeout demotes the consumer site"
    );

    // Backpressure, not data loss: the sealed block was merged into the
    // queue tail, last-write-wins.
    let batch = handle.pop_blocking().expect("merged batch");
    assert_eq!(batch.events, vec![sync(0, 2)]);
    assert_eq!(batch.raw_events, 2);
    let stats = handle.stats();
    assert_eq!(stats.stall_timeouts, 1);
    assert_eq!(stats.degraded_merges, 1);
    assert!(stats.ledger_balanced(0), "{stats}");

    // Once the consumer drains, the producer recovers on its next seal.
    ingestor.offer(chain, [sync(0, 3)]).expect("registered");
    ingestor.seal_block().expect("room again");
    assert_eq!(ingestor.consumer_health().state(), HealthState::Recovered);
}

/// An `IoShim` that fails the next `n` commits outright.
#[derive(Debug)]
struct FailNext(u32);

impl arb_journal::IoShim for FailNext {
    fn before_write(&mut self, _bytes: usize) -> arb_journal::WriteVerdict {
        if self.0 > 0 {
            self.0 -= 1;
            arb_journal::WriteVerdict::Fail(std::io::Error::other("injected write failure"))
        } else {
            arb_journal::WriteVerdict::Proceed
        }
    }
}

#[test]
fn journal_failures_degrade_serving_instead_of_aborting_it() {
    use std::sync::{Arc, Mutex};

    use arb_journal::{JournalConfig, JournalReader, JournalWriter};

    let dir = std::env::temp_dir().join(format!("arbloops-ingest-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = JournalWriter::open(&dir, JournalConfig::default()).expect("open journal");
    writer.set_io_shim(Box::new(FailNext(2)));
    let writer = Arc::new(Mutex::new(writer));

    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 8,
        ..IngestConfig::default()
    })
    .with_journal(Arc::clone(&writer));
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    // Two seals hit the broken disk: both still deliver their batches.
    for round in 0..2u128 {
        ingestor.offer(chain, [sync(0, round)]).expect("registered");
        ingestor
            .seal_block()
            .expect("journal failure must not abort the seal");
    }
    assert!(ingestor.journal_degraded(), "backlog pending retry");
    assert!(ingestor.last_journal_error().is_some());
    assert_eq!(ingestor.journal_health().state(), HealthState::Lagging);
    assert_eq!(handle.stats().journal_write_failures, 2);
    assert_eq!(
        writer.lock().unwrap().durable_offset(),
        0,
        "nothing durable while degraded"
    );

    // The disk heals: the next seal recommits the whole backlog.
    ingestor.offer(chain, [sync(0, 2)]).expect("registered");
    ingestor.seal_block().expect("seal after heal");
    assert!(!ingestor.journal_degraded(), "backlog drained");
    assert!(ingestor.last_journal_error().is_none());
    assert_eq!(handle.stats().journal_recommits, 1);
    assert_eq!(writer.lock().unwrap().durable_offset(), 3);

    // Delivery never paused, and the journal caught up to the full raw
    // stream.
    ingestor.close();
    let mut delivered = Vec::new();
    while let Some(batch) = handle.pop_blocking() {
        delivered.extend(batch.events);
    }
    assert_eq!(delivered, vec![sync(0, 0), sync(0, 1), sync(0, 2)]);
    drop(writer);
    let replayed = JournalReader::open(&dir)
        .expect("reopen journal")
        .read_from(0)
        .expect("read journal");
    assert_eq!(replayed, delivered, "journal holds the raw stream");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
