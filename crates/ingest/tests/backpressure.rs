//! Backpressure contract: a stalled consumer never causes drops or
//! reordering under `LagPolicy::BlockSource`, and never unbounded queue
//! growth under `LagPolicy::CoalesceHarder`.

use std::thread;
use std::time::Duration;

use arb_amm::pool::PoolId;
use arb_dexsim::events::Event;
use arb_ingest::{IngestConfig, Ingestor, LagPolicy};

fn sync(pool: u32, reserve: u128) -> Event {
    Event::Sync {
        pool: PoolId::new(pool),
        reserve_a: reserve,
        reserve_b: reserve + 1,
    }
}

#[test]
fn stalled_consumer_never_drops_or_reorders_events() {
    const BLOCKS: u64 = 50;
    const PER_BLOCK: u64 = 4;

    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 2,
        lag_policy: LagPolicy::BlockSource,
        // Raw delivery: every event must come out exactly as it went in.
        coalesce: false,
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    let sent: Vec<Event> = (0..BLOCKS * PER_BLOCK)
        // All targeting pool 0: maximally coalescible, so only the
        // `coalesce: false` config (and no silent drop) can preserve them.
        .map(|i| sync(0, u128::from(i)))
        .collect();

    let producer = {
        let sent = sent.clone();
        thread::spawn(move || {
            for block in sent.chunks(PER_BLOCK as usize) {
                ingestor
                    .offer(chain, block.iter().copied())
                    .expect("chain source is registered");
                ingestor.seal_block().expect("seal while open");
            }
            let stats = ingestor.stats();
            ingestor.close();
            stats
        })
    };

    // Let the producer slam into the full queue before draining.
    thread::sleep(Duration::from_millis(60));
    let mut received: Vec<Event> = Vec::new();
    let mut offsets: Vec<u64> = Vec::new();
    while let Some(batch) = handle.pop_blocking() {
        offsets.push(batch.first_offset);
        received.extend(batch.events);
    }
    let producer_stats = producer.join().expect("producer thread panics");

    assert_eq!(received, sent, "no drops, no reorders, no coalescing");
    let mut sorted = offsets.clone();
    sorted.sort_unstable();
    assert_eq!(offsets, sorted, "batches arrive in stream order");
    assert!(
        producer_stats.stall_nanos > 0,
        "the producer must have blocked on the full queue: {producer_stats}"
    );
    let stats = handle.stats();
    assert_eq!(stats.events_in, BLOCKS * PER_BLOCK);
    assert_eq!(stats.events_out + stats.coalesced_away, stats.events_in);
    assert_eq!(stats.coalesced_away, 0);
    assert_eq!(stats.depth_high_water, 2, "bounded at capacity");
    assert_eq!(stats.batches_delivered, BLOCKS);
}

#[test]
fn coalesce_harder_bounds_depth_without_losing_final_state() {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::CoalesceHarder,
        coalesce: true,
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    // Nobody consumes: 32 sealed blocks of 3 pools each pile into one
    // merged batch instead of growing the queue.
    for round in 0..32u128 {
        for pool in 0..3u32 {
            ingestor
                .offer(chain, [sync(pool, 1000 * round + u128::from(pool))])
                .expect("registered");
        }
        ingestor.seal_block().expect("seal while open");
    }
    ingestor.close();

    assert_eq!(handle.depth(), 1, "degraded mode keeps the queue bounded");
    let batch = handle.pop_blocking().expect("one merged batch");
    assert!(handle.pop_blocking().is_none(), "closed after the drain");
    assert_eq!(batch.first_offset, 0, "merged batch keeps earliest offset");
    assert_eq!(batch.raw_events, 32 * 3);
    // Last write wins per pool across every merged block.
    assert_eq!(
        batch.events,
        vec![sync(0, 31_000), sync(1, 31_001), sync(2, 31_002)]
    );

    let stats = handle.stats();
    assert_eq!(stats.events_in, 32 * 3);
    assert_eq!(stats.events_out, 3);
    assert_eq!(stats.events_out + stats.coalesced_away, stats.events_in);
    assert_eq!(stats.degraded_merges, 31);
    assert_eq!(stats.depth_high_water, 1);
    assert!(stats.coalesce_ratio() >= 30.0, "{stats}");
}

#[test]
fn freeing_a_slot_unblocks_a_stalled_producer() {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::BlockSource,
        coalesce: true,
    });
    let chain = ingestor.register_source("chain");
    let handle = ingestor.handle();

    ingestor.offer(chain, [sync(0, 1)]).expect("registered");
    ingestor.seal_block().expect("first seal fits");
    let producer = thread::spawn(move || {
        ingestor.offer(chain, [sync(0, 2)]).expect("registered");
        // Queue is full and nobody pops: this blocks until close().
        ingestor.seal_block()
    });

    thread::sleep(Duration::from_millis(30));
    let first = handle.pop_blocking().expect("first sealed batch");
    assert_eq!(first.events, vec![sync(0, 1)]);
    let sealed = producer.join().expect("producer thread panics");
    assert!(sealed.is_ok(), "freed slot lets the stalled seal finish");
    assert_eq!(
        handle.pop_blocking().expect("second batch").events,
        vec![sync(0, 2)]
    );
}
