//! Property tests for the log-linear histogram (ISSUE 9 satellite):
//!
//! 1. **Quantile accuracy** — over randomized samples, every reported
//!    quantile is within one bucket width of the exact order-statistic
//!    quantile (the bound [`arb_obs::bucket_width`] advertises).
//! 2. **Lossless concurrency** — N threads recording in parallel lose
//!    no counts: the snapshot's `count` and `sum` equal the totals fed
//!    in, because each record is a single `fetch_add` into exactly one
//!    bucket.

use arb_obs::{bucket_width, Registry};
use proptest::prelude::*;

/// Exact quantile over a sorted sample using the same nearest-rank
/// convention the histogram snapshot uses (`ceil(q * n)`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_one_bucket_width(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..400),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("prop.lat_ns");
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *samples.iter().max().unwrap());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let estimate = snap.quantile(q);
            let width = bucket_width(exact);
            let error = estimate.abs_diff(exact);
            prop_assert!(
                error <= width,
                "q={} exact={} estimate={} width={}",
                q, exact, estimate, width
            );
        }
    }

    #[test]
    fn quantile_estimate_never_exceeds_observed_max(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("prop.range");
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.5, 0.99, 1.0] {
            prop_assert!(snap.quantile(q) <= snap.max);
        }
    }
}

#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let reg = Registry::new();
    let h = reg.histogram("prop.concurrent");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            scope.spawn(move || {
                // Distinct deterministic values per thread, spanning
                // several octaves so many buckets contend.
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let snap = h.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.count, n, "lost or duplicated counts");
    assert_eq!(snap.sum, n * (n - 1) / 2, "lost or duplicated sum");
    assert_eq!(snap.max, n - 1);
}
