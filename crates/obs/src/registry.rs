//! The metrics registry: hierarchical names to lock-cheap instruments.
//!
//! Registration (name lookup, allocation) takes a mutex; the **record
//! path never does** — counters and gauges are a single atomic RMW,
//! histograms are three (bucket, sum, max). Handles are `Arc`-backed
//! and cheap to clone, so call sites resolve their instruments once and
//! hold them.
//!
//! Names are hierarchical dotted paths (`engine.refresh.eval_ns`): the
//! first segment is the subsystem (`ingest`, `engine`, `runtime`,
//! `serve`, `journal`, `bot`), the last segment carries the unit suffix
//! (`_ns` for nanosecond histograms, bare for counts).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Interned metric/span name id, as stored in flight-recorder events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// A monotone counter.
///
/// ```
/// let reg = arb_obs::Registry::new();
/// let c = reg.counter("ingest.events_in");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to `total` if it is below it — the bridge for
    /// mirroring an externally maintained cumulative total (a legacy
    /// stats field) into the registry without double counting.
    pub fn set_at_least(&self, total: u64) {
        self.cell.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64`.
///
/// ```
/// let reg = arb_obs::Registry::new();
/// let g = reg.gauge("ingest.coalesce_ratio");
/// g.set(0.25);
/// assert!((g.get() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Stores a new value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^3 = 8 log-linear sub-buckets per octave,
/// so one bucket spans at most 1/8th of its value (12.5% relative
/// width).
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets covering the full `u64` range: values below
/// [`SUB_BUCKETS`] get exact unit buckets, every octave above
/// contributes [`SUB_BUCKETS`] more. Max shift is `63 - SUB_BITS`.
pub(crate) const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB_BUCKETS as usize;

/// Bucket index for `value`: unit buckets below [`SUB_BUCKETS`], then
/// log-linear (top `SUB_BITS + 1` bits select the bucket).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let high = 63 - value.leading_zeros();
    let shift = high - SUB_BITS;
    (((shift as u64) << SUB_BITS) + (value >> shift)) as usize
}

/// Inclusive `[low, high]` value range covered by bucket `index`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return (index, index);
    }
    let shift = (index >> SUB_BITS) - 1;
    let top = index - (shift << SUB_BITS);
    // `low | (width - 1)` rather than `(top + 1) << shift` — the top
    // octave's upper bound is `u64::MAX` and the naive form overflows.
    (top << shift, (top << shift) | ((1 << shift) - 1))
}

/// The worst-case quantile error at `value`: the width of the bucket
/// `value` lands in.
#[must_use]
pub fn bucket_width(value: u64) -> u64 {
    let (low, high) = bucket_bounds(bucket_index(value));
    high - low + 1
}

/// A log-linear latency histogram: allocation-free, lock-free record
/// path (one `fetch_add` per bucket, plus `sum` and `max`), ≤12.5%
/// relative bucket width, full `u64` range.
///
/// ```
/// let reg = arb_obs::Registry::new();
/// let h = reg.histogram("engine.refresh.eval_ns");
/// for v in [10, 20, 30, 40, 1_000] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert_eq!(snap.max, 1_000);
/// assert!(snap.quantile(0.5) >= 20);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, || AtomicU64::new(0));
        Histogram {
            core: Arc::new(HistogramCore {
                buckets,
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. No allocation, no locks.
    #[inline]
    pub fn record(&self, value: u64) {
        self.core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(value, Ordering::Relaxed);
        self.core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    ///
    /// Concurrent recording keeps every count (each lands in exactly
    /// one bucket), though a snapshot racing a writer may see the
    /// bucket increment without the `sum` update or vice versa.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// A point-in-time histogram view; quantiles are computed here, off the
/// record path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket counts (see [`bucket_bounds`] for the value ranges).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the observed max. Within one bucket width of the
    /// exact quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of all observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value of one registered instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram aggregate.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of every registered instrument, sorted by
/// name. Feed it to [`crate::export::prometheus_text`] or
/// [`crate::export::json_lines`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl RegistrySnapshot {
    /// The counter registered under `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The gauge registered under `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// The histogram registered under `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }
}

#[derive(Debug, Default)]
struct NameTable {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

/// The shared registry. Clones are handles to the same instrument set.
///
/// ```
/// let reg = arb_obs::Registry::new();
/// reg.counter("bot.ticks").add(7);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("bot.ticks"), Some(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    names: Mutex<NameTable>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.inner.metrics.lock().expect("obs registry poisoned");
        if let Some(existing) = metrics.get(name) {
            return existing.clone();
        }
        let metric = make();
        metrics.insert(name.to_string(), metric.clone());
        metric
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("obs metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("obs metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("obs metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Interns `name` for compact reference from flight-recorder
    /// events. Idempotent.
    #[must_use]
    pub fn intern(&self, name: &str) -> NameId {
        let mut table = self.inner.names.lock().expect("obs name table poisoned");
        if let Some(&id) = table.ids.get(name) {
            return NameId(id);
        }
        let id = u32::try_from(table.names.len()).expect("obs name table overflow");
        table.names.push(name.to_string());
        table.ids.insert(name.to_string(), id);
        NameId(id)
    }

    /// Resolves an interned id back to its name.
    #[must_use]
    pub fn name_of(&self, id: NameId) -> Option<String> {
        let table = self.inner.names.lock().expect("obs name table poisoned");
        table.names.get(id.0 as usize).cloned()
    }

    /// A point-in-time view of every instrument, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.inner.metrics.lock().expect("obs registry poisoned");
        RegistrySnapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        for v in 0u64..4096 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "bounds miss {v}: [{lo}, {hi}]");
            last = idx;
        }
    }

    #[test]
    fn bucket_index_covers_u64_extremes() {
        for v in [u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) + 1] {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for v in [100u64, 1_000, 10_000, 1_000_000, 1 << 40] {
            let width = bucket_width(v);
            assert!(
                (width as f64) <= (v as f64) / 8.0 + 1.0,
                "width {width} too wide at {v}"
            );
        }
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        assert_eq!(snap.max, 100);
        let p50 = snap.p50();
        assert!((44..=56).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.quantile(1.0), 100);
    }

    #[test]
    fn registry_dedupes_and_snapshots() {
        let reg = Registry::new();
        reg.counter("a.b").add(2);
        reg.counter("a.b").add(3);
        reg.gauge("a.g").set(1.5);
        reg.histogram("a.h").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.b"), Some(5));
        assert_eq!(snap.gauge("a.g"), Some(1.5));
        assert_eq!(snap.histogram("a.h").map(|h| h.count), Some(1));
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.b", "a.g", "a.h"]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn intern_is_stable() {
        let reg = Registry::new();
        let a = reg.intern("one");
        let b = reg.intern("two");
        assert_eq!(reg.intern("one"), a);
        assert_ne!(a, b);
        assert_eq!(reg.name_of(a).as_deref(), Some("one"));
        assert_eq!(reg.name_of(NameId(99)), None);
    }
}
