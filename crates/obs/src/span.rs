//! Tick-scoped tracing spans.
//!
//! A [`SpanTimer`] is resolved once (histogram + interned name); each
//! [`SpanTimer::start`] returns a [`Span`] guard that, on drop, records
//! the elapsed nanoseconds into the histogram and appends a span event
//! to the flight recorder. A per-thread span stack tracks nesting depth
//! so a flight-recorder dump can reconstruct the span tree of a tick:
//! an event at depth `d` is a child of the most recent later-closing
//! event at depth `d - 1` on the same thread.
//!
//! ```
//! let obs = arb_obs::Obs::default();
//! let tick = obs.span("runtime.tick");
//! let refresh = obs.span("engine.refresh");
//! {
//!     let _tick = tick.start();
//!     let _refresh = refresh.start(); // depth 1, nested under the tick
//! }
//! assert_eq!(obs.registry().histogram("runtime.tick").snapshot().count, 1);
//! let events = obs.flight().snapshot();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].depth, 1); // inner span closes first
//! assert_eq!(events[1].depth, 0);
//! ```

use std::cell::Cell;
use std::time::Instant;

use crate::flight::FlightRecorder;
use crate::registry::{Histogram, NameId};

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// A resolved span instrument: start it to time a scope. Cheap to
/// clone; resolve once per call site and reuse.
#[derive(Debug, Clone)]
pub struct SpanTimer {
    name: NameId,
    histogram: Histogram,
    flight: Option<FlightRecorder>,
}

impl SpanTimer {
    /// A timer feeding `histogram`, tagged `name` in flight events.
    #[must_use]
    pub fn new(name: NameId, histogram: Histogram, flight: Option<FlightRecorder>) -> Self {
        SpanTimer {
            name,
            histogram,
            flight,
        }
    }

    /// Opens a span; the returned guard records on drop.
    #[must_use]
    pub fn start(&self) -> Span<'_> {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        Span {
            timer: self,
            start: Instant::now(),
            depth,
        }
    }
}

/// An open span. Dropping it records the elapsed time.
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a SpanTimer,
    start: Instant,
    depth: u16,
}

impl Span<'_> {
    /// Nesting depth this span opened at (0 = top of the stack).
    #[must_use]
    pub fn depth(&self) -> u16 {
        self.depth
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(self.depth));
        self.timer.histogram.record(dur_ns);
        if let Some(flight) = &self.timer.flight {
            flight.span(self.timer.name, self.depth, dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_histogram_and_flight() {
        let reg = Registry::new();
        let ring = FlightRecorder::new(16);
        let timer = SpanTimer::new(reg.intern("a"), reg.histogram("a"), Some(ring.clone()));
        {
            let span = timer.start();
            assert_eq!(span.depth(), 0);
        }
        assert_eq!(reg.histogram("a").snapshot().count, 1);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn nesting_depth_tracks_the_stack() {
        let reg = Registry::new();
        let timer = SpanTimer::new(reg.intern("n"), reg.histogram("n"), None);
        let outer = timer.start();
        assert_eq!(outer.depth(), 0);
        {
            let inner = timer.start();
            assert_eq!(inner.depth(), 1);
        }
        let sibling = timer.start();
        assert_eq!(sibling.depth(), 1);
        drop(sibling);
        drop(outer);
        let fresh = timer.start();
        assert_eq!(fresh.depth(), 0);
    }
}
