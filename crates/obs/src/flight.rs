//! The flight recorder: a fixed-size lock-free ring of recent span and
//! mark events for post-mortem dumps.
//!
//! Writers claim a slot with one `fetch_add` and publish it with a
//! seqlock-style stamp; readers ([`FlightRecorder::snapshot`]) validate
//! the stamp before and after copying a slot, so a snapshot taken while
//! writers are active simply skips the (at most handful of) slots being
//! overwritten — it never blocks them and never observes torn events.
//!
//! Dumps are JSON-lines, one event per line (names resolved through the
//! registry that interned them):
//!
//! ```text
//! {"seq":41,"t_ns":10531,"thread":0,"depth":1,"kind":"span","name":"engine.refresh","dur_ns":83211}
//! {"seq":42,"t_ns":10604,"thread":0,"depth":0,"kind":"mark","name":"ingest.tick","value":7}
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::registry::{NameId, Registry};

/// What a flight-recorder event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `value` is its duration in nanoseconds.
    Span,
    /// A point event: `value` is caller-defined (e.g. a tick number).
    Mark,
}

/// One decoded ring event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (monotone across the whole run).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// Recording thread (small dense ids, assigned on first record).
    pub thread: u32,
    /// Span-stack depth on the recording thread at record time.
    pub depth: u16,
    /// Span completion or point mark.
    pub kind: EventKind,
    /// Interned name (resolve via [`Registry::name_of`]).
    pub name: NameId,
    /// Duration (spans) or caller-defined value (marks).
    pub value: u64,
}

/// Stamp value meaning "slot is being written".
const WRITING: u64 = 0;

#[derive(Debug, Default)]
struct Slot {
    /// `seq + 1` of the event stored here, or [`WRITING`].
    stamp: AtomicU64,
    t_ns: AtomicU64,
    /// `thread << 32 | depth << 16 | kind`.
    meta: AtomicU64,
    name: AtomicU64,
    value: AtomicU64,
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_ID: u32 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn thread_id() -> u32 {
    THREAD_ID.with(|id| *id)
}

/// The shared ring. Clones are handles to the same ring.
///
/// ```
/// use arb_obs::{EventKind, FlightRecorder, Registry};
///
/// let reg = Registry::new();
/// let ring = FlightRecorder::new(64);
/// ring.mark(reg.intern("ingest.tick"), 3);
/// let events = ring.snapshot();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].kind, EventKind::Mark);
/// assert_eq!(events[0].value, 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

#[derive(Debug)]
struct FlightInner {
    epoch: Instant,
    slots: Vec<Slot>,
    /// Next sequence number to claim.
    head: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` events (rounded up to
    /// a power of two, minimum 16).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16).next_power_of_two();
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        FlightRecorder {
            inner: Arc::new(FlightInner {
                epoch: Instant::now(),
                slots,
                head: AtomicU64::new(0),
            }),
        }
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Events recorded over the recorder's lifetime (≥ what a snapshot
    /// can return once the ring has wrapped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::SeqCst)
    }

    /// Records a completed span of `dur_ns` at `depth`.
    pub fn span(&self, name: NameId, depth: u16, dur_ns: u64) {
        self.record(EventKind::Span, name, depth, dur_ns);
    }

    /// Records a point event carrying `value`.
    pub fn mark(&self, name: NameId, value: u64) {
        self.record(EventKind::Mark, name, 0, value);
    }

    fn record(&self, kind: EventKind, name: NameId, depth: u16, value: u64) {
        let inner = &*self.inner;
        let seq = inner.head.fetch_add(1, Ordering::SeqCst);
        let slot = &inner.slots[(seq as usize) & (inner.slots.len() - 1)];
        let kind_bits = match kind {
            EventKind::Span => 0u64,
            EventKind::Mark => 1u64,
        };
        let meta = (u64::from(thread_id()) << 32) | (u64::from(depth) << 16) | kind_bits;
        slot.stamp.store(WRITING, Ordering::SeqCst);
        slot.t_ns
            .store(inner.epoch.elapsed().as_nanos() as u64, Ordering::SeqCst);
        slot.meta.store(meta, Ordering::SeqCst);
        slot.name.store(u64::from(name.0), Ordering::SeqCst);
        slot.value.store(value, Ordering::SeqCst);
        slot.stamp.store(seq + 1, Ordering::SeqCst);
    }

    /// The most recent events still in the ring, oldest first. Slots
    /// mid-write are skipped rather than waited on.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::SeqCst);
        let start = head.saturating_sub(inner.slots.len() as u64);
        let mut events = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &inner.slots[(seq as usize) & (inner.slots.len() - 1)];
            if slot.stamp.load(Ordering::SeqCst) != seq + 1 {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::SeqCst);
            let meta = slot.meta.load(Ordering::SeqCst);
            let name = slot.name.load(Ordering::SeqCst);
            let value = slot.value.load(Ordering::SeqCst);
            if slot.stamp.load(Ordering::SeqCst) != seq + 1 {
                continue;
            }
            events.push(FlightEvent {
                seq,
                t_ns,
                thread: (meta >> 32) as u32,
                depth: ((meta >> 16) & 0xffff) as u16,
                kind: if meta & 1 == 0 {
                    EventKind::Span
                } else {
                    EventKind::Mark
                },
                name: NameId(name as u32),
                value,
            });
        }
        events
    }

    /// Encodes a snapshot as JSON-lines, resolving names through
    /// `registry` (events whose name was interned elsewhere render as
    /// `"?<id>"`).
    #[must_use]
    pub fn dump_jsonl(&self, registry: &Registry) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            let name = registry
                .name_of(event.name)
                .unwrap_or_else(|| format!("?{}", event.name.0));
            let (kind, value_key) = match event.kind {
                EventKind::Span => ("span", "dur_ns"),
                EventKind::Mark => ("mark", "value"),
            };
            out.push_str(&format!(
                "{{\"seq\":{},\"t_ns\":{},\"thread\":{},\"depth\":{},\"kind\":\"{}\",\"name\":\"{}\",\"{}\":{}}}\n",
                event.seq, event.t_ns, event.thread, event.depth, kind, name, value_key, event.value
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_events() {
        let reg = Registry::new();
        let ring = FlightRecorder::new(16);
        let name = reg.intern("t");
        for i in 0..40u64 {
            ring.mark(name, i);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().value, 24);
        assert_eq!(events.last().unwrap().value, 39);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ring.recorded(), 40);
    }

    #[test]
    fn dump_is_json_lines() {
        let reg = Registry::new();
        let ring = FlightRecorder::new(16);
        ring.span(reg.intern("engine.refresh"), 1, 500);
        ring.mark(reg.intern("ingest.tick"), 7);
        let dump = ring.dump_jsonl(&reg);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span\""));
        assert!(lines[0].contains("\"name\":\"engine.refresh\""));
        assert!(lines[0].contains("\"dur_ns\":500"));
        assert!(lines[1].contains("\"kind\":\"mark\""));
        assert!(lines[1].contains("\"value\":7"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn concurrent_marks_are_not_torn() {
        let reg = Registry::new();
        let ring = FlightRecorder::new(256);
        let name = reg.intern("m");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = ring.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        ring.mark(name, t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 4000);
        for event in ring.snapshot() {
            let t = event.value / 10_000;
            let i = event.value % 10_000;
            assert!(t < 4 && i < 1000, "torn event value {}", event.value);
        }
    }
}
