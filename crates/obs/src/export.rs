//! Registry snapshot encoders: Prometheus text and JSON-lines.

use crate::registry::{MetricValue, RegistrySnapshot};

/// Maps a dotted registry name onto the Prometheus charset
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Encodes a snapshot in the Prometheus text exposition format:
/// counters and gauges verbatim, histograms as summaries
/// (`{quantile="0.5|0.9|0.99"}` plus `_sum`, `_count`, and `_max`).
///
/// ```
/// let reg = arb_obs::Registry::new();
/// reg.counter("ingest.events_in").add(12);
/// let text = arb_obs::export::prometheus_text(&reg.snapshot());
/// assert!(text.contains("# TYPE ingest_events_in counter"));
/// assert!(text.contains("ingest_events_in 12"));
/// ```
#[must_use]
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        let flat = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {flat} counter\n{flat} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {flat} gauge\n{flat} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {flat} summary\n"));
                for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                    out.push_str(&format!("{flat}{{quantile=\"{q}\"}} {v}\n"));
                }
                out.push_str(&format!("{flat}_sum {}\n", h.sum));
                out.push_str(&format!("{flat}_count {}\n", h.count));
                out.push_str(&format!("{flat}_max {}\n", h.max));
            }
        }
    }
    out
}

/// Encodes a snapshot as JSON-lines, one metric per line.
///
/// ```
/// let reg = arb_obs::Registry::new();
/// reg.histogram("engine.refresh.eval_ns").record(250);
/// let jsonl = arb_obs::export::json_lines(&reg.snapshot());
/// let line = jsonl.lines().next().unwrap();
/// assert!(line.contains("\"metric\":\"engine.refresh.eval_ns\""));
/// assert!(line.contains("\"type\":\"histogram\""));
/// assert!(line.contains("\"count\":1"));
/// ```
#[must_use]
pub fn json_lines(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}\n"
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{{\"metric\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}\n"
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                    h.count,
                    h.sum,
                    h.max,
                    h.p50(),
                    h.p90(),
                    h.p99()
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn prometheus_round_trip() {
        let reg = Registry::new();
        reg.counter("a.count").add(3);
        reg.gauge("a.ratio").set(0.5);
        reg.histogram("a.lat_ns").record(100);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE a_count counter\na_count 3\n"));
        assert!(text.contains("# TYPE a_ratio gauge\na_ratio 0.5\n"));
        assert!(text.contains("# TYPE a_lat_ns summary\n"));
        assert!(text.contains("a_lat_ns_count 1\n"));
        assert!(text.contains("a_lat_ns{quantile=\"0.99\"}"));
    }

    #[test]
    fn json_lines_one_object_per_metric() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.gauge("y").set(2.0);
        reg.histogram("z").record(7);
        let jsonl = json_lines(&reg.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(jsonl.contains("\"metric\":\"x\",\"type\":\"counter\",\"value\":1"));
    }

    #[test]
    fn digit_leading_names_are_prefixed() {
        assert_eq!(prometheus_name("9lives.cat"), "_9lives_cat");
    }
}
