//! A std-only observability substrate for the arbitrage stack.
//!
//! Everything the paper's empirical claims rest on — screen discharge
//! rates, incremental-refresh latencies, ingest coalescing ratios —
//! used to live in per-crate stats structs visible only through
//! `Display` one-liners. This crate is the one pipe they all report
//! through:
//!
//! * [`Registry`] — hierarchical names → atomic counters, gauges, and
//!   log-linear latency histograms (p50/p90/p99/max with no allocation
//!   on the record path);
//! * [`SpanTimer`]/[`Span`] — RAII tracing spans with a per-thread
//!   depth stack, so one tick yields a complete latency breakdown
//!   (`ingest.seal → engine.refresh → serve.publish`);
//! * [`FlightRecorder`] — a fixed-size lock-free ring of recent span
//!   and mark events, snapshotted on demand or from a panic hook and
//!   dumped as JSON-lines for post-mortem;
//! * [`export`] — Prometheus-text and JSON-lines encoders over a
//!   registry snapshot.
//!
//! [`Obs`] bundles a registry and a flight recorder into the single
//! cheap-to-clone handle the runtime crates thread through their
//! `set_obs`/`with_obs` hooks. With no `Obs` attached the instrumented
//! code paths cost one branch.
//!
//! ```
//! use arb_obs::Obs;
//!
//! let obs = Obs::default();
//! let tick = obs.span("runtime.tick");
//! let events_in = obs.registry().counter("ingest.events_in");
//! for n in 0..3u64 {
//!     let _tick = tick.start();
//!     events_in.add(10);
//!     obs.marker("ingest.tick").mark(n);
//! }
//! let snap = obs.registry().snapshot();
//! assert_eq!(snap.counter("ingest.events_in"), Some(30));
//! assert_eq!(snap.histogram("runtime.tick").unwrap().count, 3);
//! // Export either way:
//! assert!(obs.prometheus_text().contains("ingest_events_in 30"));
//! assert!(obs.json_lines().contains("\"metric\":\"runtime.tick\""));
//! // Post-mortem ring: 3 spans + 3 marks.
//! assert_eq!(obs.flight().snapshot().len(), 6);
//! ```

pub mod export;
pub mod flight;
pub mod registry;
pub mod span;

use std::io::Write;
use std::path::{Path, PathBuf};

pub use flight::{EventKind, FlightEvent, FlightRecorder};
pub use registry::{
    bucket_bounds, bucket_width, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, NameId,
    Registry, RegistrySnapshot,
};
pub use span::{Span, SpanTimer};

/// File name panic-hook dumps are written under
/// (see [`install_panic_hook`]).
pub const FLIGHT_DUMP_FILE: &str = "flight-recorder.jsonl";

/// Observability tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsOptions {
    /// Flight-recorder ring capacity in events (rounded up to a power
    /// of two).
    pub flight_capacity: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            flight_capacity: 4096,
        }
    }
}

/// The bundled observability handle: one registry plus one flight
/// recorder. Clones share both; this is what the runtime crates accept
/// in their `set_obs` hooks.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    registry: Registry,
    flight: FlightRecorder,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(ObsOptions::default().flight_capacity)
    }
}

impl Obs {
    /// A fresh registry + flight recorder.
    #[must_use]
    pub fn new(options: ObsOptions) -> Self {
        Obs {
            registry: Registry::new(),
            flight: FlightRecorder::new(options.flight_capacity),
        }
    }

    /// The shared registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared flight recorder.
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Resolves a span timer: a histogram under `name` plus flight
    /// recording. Resolve once per call site and reuse.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::new(
            self.registry.intern(name),
            self.registry.histogram(name),
            Some(self.flight.clone()),
        )
    }

    /// Resolves a marker for point events under `name`.
    #[must_use]
    pub fn marker(&self, name: &str) -> Marker {
        Marker {
            name: self.registry.intern(name),
            flight: self.flight.clone(),
        }
    }

    /// A point-in-time view of every registered instrument.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// The current snapshot in Prometheus text format — the
    /// `/metrics`-style pull body.
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(&self.snapshot())
    }

    /// The current snapshot as JSON-lines.
    #[must_use]
    pub fn json_lines(&self) -> String {
        export::json_lines(&self.snapshot())
    }

    /// The flight-recorder ring as JSON-lines.
    #[must_use]
    pub fn dump_flight(&self) -> String {
        self.flight.dump_jsonl(&self.registry)
    }

    /// Writes the flight-recorder ring to `path` as JSON-lines.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write failures.
    pub fn dump_flight_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.dump_flight().as_bytes())?;
        file.flush()
    }
}

/// A resolved point-event instrument (see [`Obs::marker`]).
#[derive(Debug, Clone)]
pub struct Marker {
    name: NameId,
    flight: FlightRecorder,
}

impl Marker {
    /// Records a point event carrying `value` into the flight ring.
    pub fn mark(&self, value: u64) {
        self.flight.mark(self.name, value);
    }
}

/// Installs a process-wide panic hook that dumps `obs`'s flight
/// recorder to `dir/`[`FLIGHT_DUMP_FILE`] before delegating to the
/// previously installed hook. Install once per recorder; repeated
/// installs chain (each dumps its own recorder).
pub fn install_panic_hook(obs: &Obs, dir: &Path) {
    let obs = obs.clone();
    let path: PathBuf = dir.join(FLIGHT_DUMP_FILE);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = obs.dump_flight_to(&path);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_flight() {
        let obs = Obs::new(ObsOptions {
            flight_capacity: 32,
        });
        let timer = obs.span("x.y_ns");
        drop(timer.start());
        obs.marker("x.tick").mark(9);
        assert_eq!(obs.snapshot().histogram("x.y_ns").unwrap().count, 1);
        let dump = obs.dump_flight();
        assert!(dump.contains("\"name\":\"x.y_ns\""));
        assert!(dump.contains("\"name\":\"x.tick\""));
        assert!(dump.contains("\"value\":9"));
    }

    #[test]
    fn dump_flight_to_writes_the_file() {
        let dir = std::env::temp_dir().join(format!(
            "arb-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::default();
        obs.marker("t").mark(1);
        let path = dir.join(FLIGHT_DUMP_FILE);
        obs.dump_flight_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\":\"t\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
