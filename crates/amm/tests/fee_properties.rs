//! Fee-dependence properties of the AMM math.

use arb_amm::curve::SwapCurve;
use arb_amm::exact;
use arb_amm::fee::FeeRate;
use arb_amm::mobius::Mobius;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Higher fees strictly reduce swap output.
    #[test]
    fn output_monotone_decreasing_in_fee(
        x in 100.0..1e6f64,
        y in 100.0..1e6f64,
        dx in 1.0..1e5f64,
        fee_lo in 0u32..5_000,
        fee_gap in 1u32..5_000,
    ) {
        let lo = FeeRate::from_ppm(fee_lo).unwrap();
        let hi = FeeRate::from_ppm(fee_lo + fee_gap).unwrap();
        let out_lo = SwapCurve::new(x, y, lo).unwrap().amount_out(dx);
        let out_hi = SwapCurve::new(x, y, hi).unwrap().amount_out(dx);
        prop_assert!(out_hi < out_lo);
    }

    /// Higher fees strictly reduce loop profit (when any remains).
    #[test]
    fn loop_profit_decreasing_in_fee(
        r in proptest::collection::vec(100.0..50_000.0f64, 6),
        fee_lo in 0u32..3_000,
        fee_gap in 500u32..3_000,
    ) {
        let chain_at = |ppm: u32| {
            let fee = FeeRate::from_ppm(ppm).unwrap();
            let hops: Vec<Mobius> = r
                .chunks_exact(2)
                .map(|c| SwapCurve::new(c[0], c[1], fee).unwrap().to_mobius())
                .collect();
            Mobius::chain(&hops).max_profit()
        };
        let profit_lo = chain_at(fee_lo);
        let profit_hi = chain_at(fee_lo + fee_gap);
        if profit_lo > 0.0 {
            prop_assert!(profit_hi < profit_lo,
                "profit should fall with fees: {profit_hi} vs {profit_lo}");
        } else {
            prop_assert_eq!(profit_hi, 0.0, "dead loops stay dead at higher fees");
        }
    }

    /// Zero-fee round trips through the same pool recover the input
    /// exactly in the float model (and nearly so in integer math).
    #[test]
    fn zero_fee_round_trip_is_lossless(
        x in 100.0..1e6f64,
        y in 100.0..1e6f64,
        dx in 1.0..1e4f64,
    ) {
        let fee = FeeRate::ZERO;
        let fwd = SwapCurve::new(x, y, fee).unwrap();
        let out = fwd.amount_out(dx);
        let back = SwapCurve::new(y - out, x + dx, fee).unwrap().amount_out(out);
        prop_assert!((back - dx).abs() < 1e-6 * (1.0 + dx), "{back} vs {dx}");
    }

    /// The exact integer path agrees with the float path to one unit of
    /// rounding across fee levels.
    #[test]
    fn integer_and_float_paths_agree(
        rin in 10_000u128..1_000_000_000,
        rout in 10_000u128..1_000_000_000,
        ain in 100u128..1_000_000,
        fee_ppm in 0u32..10_000,
    ) {
        let fee = FeeRate::from_ppm(fee_ppm).unwrap();
        let exact_out = exact::get_amount_out(ain, rin, rout, fee).unwrap();
        let float_out = SwapCurve::new(rin as f64, rout as f64, fee)
            .unwrap()
            .amount_out(ain as f64);
        let diff = (exact_out as f64 - float_out).abs();
        prop_assert!(diff <= 1.0 + float_out * 1e-9,
            "exact {exact_out} vs float {float_out}");
    }

    /// The loop closed form commutes with uniform reserve scaling:
    /// scaling all reserves by `s` scales the optimal input by `s`.
    #[test]
    fn optimum_scales_with_reserves(
        r in proptest::collection::vec(100.0..10_000.0f64, 6),
        s in 1.5..50.0f64,
    ) {
        let fee = FeeRate::UNISWAP_V2;
        let chain = |scale: f64| {
            let hops: Vec<Mobius> = r
                .chunks_exact(2)
                .map(|c| {
                    SwapCurve::new(c[0] * scale, c[1] * scale, fee)
                        .unwrap()
                        .to_mobius()
                })
                .collect();
            Mobius::chain(&hops).optimal_input()
        };
        let base = chain(1.0);
        let scaled = chain(s);
        prop_assert!((scaled - base * s).abs() < 1e-6 * (1.0 + base * s),
            "optimum should scale linearly: {scaled} vs {}", base * s);
    }
}
