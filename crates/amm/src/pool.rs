//! Analysis-level liquidity pools with `f64` reserves.

use crate::curve::SwapCurve;
use crate::error::AmmError;
use crate::fee::FeeRate;
use crate::token::TokenId;

/// A compact pool identifier (index into a pool set / snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(u32);

impl PoolId {
    /// Creates a pool id from a raw index.
    pub const fn new(index: u32) -> Self {
        PoolId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PoolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A two-token constant-product pool.
///
/// Reserves are `f64` display units; this is the representation the
/// strategy layer optimizes over. The chain simulator uses
/// [`crate::exact::RawPool`] for integer-exact execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pool {
    token_a: TokenId,
    token_b: TokenId,
    reserve_a: f64,
    reserve_b: f64,
    fee: FeeRate,
}

impl Pool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// * [`AmmError::SameToken`] if both sides are the same token.
    /// * [`AmmError::NonPositiveReserve`] if a reserve is not positive
    ///   and finite.
    pub fn new(
        token_a: TokenId,
        token_b: TokenId,
        reserve_a: f64,
        reserve_b: f64,
        fee: FeeRate,
    ) -> Result<Self, AmmError> {
        if token_a == token_b {
            return Err(AmmError::SameToken);
        }
        let valid = |r: f64| r.is_finite() && r > 0.0;
        if !valid(reserve_a) || !valid(reserve_b) {
            return Err(AmmError::NonPositiveReserve);
        }
        Ok(Pool {
            token_a,
            token_b,
            reserve_a,
            reserve_b,
            fee,
        })
    }

    /// First token of the pair.
    pub fn token_a(&self) -> TokenId {
        self.token_a
    }

    /// Second token of the pair.
    pub fn token_b(&self) -> TokenId {
        self.token_b
    }

    /// Reserve of [`Pool::token_a`].
    pub fn reserve_a(&self) -> f64 {
        self.reserve_a
    }

    /// Reserve of [`Pool::token_b`].
    pub fn reserve_b(&self) -> f64 {
        self.reserve_b
    }

    /// The pool fee.
    pub fn fee(&self) -> FeeRate {
        self.fee
    }

    /// Whether `token` is one of the pair.
    pub fn contains(&self, token: TokenId) -> bool {
        token == self.token_a || token == self.token_b
    }

    /// The counterparty token of `token`.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::TokenNotInPool`] if `token` is not in the pair.
    pub fn other(&self, token: TokenId) -> Result<TokenId, AmmError> {
        if token == self.token_a {
            Ok(self.token_b)
        } else if token == self.token_b {
            Ok(self.token_a)
        } else {
            Err(AmmError::TokenNotInPool)
        }
    }

    /// Reserve of a specific token of the pair.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::TokenNotInPool`] if `token` is not in the pair.
    pub fn reserve_of(&self, token: TokenId) -> Result<f64, AmmError> {
        if token == self.token_a {
            Ok(self.reserve_a)
        } else if token == self.token_b {
            Ok(self.reserve_b)
        } else {
            Err(AmmError::TokenNotInPool)
        }
    }

    /// The one-directional swap curve for swapping `token_in` into the pool.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::TokenNotInPool`] if `token_in` is not in the pair.
    pub fn curve(&self, token_in: TokenId) -> Result<SwapCurve, AmmError> {
        let (rin, rout) = if token_in == self.token_a {
            (self.reserve_a, self.reserve_b)
        } else if token_in == self.token_b {
            (self.reserve_b, self.reserve_a)
        } else {
            return Err(AmmError::TokenNotInPool);
        };
        SwapCurve::new(rin, rout, self.fee)
    }

    /// Quotes the output of swapping `amount_in` of `token_in` without
    /// mutating reserves.
    ///
    /// # Errors
    ///
    /// * [`AmmError::TokenNotInPool`] if the token is not in the pair.
    /// * [`AmmError::InvalidAmount`] for negative or non-finite input.
    pub fn quote(&self, token_in: TokenId, amount_in: f64) -> Result<f64, AmmError> {
        if !amount_in.is_finite() || amount_in < 0.0 {
            return Err(AmmError::InvalidAmount);
        }
        Ok(self.curve(token_in)?.amount_out(amount_in))
    }

    /// Executes a swap, mutating reserves, and returns the output amount.
    ///
    /// The full input (fee included) joins the input-side reserve, matching
    /// Uniswap V2 fee accrual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pool::quote`].
    pub fn execute(&mut self, token_in: TokenId, amount_in: f64) -> Result<f64, AmmError> {
        let out = self.quote(token_in, amount_in)?;
        if token_in == self.token_a {
            self.reserve_a += amount_in;
            self.reserve_b -= out;
        } else {
            self.reserve_b += amount_in;
            self.reserve_a -= out;
        }
        Ok(out)
    }

    /// Replaces both reserves in place (a Uniswap `Sync`), keeping tokens
    /// and fee.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::NonPositiveReserve`] if a reserve is not
    /// positive and finite; the pool is left unchanged.
    pub fn set_reserves(&mut self, reserve_a: f64, reserve_b: f64) -> Result<(), AmmError> {
        let valid = |r: f64| r.is_finite() && r > 0.0;
        if !valid(reserve_a) || !valid(reserve_b) {
            return Err(AmmError::NonPositiveReserve);
        }
        self.reserve_a = reserve_a;
        self.reserve_b = reserve_b;
        Ok(())
    }

    /// The paper's relative price `p_ij = (1−λ)·r_j/r_i` of `token_in` in
    /// units of the other token.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::TokenNotInPool`] if `token_in` is not in the pair.
    pub fn relative_price(&self, token_in: TokenId) -> Result<f64, AmmError> {
        Ok(self.curve(token_in)?.spot_rate())
    }

    /// Total value locked given USD prices for both tokens.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::InvalidAmount`] for negative or non-finite prices.
    pub fn tvl(&self, price_a: f64, price_b: f64) -> Result<f64, AmmError> {
        if !(price_a.is_finite() && price_a >= 0.0 && price_b.is_finite() && price_b >= 0.0) {
            return Err(AmmError::InvalidAmount);
        }
        Ok(self.reserve_a * price_a + self.reserve_b * price_b)
    }

    /// The constant-product invariant `k = r_a · r_b`.
    pub fn k(&self) -> f64 {
        self.reserve_a * self.reserve_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn xy() -> (TokenId, TokenId) {
        (TokenId::new(0), TokenId::new(1))
    }

    fn pool() -> Pool {
        let (x, y) = xy();
        Pool::new(x, y, 100.0, 200.0, FeeRate::UNISWAP_V2).unwrap()
    }

    #[test]
    fn rejects_same_token() {
        let x = TokenId::new(0);
        assert_eq!(
            Pool::new(x, x, 1.0, 1.0, FeeRate::UNISWAP_V2),
            Err(AmmError::SameToken)
        );
    }

    #[test]
    fn rejects_bad_reserves() {
        let (x, y) = xy();
        assert_eq!(
            Pool::new(x, y, 0.0, 1.0, FeeRate::UNISWAP_V2),
            Err(AmmError::NonPositiveReserve)
        );
    }

    #[test]
    fn other_token_lookup() {
        let (x, y) = xy();
        let p = pool();
        assert_eq!(p.other(x), Ok(y));
        assert_eq!(p.other(y), Ok(x));
        assert_eq!(p.other(TokenId::new(9)), Err(AmmError::TokenNotInPool));
    }

    #[test]
    fn quote_is_symmetric_with_curve() {
        let (x, _) = xy();
        let p = pool();
        let direct = p.curve(x).unwrap().amount_out(10.0);
        assert_eq!(p.quote(x, 10.0).unwrap(), direct);
    }

    #[test]
    fn execute_updates_both_reserves() {
        let (x, _) = xy();
        let mut p = pool();
        let out = p.execute(x, 10.0).unwrap();
        assert!((p.reserve_a() - 110.0).abs() < 1e-12);
        assert!((p.reserve_b() - (200.0 - out)).abs() < 1e-12);
    }

    #[test]
    fn relative_price_matches_paper() {
        let (x, y) = xy();
        let p = pool();
        assert!((p.relative_price(x).unwrap() - 0.997 * 2.0).abs() < 1e-12);
        assert!((p.relative_price(y).unwrap() - 0.997 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_reserves_syncs_in_place() {
        let mut p = pool();
        p.set_reserves(50.0, 75.0).unwrap();
        assert_eq!(p.reserve_a(), 50.0);
        assert_eq!(p.reserve_b(), 75.0);
        // Degenerate updates are rejected and leave the pool unchanged.
        assert_eq!(p.set_reserves(0.0, 1.0), Err(AmmError::NonPositiveReserve));
        assert_eq!(
            p.set_reserves(1.0, f64::NAN),
            Err(AmmError::NonPositiveReserve)
        );
        assert_eq!(p.reserve_a(), 50.0);
        assert_eq!(p.reserve_b(), 75.0);
    }

    #[test]
    fn tvl_and_k() {
        let p = pool();
        assert!((p.tvl(2.0, 10.2).unwrap() - (100.0 * 2.0 + 200.0 * 10.2)).abs() < 1e-9);
        assert!((p.k() - 20_000.0).abs() < 1e-9);
        assert_eq!(p.tvl(f64::NAN, 1.0), Err(AmmError::InvalidAmount));
    }

    proptest! {
        #[test]
        fn execute_never_decreases_k(
            ra in 1.0..1e9f64, rb in 1.0..1e9f64, dx in 0.0..1e9f64, side in 0..2u8
        ) {
            let (x, y) = xy();
            let mut p = Pool::new(x, y, ra, rb, FeeRate::UNISWAP_V2).unwrap();
            let k0 = p.k();
            let token = if side == 0 { x } else { y };
            p.execute(token, dx).unwrap();
            prop_assert!(p.k() >= k0 * (1.0 - 1e-12));
        }

        #[test]
        fn round_trip_with_fee_loses_value(
            ra in 1.0..1e9f64, rb in 1.0..1e9f64, dx in 1e-3..1e6f64
        ) {
            let (x, y) = xy();
            let mut p = Pool::new(x, y, ra, rb, FeeRate::UNISWAP_V2).unwrap();
            let got_y = p.execute(x, dx).unwrap();
            let got_x = p.execute(y, got_y).unwrap();
            prop_assert!(got_x < dx);
        }
    }
}
