//! Token identifiers and the token registry.

use std::collections::HashMap;
use std::fmt;

/// A compact, copyable token identifier.
///
/// Tokens are interned in a [`TokenRegistry`]; all other crates pass
/// `TokenId` values around instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(u32);

impl TokenId {
    /// Creates a token id from a raw index.
    pub const fn new(index: u32) -> Self {
        TokenId(index)
    }

    /// The raw index, usable as a dense array key.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Metadata describing a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    id: TokenId,
    symbol: String,
    decimals: u8,
}

impl Token {
    /// The interned identifier.
    pub fn id(&self) -> TokenId {
        self.id
    }

    /// The ticker symbol, e.g. `"WETH"`.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }

    /// ERC-20 style decimal places (18 for most tokens, 6 for USDC-likes).
    pub fn decimals(&self) -> u8 {
        self.decimals
    }

    /// The multiplier converting display units to raw integer units.
    pub fn unit_scale(&self) -> u128 {
        10u128.pow(self.decimals as u32)
    }
}

/// An interning registry assigning dense [`TokenId`]s to symbols.
///
/// ```
/// use arb_amm::token::TokenRegistry;
/// let mut reg = TokenRegistry::new();
/// let weth = reg.intern("WETH", 18);
/// let usdc = reg.intern("USDC", 6);
/// assert_ne!(weth, usdc);
/// assert_eq!(reg.intern("WETH", 18), weth); // idempotent
/// assert_eq!(reg.get(weth).unwrap().symbol(), "WETH");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenRegistry {
    tokens: Vec<Token>,
    by_symbol: HashMap<String, TokenId>,
}

impl TokenRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol, returning the existing id if already present.
    ///
    /// If the symbol exists, its stored decimals are kept (the `decimals`
    /// argument is ignored), mirroring the immutability of on-chain token
    /// metadata.
    pub fn intern(&mut self, symbol: &str, decimals: u8) -> TokenId {
        if let Some(&id) = self.by_symbol.get(symbol) {
            return id;
        }
        let id = TokenId::new(self.tokens.len() as u32);
        self.tokens.push(Token {
            id,
            symbol: symbol.to_owned(),
            decimals,
        });
        self.by_symbol.insert(symbol.to_owned(), id);
        id
    }

    /// Looks up token metadata by id.
    pub fn get(&self, id: TokenId) -> Option<&Token> {
        self.tokens.get(id.index())
    }

    /// Looks up a token id by symbol.
    pub fn lookup(&self, symbol: &str) -> Option<TokenId> {
        self.by_symbol.get(symbol).copied()
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Iterates over all tokens in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut reg = TokenRegistry::new();
        let a = reg.intern("A", 18);
        let b = reg.intern("B", 18);
        let c = reg.intern("C", 6);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn intern_is_idempotent_and_keeps_decimals() {
        let mut reg = TokenRegistry::new();
        let a = reg.intern("A", 18);
        let a2 = reg.intern("A", 6);
        assert_eq!(a, a2);
        assert_eq!(reg.get(a).unwrap().decimals(), 18);
    }

    #[test]
    fn lookup_by_symbol() {
        let mut reg = TokenRegistry::new();
        let a = reg.intern("WETH", 18);
        assert_eq!(reg.lookup("WETH"), Some(a));
        assert_eq!(reg.lookup("DAI"), None);
    }

    #[test]
    fn unit_scale_matches_decimals() {
        let mut reg = TokenRegistry::new();
        let usdc = reg.intern("USDC", 6);
        assert_eq!(reg.get(usdc).unwrap().unit_scale(), 1_000_000);
    }

    #[test]
    fn display_of_token_id() {
        assert_eq!(TokenId::new(7).to_string(), "T7");
    }

    #[test]
    fn iter_in_id_order() {
        let mut reg = TokenRegistry::new();
        reg.intern("A", 18);
        reg.intern("B", 18);
        let syms: Vec<_> = reg.iter().map(|t| t.symbol().to_owned()).collect();
        assert_eq!(syms, ["A", "B"]);
    }
}
