//! Constant-product AMM (Uniswap V2) pool mathematics.
//!
//! This crate is the single source of truth for how a Uniswap-V2-style
//! constant product market maker (CPMM) prices and executes swaps. It is the
//! foundation every other crate in the workspace builds on:
//!
//! * [`token`] — token identifiers and the token registry.
//! * [`fee`] — the pool fee rate `λ` and its complement `γ = 1 − λ`.
//! * [`pool`] — an analysis-level pool with `f64` reserves.
//! * [`curve`] — the one-directional swap function
//!   `F(Δx) = γ·y·Δx / (x + γ·Δx)` with derivative and inverse.
//! * [`mobius`] — chain composition of swap curves as Möbius transforms,
//!   which yields the *closed form* optimal arbitrage input
//!   `Δ* = (√(A·D) − D)/B` for an entire loop.
//! * [`exact`] — bit-exact `u128` integer semantics of Uniswap V2's
//!   `getAmountOut`/`getAmountIn` used by the chain simulator.
//!
//! # Quickstart
//!
//! ```
//! use arb_amm::{fee::FeeRate, pool::Pool, token::TokenId};
//!
//! # fn main() -> Result<(), arb_amm::AmmError> {
//! let x = TokenId::new(0);
//! let y = TokenId::new(1);
//! let pool = Pool::new(x, y, 100.0, 200.0, FeeRate::UNISWAP_V2)?;
//! let quote = pool.quote(x, 10.0)?;
//! assert!(quote > 0.0 && quote < 200.0);
//! # Ok(())
//! # }
//! ```

pub mod curve;
pub mod error;
pub mod exact;
pub mod fee;
pub mod mobius;
pub mod pool;
pub mod token;

pub use curve::SwapCurve;
pub use error::AmmError;
pub use fee::FeeRate;
pub use mobius::Mobius;
pub use pool::{Pool, PoolId};
pub use token::{Token, TokenId, TokenRegistry};
