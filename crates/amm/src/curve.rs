//! The one-directional CPMM swap function and its calculus.
//!
//! For a pool holding `x` of the input token and `y` of the output token
//! with fee multiplier `γ = 1 − λ`, swapping `Δx` in yields
//!
//! ```text
//! F(Δx) = y − x·y / (x + γ·Δx) = γ·y·Δx / (x + γ·Δx)
//! ```
//!
//! `F` is strictly increasing and strictly concave on `Δx ≥ 0`, bounded by
//! `y`. Its derivative `F'(Δx) = γ·x·y/(x + γΔx)²` starts at the marginal
//! exchange rate `γ·y/x` (the paper's relative price `p_ij`) and decreases
//! toward zero — this is price slippage.

use crate::error::AmmError;
use crate::fee::FeeRate;
use crate::mobius::Mobius;

/// One direction of a constant-product pool: reserves `(x, y)` and `γ`.
///
/// This is a value type produced by [`crate::pool::Pool::curve`]; it does not
/// mutate the pool. All the strategy mathematics in the workspace ultimately
/// reduces to calls on `SwapCurve`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapCurve {
    reserve_in: f64,
    reserve_out: f64,
    gamma: f64,
}

impl SwapCurve {
    /// Creates a curve from input/output reserves and a fee.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::NonPositiveReserve`] unless both reserves are
    /// positive and finite.
    pub fn new(reserve_in: f64, reserve_out: f64, fee: FeeRate) -> Result<Self, AmmError> {
        let valid = |r: f64| r.is_finite() && r > 0.0;
        if !valid(reserve_in) || !valid(reserve_out) {
            return Err(AmmError::NonPositiveReserve);
        }
        Ok(SwapCurve {
            reserve_in,
            reserve_out,
            gamma: fee.gamma(),
        })
    }

    /// The input-side reserve `x`.
    pub fn reserve_in(&self) -> f64 {
        self.reserve_in
    }

    /// The output-side reserve `y`.
    pub fn reserve_out(&self) -> f64 {
        self.reserve_out
    }

    /// The post-fee multiplier `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Output amount `F(Δx)` for input `amount_in`.
    ///
    /// For `amount_in ≥ 0` the result is always in `[0, y)`. The function
    /// is also defined on the negative domain `Δx > −x/γ` (where it is
    /// negative), which interior-point line searches probe; outside that
    /// domain it returns NaN so feasibility checks reject the point.
    pub fn amount_out(&self, amount_in: f64) -> f64 {
        let g = self.gamma * amount_in;
        let denom = self.reserve_in + g;
        if denom <= 0.0 {
            return f64::NAN;
        }
        self.reserve_out * g / denom
    }

    /// Derivative `F'(Δx) = γ·x·y / (x + γΔx)²`.
    pub fn derivative(&self, amount_in: f64) -> f64 {
        let denom = self.reserve_in + self.gamma * amount_in;
        self.gamma * self.reserve_in * self.reserve_out / (denom * denom)
    }

    /// Second derivative `F''(Δx) = −2γ²·x·y / (x + γΔx)³` (always negative).
    pub fn second_derivative(&self, amount_in: f64) -> f64 {
        let denom = self.reserve_in + self.gamma * amount_in;
        -2.0 * self.gamma * self.gamma * self.reserve_in * self.reserve_out
            / (denom * denom * denom)
    }

    /// Input amount required to receive exactly `amount_out`.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::InsufficientLiquidity`] when
    /// `amount_out >= reserve_out` — the pool can never emit its full
    /// reserve.
    pub fn amount_in_for(&self, amount_out: f64) -> Result<f64, AmmError> {
        if amount_out < 0.0 || !amount_out.is_finite() {
            return Err(AmmError::InvalidAmount);
        }
        if amount_out >= self.reserve_out {
            return Err(AmmError::InsufficientLiquidity);
        }
        Ok(self.reserve_in * amount_out / (self.gamma * (self.reserve_out - amount_out)))
    }

    /// The marginal exchange rate at zero input, `γ·y/x`.
    ///
    /// This is the paper's relative price `p_ij = (1−λ)·r_j/r_i`.
    pub fn spot_rate(&self) -> f64 {
        self.gamma * self.reserve_out / self.reserve_in
    }

    /// The fee-free mid price `y/x`.
    pub fn mid_rate(&self) -> f64 {
        self.reserve_out / self.reserve_in
    }

    /// The curve as a Möbius transform `f(Δ) = aΔ/(bΔ + d)`.
    pub fn to_mobius(&self) -> Mobius {
        Mobius::new(self.gamma * self.reserve_out, self.gamma, self.reserve_in)
    }

    /// Reserves after executing a swap of `amount_in`, as `(x', y')`.
    ///
    /// Note: the full input (fee included) is added to the input reserve,
    /// matching Uniswap V2 where LP fees accrue inside the pool.
    pub fn reserves_after(&self, amount_in: f64) -> (f64, f64) {
        let out = self.amount_out(amount_in);
        (self.reserve_in + amount_in, self.reserve_out - out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn curve(x: f64, y: f64) -> SwapCurve {
        SwapCurve::new(x, y, FeeRate::UNISWAP_V2).unwrap()
    }

    #[test]
    fn rejects_bad_reserves() {
        for (x, y) in [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0), (f64::NAN, 1.0)] {
            assert_eq!(
                SwapCurve::new(x, y, FeeRate::UNISWAP_V2),
                Err(AmmError::NonPositiveReserve)
            );
        }
    }

    #[test]
    fn zero_in_zero_out() {
        let c = curve(100.0, 200.0);
        assert_eq!(c.amount_out(0.0), 0.0);
    }

    #[test]
    fn output_matches_closed_form() {
        // F(Δx) = y − x·y/(x + γΔx) with x=100, y=200, γ=0.997, Δx=10.
        let c = curve(100.0, 200.0);
        let expected = 200.0 - 100.0 * 200.0 / (100.0 + 0.997 * 10.0);
        assert!((c.amount_out(10.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn spot_rate_matches_paper_definition() {
        let c = curve(100.0, 200.0);
        assert!((c.spot_rate() - 0.997 * 2.0).abs() < 1e-15);
        assert!((c.mid_rate() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_rejects_full_reserve() {
        let c = curve(100.0, 200.0);
        assert_eq!(c.amount_in_for(200.0), Err(AmmError::InsufficientLiquidity));
        assert_eq!(c.amount_in_for(-1.0), Err(AmmError::InvalidAmount));
    }

    #[test]
    fn mobius_agrees_with_direct_eval() {
        let c = curve(100.0, 200.0);
        let m = c.to_mobius();
        for dx in [0.0, 0.5, 1.0, 10.0, 1e6] {
            assert!((m.eval(dx) - c.amount_out(dx)).abs() <= 1e-9 * (1.0 + c.amount_out(dx)));
        }
    }

    proptest! {
        #[test]
        fn output_bounded_by_reserve(
            x in 1e-3..1e12f64, y in 1e-3..1e12f64, dx in 0.0..1e12f64
        ) {
            let c = curve(x, y);
            let out = c.amount_out(dx);
            prop_assert!(out >= 0.0);
            prop_assert!(out < y);
        }

        #[test]
        fn output_monotone(
            x in 1e-3..1e9f64, y in 1e-3..1e9f64,
            dx in 0.0..1e9f64, bump in 1e-6..1e3f64
        ) {
            let c = curve(x, y);
            prop_assert!(c.amount_out(dx + bump) > c.amount_out(dx));
        }

        #[test]
        fn derivative_matches_finite_difference(
            x in 1.0..1e6f64, y in 1.0..1e6f64, dx in 0.0..1e6f64
        ) {
            let c = curve(x, y);
            let h = (1e-6 * (1.0 + dx)).max(1e-9);
            let fd = (c.amount_out(dx + h) - c.amount_out((dx - h).max(0.0)))
                / (h + (dx - h).max(0.0) + h - dx).max(h * 2.0 - (dx - (dx - h).max(0.0) - h).abs());
            // Use a simple centered difference when possible.
            let fd = if dx >= h {
                (c.amount_out(dx + h) - c.amount_out(dx - h)) / (2.0 * h)
            } else {
                fd
            };
            let an = c.derivative(dx);
            prop_assert!((fd - an).abs() <= 1e-3 * (1.0 + an.abs()),
                "fd={fd} analytic={an}");
        }

        #[test]
        fn inverse_roundtrips(
            x in 1.0..1e9f64, y in 1.0..1e9f64, dx in 1e-6..1e9f64
        ) {
            let c = curve(x, y);
            let out = c.amount_out(dx);
            let back = c.amount_in_for(out).unwrap();
            prop_assert!((back - dx).abs() <= 1e-6 * (1.0 + dx), "back={back} dx={dx}");
        }

        #[test]
        fn concavity(
            x in 1.0..1e9f64, y in 1.0..1e9f64, dx in 0.0..1e9f64
        ) {
            let c = curve(x, y);
            prop_assert!(c.second_derivative(dx) < 0.0);
        }

        #[test]
        fn k_never_decreases_after_swap(
            x in 1.0..1e9f64, y in 1.0..1e9f64, dx in 0.0..1e9f64
        ) {
            let c = curve(x, y);
            let (x2, y2) = c.reserves_after(dx);
            prop_assert!(x2 * y2 >= x * y * (1.0 - 1e-12));
        }
    }
}
