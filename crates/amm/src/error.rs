//! Error type shared by all AMM operations.

use std::error::Error;
use std::fmt;

/// Errors produced by pool construction, quoting, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AmmError {
    /// A reserve was zero, negative, NaN, or infinite.
    NonPositiveReserve,
    /// A swap input amount was negative, NaN, or infinite.
    InvalidAmount,
    /// The requested output meets or exceeds the pool's reserve.
    InsufficientLiquidity,
    /// A pool was constructed with the same token on both sides.
    SameToken,
    /// The referenced token is not one of the pool's pair.
    TokenNotInPool,
    /// Integer arithmetic overflowed in the exact (u128) path.
    Overflow,
    /// A fee rate of 100% or more was supplied.
    FeeTooHigh,
}

impl fmt::Display for AmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AmmError::NonPositiveReserve => "pool reserve must be positive and finite",
            AmmError::InvalidAmount => "swap amount must be non-negative and finite",
            AmmError::InsufficientLiquidity => "requested output exceeds pool liquidity",
            AmmError::SameToken => "pool tokens must be distinct",
            AmmError::TokenNotInPool => "token is not part of this pool",
            AmmError::Overflow => "integer overflow in exact swap arithmetic",
            AmmError::FeeTooHigh => "fee rate must be below 100%",
        };
        f.write_str(msg)
    }
}

impl Error for AmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            AmmError::NonPositiveReserve,
            AmmError::InvalidAmount,
            AmmError::InsufficientLiquidity,
            AmmError::SameToken,
            AmmError::TokenNotInPool,
            AmmError::Overflow,
            AmmError::FeeTooHigh,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AmmError>();
    }
}
