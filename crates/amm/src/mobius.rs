//! Möbius-transform composition of swap chains.
//!
//! Every CPMM swap function is the Möbius (linear-fractional) transform
//! `F(Δ) = aΔ/(bΔ + d)` with `a = γ·y`, `b = γ`, `d = x`. The composition of
//! two such transforms is again of the same form, so an entire multi-hop
//! swap chain collapses to a single triple `(A, B, D)`:
//!
//! ```text
//! Δout = A·Δin / (B·Δin + D)
//! ```
//!
//! This gives the whole crate closed-form answers that iterative optimizers
//! are tested against:
//!
//! * round-trip marginal rate at zero input: `A/D` — the loop is an
//!   arbitrage loop iff `A/D > 1` (equivalently `Σ log p > 0`);
//! * optimal input maximizing `Δout − Δin`: `Δ* = (√(A·D) − D)/B`;
//! * maximal profit: `F(Δ*) − Δ*` with `F(Δ*) = A·Δ*/(B·Δ* + D)`.

/// A normalized Möbius transform `f(Δ) = aΔ/(bΔ + d)` with `a, d > 0`,
/// `b ≥ 0`.
///
/// For chains of CPMM hops `b > 0` always holds (each hop contributes
/// slippage), so the maximizer below is finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mobius {
    a: f64,
    b: f64,
    d: f64,
}

impl Mobius {
    /// The identity transform `f(Δ) = Δ`.
    pub const IDENTITY: Mobius = Mobius {
        a: 1.0,
        b: 0.0,
        d: 1.0,
    };

    /// Creates a transform from raw coefficients, renormalizing so `d = 1`
    /// scale is bounded (numerical hygiene for long chains).
    pub fn new(a: f64, b: f64, d: f64) -> Self {
        debug_assert!(a > 0.0 && d > 0.0 && b >= 0.0, "a={a} b={b} d={d}");
        let m = Mobius { a, b, d };
        m.normalized()
    }

    /// Coefficient `a` (numerator slope).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Coefficient `b` (slippage).
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Coefficient `d` (effective input reserve).
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Rescales `(a, b, d)` jointly (the transform is scale-invariant) so
    /// that `d = 1`. Avoids overflow when composing many hops.
    fn normalized(self) -> Self {
        let s = self.d;
        Mobius {
            a: self.a / s,
            b: self.b / s,
            d: 1.0,
        }
    }

    /// Evaluates the transform at `x ≥ 0`.
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x / (self.b * x + self.d)
    }

    /// Derivative `f'(x) = a·d/(bx + d)²`.
    pub fn derivative(&self, x: f64) -> f64 {
        let denom = self.b * x + self.d;
        self.a * self.d / (denom * denom)
    }

    /// Marginal rate at zero input, `a/d`.
    ///
    /// For a loop chain this is the round-trip rate; the loop admits
    /// arbitrage iff this exceeds 1.
    pub fn rate_at_zero(&self) -> f64 {
        self.a / self.d
    }

    /// Composes `self` *after* `first`: the returned transform is
    /// `x ↦ self(first(x))`.
    ///
    /// ```
    /// use arb_amm::Mobius;
    /// let f = Mobius::new(2.0, 0.5, 1.0);
    /// let g = Mobius::new(3.0, 0.2, 4.0);
    /// let h = g.after(&f);
    /// let x = 1.7;
    /// assert!((h.eval(x) - g.eval(f.eval(x))).abs() < 1e-12);
    /// ```
    pub fn after(&self, first: &Mobius) -> Mobius {
        // g(f(x)) where f = a1x/(b1x+d1), g = a2x/(b2x+d2):
        //   a = a1·a2, b = a1·b2 + b1·d2, d = d1·d2.
        Mobius::new(
            first.a * self.a,
            first.a * self.b + first.b * self.d,
            first.d * self.d,
        )
    }

    /// Composes a sequence of hops in order: `chain([f, g, h]) = h∘g∘f`.
    ///
    /// Returns [`Mobius::IDENTITY`] for an empty sequence.
    pub fn chain<'a, I: IntoIterator<Item = &'a Mobius>>(hops: I) -> Mobius {
        hops.into_iter()
            .fold(Mobius::IDENTITY, |acc, hop| hop.after(&acc))
    }

    /// The input maximizing profit `f(Δ) − Δ`, i.e. the unique `Δ* ≥ 0`
    /// with `f'(Δ*) = 1` — the paper's optimality condition
    /// `dΔout/dΔin = 1`.
    ///
    /// Returns 0 when the loop is not profitable (`a/d ≤ 1`).
    ///
    /// # Panics
    ///
    /// Debug-asserts `b > 0`; a slippage-free profitable chain has no finite
    /// maximizer.
    pub fn optimal_input(&self) -> f64 {
        if self.rate_at_zero() <= 1.0 {
            return 0.0;
        }
        debug_assert!(
            self.b > 0.0,
            "profitable chain without slippage is unbounded"
        );
        ((self.a * self.d).sqrt() - self.d) / self.b
    }

    /// Profit `f(Δ) − Δ` at a given input.
    pub fn profit_at(&self, x: f64) -> f64 {
        self.eval(x) - x
    }

    /// The maximal profit `f(Δ*) − Δ*` (0 for unprofitable loops).
    pub fn max_profit(&self) -> f64 {
        self.profit_at(self.optimal_input())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::SwapCurve;
    use crate::fee::FeeRate;
    use proptest::prelude::*;

    /// The paper's §V example chain X → Y → Z → X.
    fn paper_chain() -> Mobius {
        let fee = FeeRate::UNISWAP_V2;
        let hops = [
            SwapCurve::new(100.0, 200.0, fee).unwrap().to_mobius(),
            SwapCurve::new(300.0, 200.0, fee).unwrap().to_mobius(),
            SwapCurve::new(200.0, 400.0, fee).unwrap().to_mobius(),
        ];
        Mobius::chain(&hops)
    }

    #[test]
    fn identity_maps_x_to_x() {
        assert_eq!(Mobius::IDENTITY.eval(5.0), 5.0);
        assert_eq!(Mobius::chain(&[]).eval(3.0), 3.0);
    }

    #[test]
    fn paper_example_round_trip_rate() {
        // γ³ · 2 · (2/3) · 2 = 0.997³ · 8/3 ≈ 2.6427
        let m = paper_chain();
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((m.rate_at_zero() - expected).abs() < 1e-9);
    }

    #[test]
    fn paper_example_optimal_input_and_profit() {
        // Paper §V: input ≈ 27.0 token X, profit ≈ 16.8 token X.
        let m = paper_chain();
        let dx = m.optimal_input();
        assert!((dx - 27.0).abs() < 0.1, "dx={dx}");
        let profit = m.max_profit();
        assert!((profit - 16.8).abs() < 0.1, "profit={profit}");
        // First-order condition holds.
        assert!((m.derivative(dx) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unprofitable_chain_yields_zero() {
        let fee = FeeRate::UNISWAP_V2;
        // Balanced loop: product of mid rates is 1, fees make it lossy.
        let hops = [
            SwapCurve::new(100.0, 200.0, fee).unwrap().to_mobius(),
            SwapCurve::new(200.0, 100.0, fee).unwrap().to_mobius(),
        ];
        let m = Mobius::chain(&hops);
        assert!(m.rate_at_zero() < 1.0);
        assert_eq!(m.optimal_input(), 0.0);
        assert_eq!(m.max_profit(), 0.0);
    }

    #[test]
    fn chain_matches_nested_eval() {
        let fee = FeeRate::UNISWAP_V2;
        let c1 = SwapCurve::new(100.0, 200.0, fee).unwrap();
        let c2 = SwapCurve::new(300.0, 200.0, fee).unwrap();
        let c3 = SwapCurve::new(200.0, 400.0, fee).unwrap();
        let m = Mobius::chain(&[c1.to_mobius(), c2.to_mobius(), c3.to_mobius()]);
        for dx in [0.1, 1.0, 27.0, 500.0] {
            let nested = c3.amount_out(c2.amount_out(c1.amount_out(dx)));
            assert!((m.eval(dx) - nested).abs() < 1e-9 * (1.0 + nested));
        }
    }

    proptest! {
        #[test]
        fn optimal_input_is_a_maximum(
            x1 in 10.0..1e6f64, y1 in 10.0..1e6f64,
            x2 in 10.0..1e6f64, y2 in 10.0..1e6f64,
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let m = Mobius::chain(&[
                SwapCurve::new(x1, y1, fee).unwrap().to_mobius(),
                SwapCurve::new(x2, y2, fee).unwrap().to_mobius(),
            ]);
            let star = m.optimal_input();
            let best = m.profit_at(star);
            for frac in [0.5, 0.9, 1.1, 2.0] {
                let other = m.profit_at(star * frac + 1e-9);
                prop_assert!(best >= other - 1e-9 * (1.0 + best.abs()));
            }
        }

        #[test]
        fn composition_associative(
            r in proptest::collection::vec(10.0..1e6f64, 6),
        ) {
            let fee = FeeRate::UNISWAP_V2;
            let h: Vec<Mobius> = (0..3)
                .map(|i| SwapCurve::new(r[2 * i], r[2 * i + 1], fee).unwrap().to_mobius())
                .collect();
            let left = h[2].after(&h[1]).after(&h[0]);
            let right = h[2].after(&h[1].after(&h[0]));
            for x in [0.5, 3.0, 100.0] {
                prop_assert!((left.eval(x) - right.eval(x)).abs()
                    <= 1e-9 * (1.0 + left.eval(x).abs()));
            }
        }

        #[test]
        fn normalization_preserves_value(
            a in 0.1..1e9f64, b in 1e-9..1e3f64, d in 0.1..1e9f64, x in 0.0..1e6f64
        ) {
            let m = Mobius::new(a, b, d);
            let raw = a * x / (b * x + d);
            prop_assert!((m.eval(x) - raw).abs() <= 1e-9 * (1.0 + raw.abs()));
        }
    }
}
