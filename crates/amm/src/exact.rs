//! Bit-exact Uniswap V2 integer swap semantics.
//!
//! The chain simulator executes swaps with the same integer arithmetic as
//! the Uniswap V2 `Router`/`Pair` contracts:
//!
//! ```text
//! amountOut = amountIn·(PPM−fee)·reserveOut
//!           / (reserveIn·PPM + amountIn·(PPM−fee))        (floor)
//! amountIn  = reserveIn·amountOut·PPM
//!           / ((reserveOut−amountOut)·(PPM−fee)) + 1      (ceil via +1)
//! ```
//!
//! (The contracts use 997/1000; we generalize to parts-per-million so any
//! [`FeeRate`] is representable. For 3000 ppm the results are identical to
//! 997/1000 arithmetic.)
//!
//! All arithmetic is `u128` with overflow checking; amounts on Ethereum fit
//! in `u112` reserves so `u128` intermediates can overflow only for absurd
//! inputs, which we surface as [`AmmError::Overflow`] rather than panicking.

use crate::error::AmmError;
use crate::fee::{FeeRate, PPM};

/// Computes the swap output with Uniswap V2 rounding (floor).
///
/// # Errors
///
/// * [`AmmError::NonPositiveReserve`] if either reserve is zero.
/// * [`AmmError::Overflow`] if `u128` intermediates overflow.
///
/// ```
/// use arb_amm::{exact::get_amount_out, fee::FeeRate};
/// // 1 ETH into a 100 ETH / 200_000 USDC pool (scaled integers):
/// let out = get_amount_out(1_000, 100_000, 200_000_000, FeeRate::UNISWAP_V2)?;
/// assert!(out < 2_000_000); // slippage + fee keep it under spot
/// # Ok::<(), arb_amm::AmmError>(())
/// ```
pub fn get_amount_out(
    amount_in: u128,
    reserve_in: u128,
    reserve_out: u128,
    fee: FeeRate,
) -> Result<u128, AmmError> {
    if reserve_in == 0 || reserve_out == 0 {
        return Err(AmmError::NonPositiveReserve);
    }
    if amount_in == 0 {
        return Ok(0);
    }
    let gamma = fee.gamma_ppm() as u128;
    let amount_in_with_fee = amount_in.checked_mul(gamma).ok_or(AmmError::Overflow)?;
    let numerator = amount_in_with_fee
        .checked_mul(reserve_out)
        .ok_or(AmmError::Overflow)?;
    let denominator = reserve_in
        .checked_mul(PPM as u128)
        .ok_or(AmmError::Overflow)?
        .checked_add(amount_in_with_fee)
        .ok_or(AmmError::Overflow)?;
    Ok(numerator / denominator)
}

/// Computes the input required for an exact output (rounds up).
///
/// # Errors
///
/// * [`AmmError::NonPositiveReserve`] if either reserve is zero.
/// * [`AmmError::InsufficientLiquidity`] if `amount_out >= reserve_out`.
/// * [`AmmError::Overflow`] if `u128` intermediates overflow.
pub fn get_amount_in(
    amount_out: u128,
    reserve_in: u128,
    reserve_out: u128,
    fee: FeeRate,
) -> Result<u128, AmmError> {
    if reserve_in == 0 || reserve_out == 0 {
        return Err(AmmError::NonPositiveReserve);
    }
    if amount_out == 0 {
        return Ok(0);
    }
    if amount_out >= reserve_out {
        return Err(AmmError::InsufficientLiquidity);
    }
    let gamma = fee.gamma_ppm() as u128;
    let numerator = reserve_in
        .checked_mul(amount_out)
        .ok_or(AmmError::Overflow)?
        .checked_mul(PPM as u128)
        .ok_or(AmmError::Overflow)?;
    let denominator = (reserve_out - amount_out)
        .checked_mul(gamma)
        .ok_or(AmmError::Overflow)?;
    Ok(numerator / denominator + 1)
}

/// An integer-reserve pool mirroring an on-chain Uniswap V2 pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawPool {
    reserve_a: u128,
    reserve_b: u128,
    fee: FeeRate,
}

impl RawPool {
    /// Creates a raw pool.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::NonPositiveReserve`] if either reserve is zero.
    pub fn new(reserve_a: u128, reserve_b: u128, fee: FeeRate) -> Result<Self, AmmError> {
        if reserve_a == 0 || reserve_b == 0 {
            return Err(AmmError::NonPositiveReserve);
        }
        Ok(RawPool {
            reserve_a,
            reserve_b,
            fee,
        })
    }

    /// Reserve of side A.
    pub fn reserve_a(&self) -> u128 {
        self.reserve_a
    }

    /// Reserve of side B.
    pub fn reserve_b(&self) -> u128 {
        self.reserve_b
    }

    /// The pool fee.
    pub fn fee(&self) -> FeeRate {
        self.fee
    }

    /// Quote of swapping `amount_in` of side A for side B (`a_to_b = true`)
    /// or the reverse.
    ///
    /// # Errors
    ///
    /// See [`get_amount_out`].
    pub fn quote(&self, a_to_b: bool, amount_in: u128) -> Result<u128, AmmError> {
        let (rin, rout) = if a_to_b {
            (self.reserve_a, self.reserve_b)
        } else {
            (self.reserve_b, self.reserve_a)
        };
        get_amount_out(amount_in, rin, rout, self.fee)
    }

    /// Executes a swap, mutating reserves; returns the output amount.
    ///
    /// # Errors
    ///
    /// See [`get_amount_out`].
    pub fn execute(&mut self, a_to_b: bool, amount_in: u128) -> Result<u128, AmmError> {
        let out = self.quote(a_to_b, amount_in)?;
        if a_to_b {
            self.reserve_a = self
                .reserve_a
                .checked_add(amount_in)
                .ok_or(AmmError::Overflow)?;
            self.reserve_b -= out;
        } else {
            self.reserve_b = self
                .reserve_b
                .checked_add(amount_in)
                .ok_or(AmmError::Overflow)?;
            self.reserve_a -= out;
        }
        Ok(out)
    }

    /// The product invariant `k = r_a · r_b`.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::Overflow`] if the product exceeds `u128`.
    pub fn k(&self) -> Result<u128, AmmError> {
        self.reserve_a
            .checked_mul(self.reserve_b)
            .ok_or(AmmError::Overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::SwapCurve;
    use proptest::prelude::*;

    const FEE: FeeRate = FeeRate::UNISWAP_V2;

    #[test]
    fn matches_uniswap_997_1000_reference() {
        // Reference computed with the contract formula:
        // in=1_000, rin=100_000, rout=200_000:
        //   inWithFee = 997_000; out = 997_000*200_000 / (100_000*1000*1000 + 997_000... )
        // With ppm arithmetic: 1000*997000*200000/(100000*1000000 + 1000*997000)
        let out = get_amount_out(1_000, 100_000, 200_000, FEE).unwrap();
        let expect = (1_000u128 * 997 * 200_000) / (100_000 * 1_000 + 1_000 * 997);
        assert_eq!(out, expect);
    }

    #[test]
    fn zero_in_zero_out() {
        assert_eq!(get_amount_out(0, 10, 10, FEE).unwrap(), 0);
        assert_eq!(get_amount_in(0, 10, 10, FEE).unwrap(), 0);
    }

    #[test]
    fn zero_reserve_rejected() {
        assert_eq!(
            get_amount_out(1, 0, 10, FEE),
            Err(AmmError::NonPositiveReserve)
        );
        assert_eq!(
            get_amount_in(1, 10, 0, FEE),
            Err(AmmError::NonPositiveReserve)
        );
    }

    #[test]
    fn full_reserve_out_rejected() {
        assert_eq!(
            get_amount_in(10, 10, 10, FEE),
            Err(AmmError::InsufficientLiquidity)
        );
    }

    #[test]
    fn overflow_is_reported() {
        assert_eq!(
            get_amount_out(u128::MAX, u128::MAX / 2, u128::MAX / 2, FEE),
            Err(AmmError::Overflow)
        );
    }

    #[test]
    fn raw_pool_execute_roundtrip() {
        let mut p = RawPool::new(1_000_000, 2_000_000, FEE).unwrap();
        let k0 = p.k().unwrap();
        let out = p.execute(true, 10_000).unwrap();
        assert!(out > 0);
        assert!(p.k().unwrap() >= k0);
    }

    proptest! {
        #[test]
        fn integer_out_never_exceeds_float_out(
            rin in 1_000u128..1_000_000_000_000,
            rout in 1_000u128..1_000_000_000_000,
            ain in 1u128..1_000_000_000,
        ) {
            let exact = get_amount_out(ain, rin, rout, FEE).unwrap();
            let float = SwapCurve::new(rin as f64, rout as f64, FEE)
                .unwrap()
                .amount_out(ain as f64);
            // Floor rounding means the integer result is at most the float
            // result (up to float representation error).
            prop_assert!((exact as f64) <= float * (1.0 + 1e-9) + 1.0);
        }

        #[test]
        fn get_amount_in_covers_requested_out(
            rin in 1_000u128..1_000_000_000,
            rout in 1_000u128..1_000_000_000,
            aout_frac in 1u128..500,
        ) {
            let aout = rout * aout_frac / 1_000; // < rout/2
            prop_assume!(aout > 0);
            let ain = get_amount_in(aout, rin, rout, FEE).unwrap();
            let achieved = get_amount_out(ain, rin, rout, FEE).unwrap();
            prop_assert!(achieved >= aout, "achieved={achieved} wanted={aout}");
        }

        #[test]
        fn k_never_decreases(
            rin in 1_000u128..1_000_000_000,
            rout in 1_000u128..1_000_000_000,
            ain in 1u128..1_000_000,
        ) {
            let mut p = RawPool::new(rin, rout, FEE).unwrap();
            let k0 = p.k().unwrap();
            p.execute(true, ain).unwrap();
            prop_assert!(p.k().unwrap() >= k0);
        }

        #[test]
        fn output_strictly_less_than_reserve(
            rin in 1u128..1_000_000_000,
            rout in 1u128..1_000_000_000,
            ain in 1u128..u64::MAX as u128,
        ) {
            let out = get_amount_out(ain, rin, rout, FEE).unwrap();
            prop_assert!(out < rout);
        }
    }
}
