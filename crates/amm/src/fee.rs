//! Pool fee rates.
//!
//! Uniswap V2 charges a flat `λ = 0.3%` fee on the input amount of every
//! swap. The paper writes the post-fee multiplier as `γ = 1 − λ`. Fees are
//! stored as integer parts-per-million so the exact integer swap path and
//! the float analysis path agree on the same rate.

use crate::AmmError;

/// Denominator for parts-per-million fee arithmetic.
pub const PPM: u32 = 1_000_000;

/// A pool fee rate `λ`, stored in parts-per-million.
///
/// ```
/// use arb_amm::fee::FeeRate;
/// let fee = FeeRate::UNISWAP_V2;
/// assert_eq!(fee.ppm(), 3_000);
/// assert!((fee.lambda() - 0.003).abs() < 1e-12);
/// assert!((fee.gamma() - 0.997).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeeRate(u32);

impl FeeRate {
    /// The canonical Uniswap V2 fee: 0.3% (3000 ppm).
    pub const UNISWAP_V2: FeeRate = FeeRate(3_000);

    /// A zero-fee pool, useful in tests and theoretical examples.
    pub const ZERO: FeeRate = FeeRate(0);

    /// Creates a fee rate from parts-per-million.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::FeeTooHigh`] if `ppm >= 1_000_000` (a 100% fee
    /// would make every swap output zero).
    pub fn from_ppm(ppm: u32) -> Result<Self, AmmError> {
        if ppm >= PPM {
            return Err(AmmError::FeeTooHigh);
        }
        Ok(FeeRate(ppm))
    }

    /// Creates a fee rate from a fraction in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`AmmError::FeeTooHigh`] if `lambda` is not in `[0, 1)` or is
    /// not finite.
    pub fn from_fraction(lambda: f64) -> Result<Self, AmmError> {
        if !lambda.is_finite() || !(0.0..1.0).contains(&lambda) {
            return Err(AmmError::FeeTooHigh);
        }
        Ok(FeeRate((lambda * PPM as f64).round() as u32))
    }

    /// The fee in parts-per-million.
    pub fn ppm(self) -> u32 {
        self.0
    }

    /// The fee fraction `λ`.
    pub fn lambda(self) -> f64 {
        self.0 as f64 / PPM as f64
    }

    /// The post-fee multiplier `γ = 1 − λ` applied to swap inputs.
    pub fn gamma(self) -> f64 {
        1.0 - self.lambda()
    }

    /// The integer numerator `1_000_000 − ppm` used by exact swap math.
    pub fn gamma_ppm(self) -> u32 {
        PPM - self.0
    }
}

impl Default for FeeRate {
    /// Defaults to the Uniswap V2 fee of 0.3%.
    fn default() -> Self {
        FeeRate::UNISWAP_V2
    }
}

impl std::fmt::Display for FeeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ppm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniswap_v2_constants() {
        assert_eq!(FeeRate::UNISWAP_V2.gamma_ppm(), 997_000);
        assert!((FeeRate::UNISWAP_V2.gamma() - 0.997).abs() < 1e-15);
    }

    #[test]
    fn from_fraction_roundtrips() {
        let f = FeeRate::from_fraction(0.003).unwrap();
        assert_eq!(f, FeeRate::UNISWAP_V2);
        assert_eq!(FeeRate::from_fraction(0.0).unwrap(), FeeRate::ZERO);
    }

    #[test]
    fn rejects_full_fee() {
        assert_eq!(FeeRate::from_ppm(PPM), Err(AmmError::FeeTooHigh));
        assert_eq!(FeeRate::from_fraction(1.0), Err(AmmError::FeeTooHigh));
        assert_eq!(FeeRate::from_fraction(-0.1), Err(AmmError::FeeTooHigh));
        assert_eq!(FeeRate::from_fraction(f64::NAN), Err(AmmError::FeeTooHigh));
    }

    #[test]
    fn display_shows_ppm() {
        assert_eq!(FeeRate::UNISWAP_V2.to_string(), "3000ppm");
    }

    #[test]
    fn zero_fee_gamma_is_one() {
        assert_eq!(FeeRate::ZERO.gamma(), 1.0);
        assert_eq!(FeeRate::ZERO.gamma_ppm(), PPM);
    }
}
