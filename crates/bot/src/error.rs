//! Bot error type.

use std::error::Error;
use std::fmt;

/// Errors from bot scanning, evaluation, and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum BotError {
    /// Graph construction or cycle enumeration failed.
    Graph(arb_graph::GraphError),
    /// Strategy evaluation failed.
    Strategy(arb_core::StrategyError),
    /// On-chain execution failed outside of an expected revert.
    Chain(arb_dexsim::TxError),
    /// A token required for evaluation has no price.
    MissingPrice,
    /// Snapshot generation failed (market-sim setup).
    Snapshot(arb_snapshot::SnapshotError),
    /// An engine failure outside the graph/strategy categories.
    Engine(arb_engine::EngineError),
    /// Durable journaling or recovery failed (journaled mode only).
    Journal(arb_journal::JournalError),
    /// The ingestion front-end failed (ingest mode only).
    Ingest(arb_ingest::IngestError),
    /// A supervised bot panicked more times than its recovery budget
    /// allows (supervised mode only).
    RecoveryExhausted {
        /// Recoveries performed before giving up.
        recoveries: u32,
    },
}

impl fmt::Display for BotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BotError::Graph(e) => write!(f, "graph error: {e}"),
            BotError::Strategy(e) => write!(f, "strategy error: {e}"),
            BotError::Chain(e) => write!(f, "chain error: {e}"),
            BotError::MissingPrice => write!(f, "missing cex price for a loop token"),
            BotError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            BotError::Engine(e) => write!(f, "engine error: {e}"),
            BotError::Journal(e) => write!(f, "journal error: {e}"),
            BotError::Ingest(e) => write!(f, "ingest error: {e}"),
            BotError::RecoveryExhausted { recoveries } => write!(
                f,
                "recovery budget exhausted after {recoveries} supervised recoveries"
            ),
        }
    }
}

impl Error for BotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BotError::Graph(e) => Some(e),
            BotError::Strategy(e) => Some(e),
            BotError::Chain(e) => Some(e),
            BotError::Snapshot(e) => Some(e),
            BotError::Engine(e) => Some(e),
            BotError::Journal(e) => Some(e),
            BotError::Ingest(e) => Some(e),
            BotError::MissingPrice | BotError::RecoveryExhausted { .. } => None,
        }
    }
}

impl From<arb_graph::GraphError> for BotError {
    fn from(e: arb_graph::GraphError) -> Self {
        BotError::Graph(e)
    }
}

impl From<arb_core::StrategyError> for BotError {
    fn from(e: arb_core::StrategyError) -> Self {
        BotError::Strategy(e)
    }
}

impl From<arb_engine::EngineError> for BotError {
    fn from(e: arb_engine::EngineError) -> Self {
        match e {
            arb_engine::EngineError::Graph(g) => BotError::Graph(g),
            arb_engine::EngineError::Strategy(s) => BotError::Strategy(s),
            other => BotError::Engine(other),
        }
    }
}

impl From<arb_journal::JournalError> for BotError {
    fn from(e: arb_journal::JournalError) -> Self {
        match e {
            arb_journal::JournalError::Engine(inner) => BotError::from(inner),
            other => BotError::Journal(other),
        }
    }
}

impl From<arb_ingest::IngestError> for BotError {
    fn from(e: arb_ingest::IngestError) -> Self {
        // Unwrap into the established categories so callers match on one
        // variant per failure domain regardless of the delivery path.
        match e {
            arb_ingest::IngestError::Journal(j) => BotError::from(j),
            arb_ingest::IngestError::Engine(en) => BotError::from(en),
            other => BotError::Ingest(other),
        }
    }
}

impl From<arb_dexsim::TxError> for BotError {
    fn from(e: arb_dexsim::TxError) -> Self {
        BotError::Chain(e)
    }
}

impl From<arb_amm::AmmError> for BotError {
    fn from(e: arb_amm::AmmError) -> Self {
        BotError::Chain(arb_dexsim::TxError::Amm(e))
    }
}

impl From<arb_snapshot::SnapshotError> for BotError {
    fn from(e: arb_snapshot::SnapshotError) -> Self {
        BotError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BotError::Graph(arb_graph::GraphError::EmptyGraph);
        assert!(e.to_string().contains("graph"));
        assert!(e.source().is_some());
        assert!(BotError::MissingPrice.source().is_none());
    }
}
