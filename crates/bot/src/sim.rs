//! A deterministic end-to-end market simulation.
//!
//! Wires every substrate together: a synthetic snapshot seeds the chain's
//! pools and the CEX's reference prices; noise traders and LPs perturb
//! reserves each block; the CEX drifts; the bot scans, sizes (MaxMax or
//! Convex), and executes flash bundles; a ledger tracks monetized PnL.
//! Examples, integration tests, and benches all drive this harness.

use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_cex::venue::{Exchange, MarketConfig};
use arb_core::monetize::Usd;
use arb_dexsim::agents::{LiquidityAgent, RandomTrader};
use arb_dexsim::chain::Chain;
use arb_dexsim::units::to_raw;
use arb_snapshot::{Generator, SnapshotConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bot::{ArbBot, BotAction};
use crate::config::BotConfig;
use crate::error::BotError;
use crate::pnl::Ledger;

/// Market simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct MarketSimConfig {
    /// RNG seed shared by all stochastic components.
    pub seed: u64,
    /// Token universe size.
    pub num_tokens: usize,
    /// Pool count (post-filter, as in the snapshot generator).
    pub num_pools: usize,
    /// Initial pool mispricing (see [`SnapshotConfig::mispricing_std`]).
    pub mispricing_std: f64,
    /// Per-pool probability that the noise trader acts each block.
    pub trader_probability: f64,
    /// Noise trade size as a fraction of the input reserve.
    pub trader_max_fraction: f64,
    /// Per-pool probability that the LP agent acts each block.
    pub lp_probability: f64,
    /// LP deposit size as a fraction of reserves.
    pub lp_fraction: f64,
    /// CEX reference-price volatility per block.
    pub cex_volatility: f64,
    /// Bot configuration.
    pub bot: BotConfig,
}

impl Default for MarketSimConfig {
    fn default() -> Self {
        MarketSimConfig {
            seed: 42,
            num_tokens: 8,
            num_pools: 14,
            mispricing_std: 0.006,
            trader_probability: 0.3,
            trader_max_fraction: 0.02,
            lp_probability: 0.05,
            lp_fraction: 0.05,
            cex_volatility: 0.001,
            bot: BotConfig {
                min_profit_usd: 0.5,
                ..BotConfig::default()
            },
        }
    }
}

impl MarketSimConfig {
    /// A sim config reproducing a catalog workload's shape through the
    /// chain's own agents: the workload's [`arb_workloads::SimProfile`]
    /// sets the trader/LP/CEX intensities, everything else keeps the
    /// defaults. The same named scenarios that drive the engine benches
    /// therefore also drive full chain-execution runs.
    pub fn from_workload(spec: &arb_workloads::WorkloadSpec, bot: BotConfig) -> Self {
        let profile = spec.sim_profile();
        MarketSimConfig {
            mispricing_std: profile.mispricing_std,
            trader_probability: profile.trader_probability,
            trader_max_fraction: profile.trader_max_fraction,
            lp_probability: profile.lp_probability,
            lp_fraction: profile.lp_fraction,
            cex_volatility: profile.cex_volatility,
            bot,
            ..MarketSimConfig::default()
        }
    }
}

/// Summary of one simulation step (two chain blocks: agents, then bot).
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Chain height after the step.
    pub height: u64,
    /// What the bot did.
    pub action: BotAction,
    /// Bot PnL after the step.
    pub pnl: Usd,
}

/// The assembled market.
#[derive(Debug)]
pub struct MarketSim {
    chain: Chain,
    bot: ArbBot,
    trader: RandomTrader,
    lp: LiquidityAgent,
    exchange: Exchange,
    ledger: Ledger,
    rng: StdRng,
    tokens: Vec<TokenId>,
}

impl MarketSim {
    /// Builds a market from a config: generates a filtered snapshot, seeds
    /// the chain pools and the CEX markets from it, and registers agents.
    ///
    /// # Errors
    ///
    /// Forwards snapshot-generation and chain-setup failures.
    pub fn new(config: MarketSimConfig) -> Result<Self, BotError> {
        let snapshot_cfg = SnapshotConfig {
            seed: config.seed,
            num_tokens: config.num_tokens,
            num_pools: config.num_pools,
            mispricing_std: config.mispricing_std,
            ..SnapshotConfig::default()
        };
        let snapshot = Generator::new(snapshot_cfg).generate()?;
        let filtered = snapshot.filtered(&snapshot_cfg);

        let mut chain = Chain::new();
        for pool in filtered.pools() {
            chain.add_pool(
                pool.token_a(),
                pool.token_b(),
                to_raw(pool.reserve_a()),
                to_raw(pool.reserve_b()),
                pool.fee(),
            )?;
        }

        let mut exchange = Exchange::new("sim-cex");
        let tokens: Vec<TokenId> = (0..filtered.token_count() as u32)
            .map(TokenId::new)
            .collect();
        for token in &tokens {
            let price = filtered.usd_price(*token).expect("token in snapshot");
            exchange.add_market(
                *token,
                MarketConfig {
                    volatility: config.cex_volatility,
                    ..MarketConfig::new(price)
                },
            );
        }

        let bot = ArbBot::new(&mut chain, config.bot);
        let trader = RandomTrader::new(
            &mut chain,
            config.trader_probability,
            config.trader_max_fraction,
        );
        let lp = LiquidityAgent::new(&mut chain, config.lp_probability, config.lp_fraction);

        Ok(MarketSim {
            chain,
            bot,
            trader,
            lp,
            exchange,
            ledger: Ledger::new(),
            rng: StdRng::seed_from_u64(config.seed ^ 0x00c0_ffee),
            tokens,
        })
    }

    /// One step: agents trade (block N), CEX ticks, the bot scans the
    /// settled state and executes (block N+1), PnL is observed.
    ///
    /// # Errors
    ///
    /// Forwards bot scan/evaluation failures.
    pub fn step(&mut self) -> Result<StepSummary, BotError> {
        self.trader.act(&mut self.chain, &mut self.rng);
        self.lp.act(&mut self.chain, &mut self.rng);
        self.chain.mine_block();

        self.exchange.tick(&mut self.rng);
        let feed = self.exchange.price_table();

        let action = self.bot.step(&mut self.chain, &feed)?;
        self.chain.mine_block();

        let point = self.ledger.observe(
            &self.chain,
            self.bot.account(),
            self.tokens.iter().copied(),
            &feed,
        );
        Ok(StepSummary {
            height: self.chain.height(),
            action,
            pnl: point.value,
        })
    }

    /// Runs `n` steps.
    ///
    /// # Errors
    ///
    /// Stops at the first failing step.
    pub fn run_blocks(&mut self, n: usize) -> Result<Vec<StepSummary>, BotError> {
        (0..n).map(|_| self.step()).collect()
    }

    /// The chain (for inspection).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// The bot.
    pub fn bot(&self) -> &ArbBot {
        &self.bot
    }

    /// The CEX price table right now.
    pub fn price_table(&self) -> PriceTable {
        self.exchange.price_table()
    }

    /// The PnL ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Latest bot PnL (zero before the first step).
    pub fn bot_pnl(&self) -> Usd {
        self.ledger.latest().map_or(Usd::ZERO, |p| p.value)
    }

    /// The token universe.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyChoice;

    #[test]
    fn bot_token_balances_never_decrease() {
        // Flash bundles are risk-free: the bot can only gain tokens.
        let mut sim = MarketSim::new(MarketSimConfig::default()).unwrap();
        let tokens = sim.tokens().to_vec();
        let mut previous: Vec<u128> = tokens
            .iter()
            .map(|t| sim.chain().state().balance(sim.bot().account(), *t))
            .collect();
        for _ in 0..15 {
            sim.step().unwrap();
            let current: Vec<u128> = tokens
                .iter()
                .map(|t| sim.chain().state().balance(sim.bot().account(), *t))
                .collect();
            for (before, after) in previous.iter().zip(&current) {
                assert!(after >= before, "bot balance decreased");
            }
            previous = current;
        }
    }

    #[test]
    fn bot_eventually_profits_in_noisy_market() {
        let mut sim = MarketSim::new(MarketSimConfig {
            trader_max_fraction: 0.05,
            ..MarketSimConfig::default()
        })
        .unwrap();
        let summaries = sim.run_blocks(25).unwrap();
        let executed = summaries
            .iter()
            .filter(|s| matches!(s.action, BotAction::Submitted { .. }))
            .count();
        assert!(executed > 0, "noise flow should open opportunities");
        assert!(sim.bot_pnl().value() > 0.0, "pnl = {}", sim.bot_pnl());
    }

    #[test]
    fn convex_bot_runs_end_to_end() {
        let mut sim = MarketSim::new(MarketSimConfig {
            bot: BotConfig {
                strategy: StrategyChoice::Convex,
                min_profit_usd: 0.5,
                ..BotConfig::default()
            },
            ..MarketSimConfig::default()
        })
        .unwrap();
        sim.run_blocks(10).unwrap();
        assert!(sim.bot_pnl().value() >= 0.0);
    }

    #[test]
    fn workload_profiles_drive_the_sim() {
        // Every catalog workload must map onto a runnable market sim, and
        // the sharded bot must survive whichever shape it gets.
        for spec in arb_workloads::catalog() {
            let config = MarketSimConfig::from_workload(
                spec,
                BotConfig {
                    mode: crate::config::ScanMode::Sharded,
                    min_profit_usd: 0.5,
                    ..BotConfig::default()
                },
            );
            assert_eq!(
                config.trader_probability,
                spec.sim_profile().trader_probability
            );
            let mut sim = MarketSim::new(config).expect(spec.name);
            sim.run_blocks(4).expect(spec.name);
            assert!(sim.bot_pnl().value() >= 0.0, "{}", spec.name);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed: u64| {
            let mut sim = MarketSim::new(MarketSimConfig {
                seed,
                ..MarketSimConfig::default()
            })
            .unwrap();
            sim.run_blocks(8).unwrap();
            (
                sim.chain().state().digest(),
                sim.bot_pnl().value().to_bits(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
