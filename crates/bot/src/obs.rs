//! Bot-level observability wiring: configuration, per-step counters,
//! periodic export, and the `/metrics`-style pull surface.
//!
//! Both bot flavors ([`crate::ArbBot`] and [`crate::IngestBot`]) attach
//! through `enable_observability(ObsConfig)`, which builds one
//! [`arb_obs::Obs`] handle and threads it through every layer they own
//! (ingest front-end, engine/runtime, publisher). The bots then expose:
//!
//! * `obs()` — the shared handle, for snapshots and flight dumps;
//! * `metrics()` — the current registry in Prometheus text format, the
//!   body a `/metrics` endpoint would serve;
//! * a periodic JSON-lines export every
//!   [`ObsConfig::export_every_steps`] steps into a caller-provided
//!   sink callback.

use std::fmt;
use std::path::PathBuf;

use arb_obs::{Counter, Obs, ObsOptions, SpanTimer};

/// How a bot attaches to the observability layer.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Flight-recorder ring capacity in events (rounded up to a power
    /// of two, minimum 16).
    pub flight_capacity: usize,
    /// Push a JSON-lines registry export into the sink callback every
    /// this many steps (0 = no periodic export; the pull surface stays
    /// available either way).
    pub export_every_steps: usize,
    /// Install a process-wide panic hook dumping the flight recorder to
    /// this directory on crash. [`crate::IngestBot`] defaults this to
    /// its journal directory when unset; [`crate::ArbBot`] has no
    /// durable directory, so `None` means no hook there.
    pub panic_dump_dir: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            flight_capacity: ObsOptions::default().flight_capacity,
            export_every_steps: 0,
            panic_dump_dir: None,
        }
    }
}

/// The sink periodic exports are pushed into (a log shipper, a test
/// buffer, a file appender).
pub type ExportSink = Box<dyn FnMut(&str) + Send>;

/// Per-bot observability state: the shared handle plus the step-level
/// instruments both bot flavors record identically.
pub(crate) struct BotObs {
    obs: Obs,
    export_every_steps: usize,
    steps_since_export: usize,
    sink: Option<ExportSink>,
    /// Wraps one whole decision step (scan → rank → execute).
    step_span: SpanTimer,
    steps: Counter,
    submissions: Counter,
}

impl fmt::Debug for BotObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BotObs")
            .field("export_every_steps", &self.export_every_steps)
            .field("steps_since_export", &self.steps_since_export)
            .field("sink", &self.sink.as_ref().map(|_| "..."))
            .finish_non_exhaustive()
    }
}

impl BotObs {
    pub fn new(config: &ObsConfig) -> Self {
        let obs = Obs::new(ObsOptions {
            flight_capacity: config.flight_capacity,
        });
        if let Some(dir) = &config.panic_dump_dir {
            arb_obs::install_panic_hook(&obs, dir);
        }
        BotObs {
            step_span: obs.span("bot.step_ns"),
            steps: obs.registry().counter("bot.steps"),
            submissions: obs.registry().counter("bot.submissions"),
            export_every_steps: config.export_every_steps,
            steps_since_export: 0,
            sink: None,
            obs,
        }
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub fn set_sink(&mut self, sink: ExportSink) {
        self.sink = Some(sink);
    }

    /// The `bot.step_ns` timer, cloned out so the caller can hold the
    /// span guard while mutably borrowing the rest of the bot.
    pub fn step_timer(&self) -> SpanTimer {
        self.step_span.clone()
    }

    /// Per-step bookkeeping: counters, then the periodic export when
    /// one is due.
    pub fn after_step(&mut self, submitted: bool) {
        self.steps.inc();
        if submitted {
            self.submissions.inc();
        }
        if self.export_every_steps == 0 {
            return;
        }
        self.steps_since_export += 1;
        if self.steps_since_export >= self.export_every_steps {
            self.steps_since_export = 0;
            let body = self.obs.json_lines();
            if let Some(sink) = &mut self.sink {
                sink(&body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn periodic_export_fires_on_schedule() {
        let mut bot_obs = BotObs::new(&ObsConfig {
            export_every_steps: 2,
            ..ObsConfig::default()
        });
        let exports: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_exports = Arc::clone(&exports);
        bot_obs.set_sink(Box::new(move |body| {
            sink_exports.lock().unwrap().push(body.to_string());
        }));
        for step in 0..5 {
            let timer = bot_obs.step_timer();
            drop(timer.start());
            bot_obs.after_step(step % 2 == 0);
        }
        let exports = exports.lock().unwrap();
        assert_eq!(exports.len(), 2, "exports at steps 2 and 4");
        assert!(exports[0].contains("\"metric\":\"bot.steps\""));
        let snapshot = bot_obs.obs().snapshot();
        assert_eq!(snapshot.counter("bot.steps"), Some(5));
        assert_eq!(snapshot.counter("bot.submissions"), Some(3));
        assert_eq!(snapshot.histogram("bot.step_ns").unwrap().count, 5);
    }
}
