//! Chain-state discovery: current pools → analysis graph → engine run.
//!
//! The discovery/evaluation loop itself lives in [`arb_engine`]; this
//! module only adapts chain state into the engine's inputs.

use arb_amm::pool::Pool;
use arb_cex::feed::PriceFeed;
use arb_dexsim::chain::Chain;
use arb_engine::{OpportunityPipeline, PipelineReport};
use arb_graph::TokenGraph;

use crate::error::BotError;

/// Builds the analysis token graph from current chain state.
///
/// Pools whose reserves have degenerated below representability are
/// *retired* rather than dropped: they keep their slot (so every
/// surviving cycle's `PoolId`s still index chain state directly — the
/// invariant flash-bundle execution relies on) but contribute no edges,
/// so no discovered cycle can route through them.
///
/// # Errors
///
/// Returns [`BotError::Graph`] if the chain has no pools at all.
pub fn graph_from_chain(chain: &Chain) -> Result<TokenGraph, BotError> {
    let mut degenerate = Vec::new();
    let pools: Vec<Pool> = chain
        .state()
        .pools()
        .iter()
        .enumerate()
        .map(|(index, on_chain)| {
            on_chain.to_analysis_pool().unwrap_or_else(|_| {
                // Slot-preserving placeholder; retired immediately below.
                degenerate.push(index);
                Pool::new(
                    on_chain.token_a(),
                    on_chain.token_b(),
                    1.0,
                    1.0,
                    on_chain.raw().fee(),
                )
                .expect("distinct tokens and positive reserves")
            })
        })
        .collect();
    let mut graph = TokenGraph::new(pools)?;
    for index in degenerate {
        graph.remove_pool(arb_amm::pool::PoolId::new(index as u32))?;
    }
    Ok(graph)
}

/// Runs the engine pipeline against current chain state, returning ranked
/// opportunities.
///
/// # Errors
///
/// Returns [`BotError::Graph`] on graph-construction or enumeration
/// failures and [`BotError::Strategy`] when a strategy fails non-benignly
/// during evaluation (benign thin-interior infeasibility is only counted
/// in the report's stats).
pub fn discover<F: PriceFeed>(
    chain: &Chain,
    pipeline: &OpportunityPipeline,
    feed: &F,
) -> Result<PipelineReport, BotError> {
    let graph = graph_from_chain(chain)?;
    Ok(pipeline.run_graph(&graph, feed)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;
    use arb_engine::{PipelineConfig, RankByGrossProfit};

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn finds_the_paper_triangle() {
        let chain = paper_chain();
        let report = discover(&chain, &OpportunityPipeline::default(), &paper_feed()).unwrap();
        assert_eq!(report.opportunities.len(), 1);
        let opp = report.best().unwrap();
        assert_eq!(opp.cycle.tokens(), &[t(0), t(1), t(2)]);
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((opp.round_trip_rate() - expected).abs() < 1e-6);
    }

    #[test]
    fn balanced_market_has_no_opportunities() {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        // Consistent pricing: 1:1 everywhere.
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_000.0), fee)
                .unwrap();
        }
        let mut feed = PriceTable::new();
        for i in 0..3 {
            feed.set(t(i), 1.0);
        }
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            max_cycle_len: 4,
            ..PipelineConfig::default()
        });
        let report = discover(&chain, &pipeline, &feed).unwrap();
        assert!(report.opportunities.is_empty());
    }

    #[test]
    fn opportunities_ranked_by_profit() {
        let mut chain = paper_chain();
        let fee = FeeRate::UNISWAP_V2;
        // A second, milder triangle over tokens 3,4,5.
        chain
            .add_pool(t(3), t(4), to_raw(1_000.0), to_raw(1_050.0), fee)
            .unwrap();
        chain
            .add_pool(t(4), t(5), to_raw(1_000.0), to_raw(1_000.0), fee)
            .unwrap();
        chain
            .add_pool(t(5), t(3), to_raw(1_000.0), to_raw(1_000.0), fee)
            .unwrap();
        let mut feed = paper_feed();
        feed.extend([(t(3), 1.0), (t(4), 1.0), (t(5), 1.0)]);
        let pipeline = OpportunityPipeline::default().with_ranking(Box::new(RankByGrossProfit));
        let report = discover(&chain, &pipeline, &feed).unwrap();
        assert_eq!(report.opportunities.len(), 2);
        assert!(
            report.opportunities[0].gross_profit.value()
                >= report.opportunities[1].gross_profit.value()
        );
        assert_eq!(report.opportunities[0].cycle.tokens()[0], t(0));
    }
}
