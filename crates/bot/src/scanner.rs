//! Chain-state scanning: current pools → token graph → profitable loops.

use arb_core::loop_def::ArbLoop;
use arb_dexsim::chain::Chain;
use arb_graph::{Cycle, TokenGraph};

use crate::error::BotError;

/// A loop discovered on-chain, carrying both the analysis-level
/// [`ArbLoop`] (for the strategies) and the originating [`Cycle`] with its
/// pool ids (for execution).
#[derive(Debug, Clone)]
pub struct Opportunity {
    /// The executable cycle (token + pool ids in trade order).
    pub cycle: Cycle,
    /// The analysis view of the same loop.
    pub loop_: ArbLoop,
}

/// Builds the analysis token graph from current chain state.
///
/// Pools whose reserves have degenerated below representability are
/// skipped rather than failing the scan.
///
/// # Errors
///
/// Returns [`BotError::Graph`] if no usable pool remains.
pub fn graph_from_chain(chain: &Chain) -> Result<TokenGraph, BotError> {
    let pools: Vec<_> = chain
        .state()
        .pools()
        .iter()
        .filter_map(|p| p.to_analysis_pool().ok())
        .collect();
    Ok(TokenGraph::new(pools)?)
}

/// Scans for arbitrage loops up to `max_len` hops, returning opportunities
/// sorted by descending zero-input round-trip rate (the cheapest useful
/// prioritization before full strategy evaluation).
///
/// # Errors
///
/// Returns [`BotError::Graph`] on graph construction failures.
pub fn scan(chain: &Chain, max_len: usize) -> Result<Vec<Opportunity>, BotError> {
    let graph = graph_from_chain(chain)?;
    let mut out: Vec<(f64, Opportunity)> = Vec::new();
    for len in 2..=max_len.max(2) {
        for cycle in graph.arbitrage_loops(len)? {
            let hops = graph.curves_for(&cycle)?;
            let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec())?;
            let rate = loop_.round_trip_rate();
            out.push((rate, Opportunity { cycle, loop_ }));
        }
    }
    out.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("rates are finite"));
    Ok(out.into_iter().map(|(_, opp)| opp).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    #[test]
    fn finds_the_paper_triangle() {
        let chain = paper_chain();
        let opportunities = scan(&chain, 3).unwrap();
        assert_eq!(opportunities.len(), 1);
        let opp = &opportunities[0];
        assert_eq!(opp.cycle.tokens(), &[t(0), t(1), t(2)]);
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((opp.loop_.round_trip_rate() - expected).abs() < 1e-6);
    }

    #[test]
    fn balanced_market_has_no_opportunities() {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        // Consistent pricing: 1:1 everywhere.
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_000.0), fee)
                .unwrap();
        }
        assert!(scan(&chain, 4).unwrap().is_empty());
    }

    #[test]
    fn opportunities_sorted_by_rate() {
        let mut chain = paper_chain();
        let fee = FeeRate::UNISWAP_V2;
        // A second, milder triangle over tokens 3,4,5.
        chain
            .add_pool(t(3), t(4), to_raw(1_000.0), to_raw(1_050.0), fee)
            .unwrap();
        chain
            .add_pool(t(4), t(5), to_raw(1_000.0), to_raw(1_000.0), fee)
            .unwrap();
        chain
            .add_pool(t(5), t(3), to_raw(1_000.0), to_raw(1_000.0), fee)
            .unwrap();
        let opportunities = scan(&chain, 3).unwrap();
        assert_eq!(opportunities.len(), 2);
        assert!(
            opportunities[0].loop_.round_trip_rate() >= opportunities[1].loop_.round_trip_rate()
        );
        assert_eq!(opportunities[0].cycle.tokens()[0], t(0));
    }
}
