//! An end-to-end arbitrage bot over the simulated chain.
//!
//! This crate closes the loop the paper describes: every block, scan DEX
//! state for arbitrage loops, evaluate the profit-maximization strategies,
//! and execute the best plan atomically via a flash bundle. It glues every
//! substrate together:
//!
//! ```text
//! dexsim state ──▶ arb-engine pipeline (graph → cycles → strategies)
//!      ▲                                            │
//!      └────────── flash bundle execution ◀─────────┘
//!                        (pnl ledger)
//! ```
//!
//! * [`scanner`] — chain state → token graph → engine discovery run;
//! * [`execution`] — engine opportunity → integer-exact flash bundle;
//! * [`bot`] — the per-block policy over ranked engine opportunities;
//! * [`journal`] — the durable mode: chain events journaled to disk,
//!   periodic fleet checkpoints, crash recovery via `arb-journal`;
//! * [`ingest_bot`] — the ingest-fronted mode: chain events *and* CEX
//!   price moves multiplexed, journaled, and coalesced via `arb-ingest`,
//!   with feed-free crash recovery;
//! * [`supervisor`] — panic supervision over the ingest-fronted mode:
//!   catch a mid-tick panic, dump the flight recorder, rebuild from the
//!   journal, retry, bounded by a recovery budget;
//! * [`pnl`] — balance accounting and monetized PnL series;
//! * [`sim`] — a deterministic market harness (noise traders + LPs + CEX
//!   price drift + the bot) used by examples, tests, and benches.
//!
//! # Quickstart
//!
//! ```
//! use arb_bot::sim::{MarketSim, MarketSimConfig};
//!
//! let mut sim = MarketSim::new(MarketSimConfig {
//!     num_tokens: 5,
//!     num_pools: 8,
//!     seed: 7,
//!     ..MarketSimConfig::default()
//! }).unwrap();
//! sim.run_blocks(20).unwrap();
//! // Flash-bundle atomicity makes the bot risk-free: token balances
//! // never decrease.
//! assert!(sim.bot_pnl().value() >= 0.0);
//! ```

pub mod bot;
pub mod config;
pub mod error;
pub mod execution;
pub mod ingest_bot;
pub mod journal;
pub mod obs;
pub mod pnl;
pub mod scanner;
pub mod sim;
pub mod supervisor;

pub use bot::{pipeline_for, ArbBot, BotAction, ServeTelemetry};
pub use config::{BotConfig, ScanMode, StrategyChoice};
pub use error::BotError;
pub use ingest_bot::IngestBot;
pub use journal::{JournalSettings, JournaledBot};
pub use obs::{ExportSink, ObsConfig};
pub use supervisor::SupervisedBot;
