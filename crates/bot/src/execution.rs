//! Strategy plan → integer-exact flash bundle.
//!
//! The strategies size trades in `f64` display units against the same pool
//! state the chain holds; this module converts a plan into raw-integer
//! [`BundleStep`]s. Two constructions:
//!
//! * [`chained_bundle`] — a MaxMax-style rotation: the start input is
//!   converted to raw units and every later hop consumes *exactly* the
//!   previous hop's integer output (guaranteed feasible);
//! * [`inputs_bundle`] — per-hop inputs (a convex plan's flows, or any
//!   engine sizing); inputs are floored into raw units, and the
//!   flash-loan settlement check enforces per-token solvency at
//!   execution time;
//! * [`opportunity_bundle`] — picks between the two shapes for an
//!   [`arb_engine::ArbitrageOpportunity`].
//!
//! Either way the bundle is atomic: if integer rounding or interleaved
//! transactions made it unprofitable, it reverts and costs nothing but gas.

use arb_convex::LoopPlan;
use arb_dexsim::chain::Chain;
use arb_dexsim::tx::BundleStep;
use arb_dexsim::units::to_raw;
use arb_engine::ArbitrageOpportunity;
use arb_graph::Cycle;

use crate::error::BotError;

/// Builds a bundle that enters the cycle at `rotation` with
/// `input_display` of that rotation's token and chains exact integer
/// outputs through the remaining hops.
///
/// # Errors
///
/// Returns [`BotError::Chain`] if a quote fails (degenerate pool state).
pub fn chained_bundle(
    chain: &Chain,
    cycle: &Cycle,
    rotation: usize,
    input_display: f64,
) -> Result<Vec<BundleStep>, BotError> {
    let n = cycle.len();
    let mut steps = Vec::with_capacity(n);
    let mut amount = to_raw(input_display);
    for k in 0..n {
        let j = (rotation + k) % n;
        let pool_id = cycle.pools()[j];
        let token_in = cycle.tokens()[j];
        let pool = chain.state().pool(pool_id)?;
        let a_to_b = token_in == pool.token_a();
        let out = pool.raw().quote(a_to_b, amount)?;
        steps.push(BundleStep {
            pool: pool_id,
            token_in,
            amount_in: amount,
        });
        amount = out;
    }
    Ok(steps)
}

/// Builds a bundle from per-hop display-unit inputs (floored to raw
/// units). Zero-input hops are skipped (an all-zero input vector produces
/// an empty bundle, which callers should not submit).
pub fn inputs_bundle(cycle: &Cycle, inputs: &[f64]) -> Vec<BundleStep> {
    cycle
        .tokens()
        .iter()
        .zip(cycle.pools())
        .zip(inputs)
        .filter_map(|((token_in, pool), &input)| {
            let amount_in = to_raw(input);
            (amount_in > 0).then_some(BundleStep {
                pool: *pool,
                token_in: *token_in,
                amount_in,
            })
        })
        .collect()
}

/// Builds a bundle from a convex plan's per-hop inputs.
pub fn plan_bundle(cycle: &Cycle, plan: &LoopPlan) -> Vec<BundleStep> {
    let inputs: Vec<f64> = plan.flows().iter().map(|f| f.amount_in).collect();
    inputs_bundle(cycle, &inputs)
}

/// Builds the execution bundle for an engine opportunity: single-entry
/// sizings (Traditional/MaxPrice/MaxMax) chain exact integer outputs from
/// the funded rotation, multi-entry sizings (ConvexOpt) fund each hop
/// independently under flash-loan settlement.
///
/// # Errors
///
/// Returns [`BotError::Chain`] if a chained quote fails (degenerate pool
/// state).
pub fn opportunity_bundle(
    chain: &Chain,
    opportunity: &ArbitrageOpportunity,
) -> Result<Vec<BundleStep>, BotError> {
    match opportunity.single_entry() {
        Some((rotation, input)) => chained_bundle(chain, &opportunity.cycle, rotation, input),
        None => Ok(inputs_bundle(
            &opportunity.cycle,
            &opportunity.optimal_inputs,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_convex::{LoopProblem, SolverOptions};
    use arb_dexsim::tx::Transaction;
    use arb_dexsim::units::to_raw;
    use arb_graph::TokenGraph;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_setup() -> (Chain, Cycle) {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        let graph = TokenGraph::new(
            chain
                .state()
                .pools()
                .iter()
                .map(|p| p.to_analysis_pool().unwrap())
                .collect(),
        )
        .unwrap();
        let cycle = graph.arbitrage_loops(3).unwrap().remove(0);
        (chain, cycle)
    }

    #[test]
    fn chained_bundle_executes_profitably() {
        let (mut chain, cycle) = paper_setup();
        let bot = chain.create_account();
        let steps = chained_bundle(&chain, &cycle, 0, 27.0).unwrap();
        assert_eq!(steps.len(), 3);
        chain.submit(Transaction::FlashBundle {
            account: bot,
            steps,
        });
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let profit = chain.state().balance(bot, t(0));
        assert!(profit > to_raw(16.0), "profit={profit}");
    }

    #[test]
    fn rotation_changes_entry_token() {
        let (chain, cycle) = paper_setup();
        let steps = chained_bundle(&chain, &cycle, 1, 31.5).unwrap();
        assert_eq!(steps[0].token_in, cycle.tokens()[1]);
    }

    #[test]
    fn plan_bundle_executes_convex_flows() {
        let (mut chain, cycle) = paper_setup();
        let graph = TokenGraph::new(
            chain
                .state()
                .pools()
                .iter()
                .map(|p| p.to_analysis_pool().unwrap())
                .collect(),
        )
        .unwrap();
        let hops = graph.curves_for(&cycle).unwrap();
        let problem = LoopProblem::new(hops, vec![2.0, 10.2, 20.0]).unwrap();
        let plan = problem.solve(&SolverOptions::default()).unwrap();
        let steps = plan_bundle(&cycle, &plan);
        assert_eq!(steps.len(), 3);

        let bot = chain.create_account();
        chain.submit(Transaction::FlashBundle {
            account: bot,
            steps,
        });
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        // Paper's convex plan: profit ≈ 5 Y + 7.7 Z, none negative.
        let y = chain.state().balance(bot, t(1));
        let z = chain.state().balance(bot, t(2));
        assert!(y > to_raw(4.5) && y < to_raw(5.5), "y={y}");
        assert!(z > to_raw(7.2) && z < to_raw(8.2), "z={z}");
    }

    #[test]
    fn zero_plan_produces_empty_bundle() {
        let (_, cycle) = paper_setup();
        let plan = LoopPlan::zero(&[1.0, 1.0, 1.0]);
        assert!(plan_bundle(&cycle, &plan).is_empty());
    }
}
