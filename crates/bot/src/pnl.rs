//! PnL accounting for the bot account.

use std::collections::BTreeMap;

use arb_amm::token::TokenId;
use arb_cex::feed::PriceFeed;
use arb_core::monetize::Usd;
use arb_dexsim::chain::Chain;
use arb_dexsim::state::AccountId;
use arb_dexsim::units::to_display;

/// One PnL observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PnlPoint {
    /// Block height at observation time.
    pub height: u64,
    /// Monetized value of all holdings.
    pub value: Usd,
}

/// Tracks an account's holdings over time and monetizes them.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    history: Vec<PnlPoint>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current holdings of `account` across the tokens `universe`,
    /// in display units (only nonzero entries).
    pub fn holdings(
        chain: &Chain,
        account: AccountId,
        universe: impl IntoIterator<Item = TokenId>,
    ) -> BTreeMap<TokenId, f64> {
        universe
            .into_iter()
            .filter_map(|t| {
                let raw = chain.state().balance(account, t);
                (raw > 0).then(|| (t, to_display(raw)))
            })
            .collect()
    }

    /// Records a PnL observation for `account`, monetizing holdings at the
    /// feed's current prices (unpriced tokens count zero — conservative).
    pub fn observe<F: PriceFeed>(
        &mut self,
        chain: &Chain,
        account: AccountId,
        universe: impl IntoIterator<Item = TokenId>,
        feed: &F,
    ) -> PnlPoint {
        let value: f64 = Self::holdings(chain, account, universe)
            .iter()
            .map(|(t, amount)| amount * feed.usd_price(*t).unwrap_or(0.0))
            .sum();
        let point = PnlPoint {
            height: chain.height(),
            value: Usd::new(value),
        };
        self.history.push(point);
        point
    }

    /// The full observation series.
    pub fn history(&self) -> &[PnlPoint] {
        &self.history
    }

    /// The latest observation (None before the first).
    pub fn latest(&self) -> Option<PnlPoint> {
        self.history.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn observes_monetized_holdings() {
        let mut chain = Chain::new();
        chain
            .add_pool(t(0), t(1), to_raw(10.0), to_raw(10.0), FeeRate::UNISWAP_V2)
            .unwrap();
        let account = chain.create_account();
        chain.mint(account, t(0), to_raw(3.0));
        chain.mint(account, t(1), to_raw(1.0));

        let mut feed = PriceTable::new();
        feed.set(t(0), 10.0);
        feed.set(t(1), 100.0);

        let mut ledger = Ledger::new();
        let point = ledger.observe(&chain, account, [t(0), t(1)], &feed);
        assert!((point.value.value() - 130.0).abs() < 1e-6);
        assert_eq!(ledger.history().len(), 1);
        assert_eq!(ledger.latest(), Some(point));
    }

    #[test]
    fn unpriced_tokens_count_zero() {
        let mut chain = Chain::new();
        chain
            .add_pool(t(0), t(1), to_raw(10.0), to_raw(10.0), FeeRate::UNISWAP_V2)
            .unwrap();
        let account = chain.create_account();
        chain.mint(account, t(0), to_raw(5.0));
        let feed = PriceTable::new(); // empty
        let mut ledger = Ledger::new();
        let point = ledger.observe(&chain, account, [t(0)], &feed);
        assert_eq!(point.value.value(), 0.0);
    }

    #[test]
    fn holdings_skip_zero_balances() {
        let mut chain = Chain::new();
        chain
            .add_pool(t(0), t(1), to_raw(10.0), to_raw(10.0), FeeRate::UNISWAP_V2)
            .unwrap();
        let account = chain.create_account();
        chain.mint(account, t(1), to_raw(2.0));
        let holdings = Ledger::holdings(&chain, account, [t(0), t(1)]);
        assert_eq!(holdings.len(), 1);
        assert!((holdings[&t(1)] - 2.0).abs() < 1e-9);
    }
}
