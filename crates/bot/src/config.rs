//! Bot configuration.

use arb_convex::SolverOptions;
use arb_core::traditional::Method;

/// Which strategy the bot uses to size its trades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// MaxMax: fast per-rotation closed forms (default — the paper's
    /// timing discussion favors it within one block interval).
    #[default]
    MaxMax,
    /// ConvexOptimization: highest theoretical profit, slower.
    Convex,
}

/// How the bot keeps its market view current between blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Event-driven (default): the bot subscribes to the chain's event
    /// stream, applies reserve deltas to a persistent graph + cycle
    /// index, and re-evaluates only the cycles each block touched. The
    /// first step (and any stream desync) falls back to a full batch
    /// scan and re-synchronizes.
    #[default]
    Streaming,
    /// Event-driven across a fleet: the pool universe is partitioned
    /// along connected components into [`BotConfig::shards`] shards, one
    /// streaming engine each on a worker pool, with per-shard rankings
    /// merged into the same global order streaming mode produces.
    /// Fallback behavior matches [`ScanMode::Streaming`].
    Sharded,
    /// Rebuild the graph and re-enumerate every cycle from chain state
    /// on every step — the original full-rescan behavior.
    Batch,
}

/// Bot tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct BotConfig {
    /// Scan loop flavor: incremental event-driven or full per-block
    /// rescan.
    pub mode: ScanMode,
    /// Longest loop length scanned (the paper studies 3 and 4).
    pub max_loop_len: usize,
    /// Ignore opportunities below this monetized profit (gas floor).
    pub min_profit_usd: f64,
    /// Strategy used for sizing.
    pub strategy: StrategyChoice,
    /// 1-D optimizer for MaxMax.
    pub method: Method,
    /// Solver options for Convex.
    pub convex: SolverOptions,
    /// Parallel loop evaluation: values > 1 enable the engine's parallel
    /// evaluation stage (which uses all available cores); 1 forces the
    /// serial path. The exact value is not a thread-count bound.
    pub workers: usize,
    /// Shard-count cap for [`ScanMode::Sharded`] (the realized count is
    /// bounded by the universe's connected components). Ignored in the
    /// other modes.
    pub shards: usize,
}

impl Default for BotConfig {
    fn default() -> Self {
        BotConfig {
            mode: ScanMode::Streaming,
            max_loop_len: 3,
            min_profit_usd: 1.0,
            strategy: StrategyChoice::MaxMax,
            method: Method::ClosedForm,
            convex: SolverOptions::default(),
            workers: 4,
            shards: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BotConfig::default();
        assert_eq!(c.mode, ScanMode::Streaming);
        assert_eq!(c.max_loop_len, 3);
        assert!(c.min_profit_usd > 0.0);
        assert_eq!(c.strategy, StrategyChoice::MaxMax);
        assert!(c.workers >= 1);
        assert!(c.shards >= 1);
    }
}
