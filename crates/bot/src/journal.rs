//! The bot's journaled mode: durable market view, periodic checkpoints,
//! crash recovery.
//!
//! [`JournaledBot`] wraps the sharded scan loop with the `arb-journal`
//! durability stack:
//!
//! * on [`JournaledBot::attach`], the chain's event history is backfilled
//!   into the journal and a `JournalWriter` is installed as the chain's
//!   [`arb_dexsim::chain::EventSink`] — every event the chain emits from
//!   then on is framed, checksummed, and fsynced per block;
//! * every [`JournaledBot::step`] drains new events into the runtime and,
//!   every [`JournalSettings::checkpoint_every_events`] events, writes an
//!   atomic snapshot of the fleet tied to the journal offset, prunes old
//!   snapshots, and compacts fully-snapshotted segments;
//! * after a crash, [`JournaledBot::recover`] rebuilds the fleet from the
//!   newest valid snapshot plus the journal suffix — instead of the cold
//!   full rescan batch mode would pay — and reports what it did as a
//!   [`RecoveryStats`] one-liner.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use arb_cex::feed::PriceFeed;
use arb_dexsim::chain::{Chain, EventCursor};
use arb_dexsim::state::AccountId;
use arb_dexsim::tx::Transaction;
use arb_engine::{RuntimeStats, ShardedRuntime};
use arb_journal::{
    JournalConfig, JournalError, JournalWriter, Recovery, RecoveryStats, SnapshotStore,
};

use crate::bot::{pipeline_for, BotAction};
use crate::config::BotConfig;
use crate::error::BotError;
use crate::execution;
use crate::scanner;

/// Durability tuning for [`JournaledBot`].
#[derive(Debug, Clone)]
pub struct JournalSettings {
    /// Directory holding segments and snapshots.
    pub dir: PathBuf,
    /// Take a checkpoint after this many applied events.
    pub checkpoint_every_events: usize,
    /// Segment roll threshold ([`JournalConfig::segment_max_bytes`]).
    pub segment_max_bytes: u64,
    /// Snapshots retained after each checkpoint (older ones are pruned).
    pub keep_snapshots: usize,
}

impl JournalSettings {
    /// Settings with production-shaped defaults: checkpoint every 256
    /// events, 256 KiB segments, 2 retained snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalSettings {
            dir: dir.into(),
            checkpoint_every_events: 256,
            segment_max_bytes: 256 * 1024,
            keep_snapshots: 2,
        }
    }

    fn journal_config(&self) -> JournalConfig {
        JournalConfig {
            segment_max_bytes: self.segment_max_bytes,
            sync_on_commit: true,
        }
    }
}

/// An arbitrage bot whose market view survives restarts. See the module
/// docs for the lifecycle; the scan/execute policy matches
/// [`crate::ArbBot`] in [`crate::ScanMode::Sharded`].
#[derive(Debug)]
pub struct JournaledBot {
    account: AccountId,
    config: BotConfig,
    settings: JournalSettings,
    runtime: ShardedRuntime,
    cursor: EventCursor,
    /// Shared with the chain's sink: the chain records + commits per
    /// block, the bot checkpoints and compacts.
    writer: Arc<Mutex<JournalWriter>>,
    store: SnapshotStore,
    events_since_checkpoint: usize,
    checkpoints_taken: usize,
    recovery: Option<RecoveryStats>,
}

impl JournaledBot {
    /// Starts a journaled bot on a live chain: backfills the chain's
    /// event history into the journal (so recovery can always reach
    /// genesis), installs the journal as the chain's event sink, and
    /// builds the sharded runtime from current chain state.
    ///
    /// # Errors
    ///
    /// Forwards journal I/O failures ([`BotError::Journal`]) and graph /
    /// engine construction failures.
    pub fn attach(
        chain: &mut Chain,
        config: BotConfig,
        settings: JournalSettings,
    ) -> Result<Self, BotError> {
        let mut writer = JournalWriter::open(&settings.dir, settings.journal_config())
            .map_err(JournalError::from)?;
        backfill(&mut writer, chain)?;

        let graph = scanner::graph_from_chain(chain)?;
        let runtime = ShardedRuntime::with_graph(pipeline_for(&config), graph, config.shards)?;
        let store = SnapshotStore::new(&settings.dir)?;
        let cursor = chain.subscribe();
        let writer = Arc::new(Mutex::new(writer));
        chain.attach_sink(writer.clone());
        Ok(JournaledBot {
            account: chain.create_account(),
            config,
            settings,
            runtime,
            cursor,
            writer,
            store,
            events_since_checkpoint: 0,
            checkpoints_taken: 0,
            recovery: None,
        })
    }

    /// Rebuilds a journaled bot after a crash: heals the journal tail,
    /// backfills any events the chain emitted while the bot was down,
    /// restores the newest valid snapshot, replays the suffix, and
    /// re-attaches the sink. [`JournaledBot::recovery_stats`] reports
    /// what happened — print it, it is the operator's recovery line.
    ///
    /// # Errors
    ///
    /// See [`JournaledBot::attach`]; additionally fails when recovery
    /// cannot bootstrap (no snapshot and no genesis `PoolCreated`
    /// prefix).
    pub fn recover<F: PriceFeed + Sync>(
        chain: &mut Chain,
        feed: &F,
        config: BotConfig,
        settings: JournalSettings,
    ) -> Result<Self, BotError> {
        Self::recover_impl(chain, feed, config, settings, None)
    }

    /// [`JournaledBot::recover`], resuming the pre-crash bot's `account`
    /// instead of registering a fresh one — so the profits the dead
    /// process banked keep accruing to the same balance sheet. The
    /// account id is chain state, not journal state; persist it however
    /// the deployment persists its other operator config.
    ///
    /// # Errors
    ///
    /// See [`JournaledBot::recover`].
    pub fn recover_as<F: PriceFeed + Sync>(
        chain: &mut Chain,
        feed: &F,
        config: BotConfig,
        settings: JournalSettings,
        account: AccountId,
    ) -> Result<Self, BotError> {
        Self::recover_impl(chain, feed, config, settings, Some(account))
    }

    fn recover_impl<F: PriceFeed + Sync>(
        chain: &mut Chain,
        feed: &F,
        config: BotConfig,
        settings: JournalSettings,
        account: Option<AccountId>,
    ) -> Result<Self, BotError> {
        let mut writer = JournalWriter::open(&settings.dir, settings.journal_config())
            .map_err(JournalError::from)?;
        backfill(&mut writer, chain)?;

        let recovered =
            Recovery::new(&settings.dir, pipeline_for(&config), config.shards).recover(feed)?;
        let store = SnapshotStore::new(&settings.dir)?;
        let cursor = EventCursor::at(recovered.stats.journal_tail as usize);
        let writer = Arc::new(Mutex::new(writer));
        chain.attach_sink(writer.clone());
        Ok(JournaledBot {
            account: account.unwrap_or_else(|| chain.create_account()),
            config,
            settings,
            runtime: recovered.runtime,
            cursor,
            writer,
            store,
            events_since_checkpoint: 0,
            checkpoints_taken: 0,
            recovery: Some(recovered.stats),
        })
    }

    /// The bot's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// The configuration.
    pub fn config(&self) -> &BotConfig {
        &self.config
    }

    /// The journal directory.
    pub fn journal_dir(&self) -> &Path {
        &self.settings.dir
    }

    /// How the last [`JournaledBot::recover`] went (`None` for a bot
    /// started via [`JournaledBot::attach`]).
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Cumulative sharded-runtime counters.
    pub fn runtime_stats(&self) -> &RuntimeStats {
        self.runtime.stats()
    }

    /// Checkpoints written since this process started.
    pub fn checkpoints_taken(&self) -> usize {
        self.checkpoints_taken
    }

    /// One decision step: drain new chain events (already journaled by
    /// the sink; the commit here only surfaces deferred write errors),
    /// apply them to the fleet, checkpoint if due, and submit a flash
    /// bundle for the best executable opportunity.
    ///
    /// # Errors
    ///
    /// Fails on journal write errors, engine failures, or bundle
    /// construction failures — not on unprofitable markets
    /// ([`BotAction::Idle`]).
    pub fn step<F: PriceFeed + Sync>(
        &mut self,
        chain: &mut Chain,
        feed: &F,
    ) -> Result<BotAction, BotError> {
        let events = chain.drain_events(&mut self.cursor);
        self.writer
            .lock()
            .expect("journal writer poisoned")
            .commit()
            .map_err(JournalError::from)?;
        let report = self.runtime.apply_events(&events, feed)?;
        self.events_since_checkpoint += events.len();
        if self.events_since_checkpoint >= self.settings.checkpoint_every_events {
            self.checkpoint()?;
        }

        for opportunity in &report.opportunities {
            let steps = execution::opportunity_bundle(chain, opportunity)?;
            if steps.len() < opportunity.cycle.len() {
                // Rounding collapsed a hop; try the next-ranked loop.
                continue;
            }
            let expected = opportunity.gross_profit;
            let hops = steps.len();
            chain.submit(Transaction::FlashBundle {
                account: self.account,
                steps,
            });
            return Ok(BotAction::Submitted { expected, hops });
        }
        Ok(BotAction::Idle)
    }

    /// Writes a snapshot of the fleet at the bot's applied offset, prunes
    /// old snapshots, and compacts journal segments below the **oldest
    /// retained** snapshot — every kept snapshot stays replayable, so if
    /// the newest one rots on disk, recovery can genuinely fall back to
    /// its predecessor. Called automatically by [`JournaledBot::step`];
    /// public for shutdown hooks that want one final checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`BotError::Journal`] on snapshot or compaction failures.
    pub fn checkpoint(&mut self) -> Result<(), BotError> {
        let offset = self.cursor.position() as u64;
        self.store.write(offset, &self.runtime.checkpoint())?;
        self.store.prune(self.settings.keep_snapshots)?;
        if let Some(oldest_retained) = self.store.list()?.first().map(|(offset, _)| *offset) {
            self.writer
                .lock()
                .expect("journal writer poisoned")
                .compact_below(oldest_retained)
                .map_err(JournalError::from)?;
        }
        self.checkpoints_taken += 1;
        self.events_since_checkpoint = 0;
        Ok(())
    }
}

/// Appends every chain event the journal does not yet hold, so journal
/// offsets and chain sequence numbers stay the same coordinate space.
fn backfill(writer: &mut JournalWriter, chain: &Chain) -> Result<(), BotError> {
    let log = chain.event_log();
    let from = writer.next_offset() as usize;
    if from > log.len() {
        return Err(BotError::Journal(JournalError::Corrupt(format!(
            "journal tail {} is ahead of the chain log ({} events) — wrong directory?",
            from,
            log.len()
        ))));
    }
    for event in log.decode_from(from) {
        writer.append(&event);
    }
    writer.commit().map_err(JournalError::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;
    use std::fs;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("arbloops-jbot-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    fn settings(scratch: &Scratch, checkpoint_every: usize) -> JournalSettings {
        JournalSettings {
            checkpoint_every_events: checkpoint_every,
            ..JournalSettings::new(&scratch.0)
        }
    }

    /// Drives whale-perturbed blocks (sized by their global block index,
    /// so a split run perturbs exactly like a continuous one) through a
    /// stepper, mining the bot's submissions, and returns the decision
    /// trace.
    fn drive<S: FnMut(&mut Chain) -> BotAction>(
        chain: &mut Chain,
        whale: AccountId,
        blocks: std::ops::Range<usize>,
        mut stepper: S,
    ) -> Vec<Option<(u64, usize)>> {
        blocks
            .map(|i| {
                chain.submit(Transaction::Swap {
                    account: whale,
                    pool: arb_amm::pool::PoolId::new(0),
                    token_in: t(0),
                    amount_in: to_raw(2.0 + i as f64),
                    min_out: 0,
                });
                chain.mine_block();
                let action = stepper(chain);
                chain.mine_block();
                match action {
                    BotAction::Idle => None,
                    BotAction::Submitted { expected, hops } => {
                        Some((expected.value().to_bits(), hops))
                    }
                }
            })
            .collect()
    }

    #[test]
    fn journaled_bot_survives_a_crash_and_keeps_deciding_identically() {
        let scratch = Scratch::new("crash");
        let feed = paper_feed();

        // The never-crashed oracle: one bot across all 8 blocks.
        let mut oracle_chain = paper_chain();
        let whale = oracle_chain.create_account();
        oracle_chain.mint(whale, t(0), to_raw(1_000.0));
        let oracle_scratch = Scratch::new("crash-oracle");
        let mut oracle = JournaledBot::attach(
            &mut oracle_chain,
            BotConfig::default(),
            settings(&oracle_scratch, 4),
        )
        .unwrap();
        let oracle_actions = drive(&mut oracle_chain, whale, 0..8, |chain| {
            oracle.step(chain, &feed).unwrap()
        });

        // The crashing run: same chain history, bot dies after block 4.
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot =
            JournaledBot::attach(&mut chain, BotConfig::default(), settings(&scratch, 4)).unwrap();
        assert!(bot.recovery_stats().is_none());
        let mut first_half = drive(&mut chain, whale, 0..4, |chain| {
            bot.step(chain, &feed).unwrap()
        });
        assert!(bot.checkpoints_taken() > 0, "checkpoints were due");
        let pre_crash_account = bot.account();
        drop(bot); // 💥 the chain keeps its sink and keeps journaling

        let mut bot = JournaledBot::recover_as(
            &mut chain,
            &feed,
            BotConfig::default(),
            settings(&scratch, 4),
            pre_crash_account,
        )
        .unwrap();
        assert_eq!(
            bot.account(),
            pre_crash_account,
            "recovery resumes the balance sheet, not a fresh account"
        );
        let stats = *bot.recovery_stats().expect("recovered");
        assert!(stats.snapshot_offset.is_some(), "{stats}");
        assert!(
            stats.events_replayed < stats.journal_tail as usize,
            "snapshot recovery must replay strictly fewer events than \
             genesis: {stats}"
        );
        let line = stats.to_string();
        assert!(line.contains("snapshot@"), "{line}");
        assert!(line.contains("events replayed"), "{line}");
        assert!(!line.contains('\n'), "one-liner style: {line}");

        let second_half = drive(&mut chain, whale, 4..8, |chain| {
            bot.step(chain, &feed).unwrap()
        });
        first_half.extend(second_half);
        assert_eq!(
            first_half, oracle_actions,
            "crash + recovery must not change a single decision"
        );
        assert!(
            first_half.iter().any(Option::is_some),
            "perturbations should open executable opportunities"
        );
        assert_eq!(chain.state().digest(), oracle_chain.state().digest());
    }

    #[test]
    fn checkpoints_compact_the_journal() {
        let scratch = Scratch::new("compact");
        let feed = paper_feed();
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = JournaledBot::attach(
            &mut chain,
            BotConfig::default(),
            JournalSettings {
                checkpoint_every_events: 2,
                segment_max_bytes: 64, // force frequent segment rolls
                keep_snapshots: 2,
                ..JournalSettings::new(&scratch.0)
            },
        )
        .unwrap();
        drive(&mut chain, whale, 0..6, |chain| {
            bot.step(chain, &feed).unwrap()
        });
        assert!(bot.checkpoints_taken() >= 2);

        let snapshots = fs::read_dir(&scratch.0)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("snapshot-")
            })
            .count();
        assert!(
            snapshots <= 2,
            "pruning keeps the newest 2, saw {snapshots}"
        );

        // Compaction dropped segments below the *oldest retained*
        // snapshot — nothing below what any kept snapshot needs.
        let reader = arb_journal::JournalReader::open(&scratch.0).unwrap();
        assert!(
            reader.base_offset() > 0,
            "fully-snapshotted segments should be gone"
        );
        let oldest_retained = SnapshotStore::new(&scratch.0)
            .unwrap()
            .list()
            .unwrap()
            .first()
            .map(|(offset, _)| *offset)
            .expect("snapshots retained");
        assert!(
            reader.base_offset() <= oldest_retained,
            "compaction must not strand a retained snapshot (base {} > \
             oldest snapshot {oldest_retained})",
            reader.base_offset()
        );
        // And recovery still works over the compacted journal…
        let recovered = Recovery::new(&scratch.0, pipeline_for(&BotConfig::default()), 4)
            .recover(&feed)
            .unwrap();
        let newest = recovered.stats.snapshot_offset.expect("snapshot used");
        // …including when the newest snapshot rots: the retained older
        // one must be genuinely usable, not stranded past compaction.
        fs::remove_file(scratch.0.join(format!("snapshot-{newest:020}.ckpt"))).unwrap();
        let fallback = Recovery::new(&scratch.0, pipeline_for(&BotConfig::default()), 4)
            .recover(&feed)
            .unwrap();
        assert_eq!(fallback.stats.snapshot_offset, Some(oldest_retained));
    }

    #[test]
    fn attach_rejects_a_foreign_longer_journal() {
        let scratch = Scratch::new("foreign");
        let feed = paper_feed();
        // Journal a long history…
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot =
            JournaledBot::attach(&mut chain, BotConfig::default(), settings(&scratch, 100))
                .unwrap();
        drive(&mut chain, whale, 0..3, |chain| {
            bot.step(chain, &feed).unwrap()
        });
        drop(bot);
        // …then attach a *fresh* chain to the same directory: the journal
        // is ahead of the chain log, which is a mis-wiring, not a state
        // to silently adopt.
        let mut fresh = paper_chain();
        let err = JournaledBot::attach(&mut fresh, BotConfig::default(), settings(&scratch, 100))
            .unwrap_err();
        assert!(matches!(err, BotError::Journal(_)), "{err:?}");
        assert!(err.to_string().contains("ahead of the chain log"), "{err}");
    }
}
