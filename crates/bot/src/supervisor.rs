//! Panic supervision for the ingest-fronted bot: catch a mid-tick
//! panic, dump the flight recorder, rebuild from the journal, and
//! retry the same step — bounded by a recovery budget.
//!
//! [`SupervisedBot`] is the last layer of the graceful-degradation
//! story. The layers below it already turn *partial* failures into
//! degraded-but-correct operation (source health quarantine, journal
//! write retry with append-side buffering, checkpoint deferral); what
//! remains is the failure that kills the tick itself — a panic inside a
//! shard worker. The supervisor turns that into a bounded outage:
//!
//! 1. the panic is caught at the step boundary ([`std::panic::catch_unwind`]);
//! 2. the flight recorder (when observability is on) is dumped next to
//!    the journal, so the post-mortem trail survives even though the
//!    process does not die;
//! 3. the bot is rebuilt via [`IngestBot::recover_as`] — same account,
//!    same journal directory — which replays the durable stream into a
//!    fresh fleet;
//! 4. the step that panicked is retried. Retrying is safe: the step's
//!    events were sealed and journaled *before* application, so the
//!    rebuilt runtime already contains them; the retry re-offers only
//!    the caller's feed moves, which are absolute prices (idempotent),
//!    and drains no new chain events (the recovered cursor sits at the
//!    journal tail).
//!
//! Budget exhaustion surfaces as [`BotError::RecoveryExhausted`]: a
//! fault that reproduces on every retry is a genuine bug, not weather,
//! and retrying forever would hide it.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::chain::Chain;
use arb_dexsim::state::AccountId;
use arb_engine::TickHook;
use arb_ingest::{IngestConfig, IngestStats};

use crate::bot::BotAction;
use crate::config::BotConfig;
use crate::error::BotError;
use crate::ingest_bot::IngestBot;
use crate::journal::JournalSettings;
use crate::obs::ObsConfig;

/// An [`IngestBot`] wrapped in a panic supervisor. See the module docs
/// for the recovery protocol.
#[derive(Debug)]
pub struct SupervisedBot {
    bot: IngestBot,
    config: BotConfig,
    settings: JournalSettings,
    ingest: IngestConfig,
    obs_config: Option<ObsConfig>,
    tick_hook: Option<Arc<dyn TickHook>>,
    max_recoveries: u32,
    recoveries: u32,
}

impl SupervisedBot {
    /// Starts a supervised ingest-fronted bot on a live chain (see
    /// [`IngestBot::attach`] for the journal-directory contract). Up to
    /// `max_recoveries` panicked steps will be recovered over the bot's
    /// lifetime; the next one past the budget returns
    /// [`BotError::RecoveryExhausted`].
    ///
    /// # Errors
    ///
    /// See [`IngestBot::attach`].
    pub fn attach(
        chain: &mut Chain,
        feed: &PriceTable,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
        max_recoveries: u32,
    ) -> Result<Self, BotError> {
        let bot = IngestBot::attach(chain, feed, config, settings.clone(), ingest)?;
        Ok(SupervisedBot {
            bot,
            config,
            settings,
            ingest,
            obs_config: None,
            tick_hook: None,
            max_recoveries,
            recoveries: 0,
        })
    }

    /// Resumes a supervised bot from an existing journal directory —
    /// [`IngestBot::recover`] under the same supervision contract as
    /// [`SupervisedBot::attach`].
    ///
    /// # Errors
    ///
    /// See [`IngestBot::recover`].
    pub fn recover(
        chain: &mut Chain,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
        max_recoveries: u32,
    ) -> Result<Self, BotError> {
        let bot = IngestBot::recover(chain, config, settings.clone(), ingest)?;
        Ok(SupervisedBot {
            bot,
            config,
            settings,
            ingest,
            obs_config: None,
            tick_hook: None,
            max_recoveries,
            recoveries: 0,
        })
    }

    /// One supervised decision step. Delegates to [`IngestBot::step`];
    /// a panic anywhere inside it triggers the recovery protocol and a
    /// retry of this same step.
    ///
    /// # Errors
    ///
    /// Everything [`IngestBot::step`] returns, plus
    /// [`BotError::RecoveryExhausted`] when a panic lands after the
    /// recovery budget is spent, and recovery's own errors when the
    /// rebuild itself fails.
    pub fn step(
        &mut self,
        chain: &mut Chain,
        feed_moves: &[(TokenId, f64)],
    ) -> Result<BotAction, BotError> {
        loop {
            let attempt =
                panic::catch_unwind(AssertUnwindSafe(|| self.bot.step(chain, feed_moves)));
            match attempt {
                Ok(result) => return result,
                Err(_) => {
                    if self.recoveries >= self.max_recoveries {
                        return Err(BotError::RecoveryExhausted {
                            recoveries: self.recoveries,
                        });
                    }
                    self.recoveries += 1;
                    self.restart(chain)?;
                }
            }
        }
    }

    /// The recovery protocol: dump the flight trail, rebuild the bot
    /// from the journal under the pre-crash account, re-wire
    /// observability and the tick hook (neither survives the rebuild).
    fn restart(&mut self, chain: &mut Chain) -> Result<(), BotError> {
        // The obs panic hook (when installed) already dumped at panic
        // time; dump again explicitly so the trail exists even when the
        // global hook was replaced by the embedding application.
        if let Some(obs) = self.bot.obs() {
            let _ = obs.dump_flight_to(&self.settings.dir.join(arb_obs::FLIGHT_DUMP_FILE));
        }
        let account = self.bot.account();
        self.bot = IngestBot::recover_as(
            chain,
            self.config,
            self.settings.clone(),
            self.ingest,
            account,
        )?;
        if let Some(obs_config) = &self.obs_config {
            self.bot.enable_observability(obs_config.clone());
        }
        if let Some(obs) = self.bot.obs() {
            obs.registry().counter("bot.recoveries").inc();
            obs.registry()
                .gauge("bot.recoveries.total")
                .set(f64::from(self.recoveries));
        }
        if let Some(hook) = &self.tick_hook {
            self.bot.set_tick_hook(Arc::clone(hook));
        }
        Ok(())
    }

    /// Turns on observability (see [`IngestBot::enable_observability`])
    /// and remembers the config so every post-recovery rebuild is
    /// re-instrumented. After a recovery the registry is fresh; the
    /// cumulative recovery count is republished as the
    /// `bot.recoveries.total` gauge.
    pub fn enable_observability(&mut self, config: ObsConfig) {
        self.obs_config = Some(config.clone());
        self.bot.enable_observability(config);
    }

    /// Installs a tick hook on the underlying runtime and re-installs
    /// it after every supervised recovery — the seam chaos tests use to
    /// inject shard-level faults into a live, supervised bot.
    pub fn set_tick_hook(&mut self, hook: Arc<dyn TickHook>) {
        self.tick_hook = Some(Arc::clone(&hook));
        self.bot.set_tick_hook(hook);
    }

    /// Supervised recoveries performed so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// The recovery budget.
    pub fn max_recoveries(&self) -> u32 {
        self.max_recoveries
    }

    /// The bot's account (stable across recoveries).
    pub fn account(&self) -> AccountId {
        self.bot.account()
    }

    /// Front-end counters of the current underlying bot.
    pub fn ingest_stats(&self) -> IngestStats {
        self.bot.ingest_stats()
    }

    /// The supervised bot, for read-side queries (feed view, metrics,
    /// recovery stats).
    pub fn bot(&self) -> &IngestBot {
        &self.bot
    }

    /// Forces a checkpoint on the underlying bot (see
    /// [`IngestBot::checkpoint`] — deferred while the journal has an
    /// undurable backlog).
    ///
    /// # Errors
    ///
    /// See [`IngestBot::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), BotError> {
        self.bot.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::PoolId;
    use arb_chaos::{ChaosInjector, ChaosTickHook, FaultKind, FaultPlan};
    use arb_dexsim::tx::Transaction;
    use arb_dexsim::units::to_raw;
    use std::fs;
    use std::path::PathBuf;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("arbloops-sup-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    fn settings(scratch: &Scratch) -> JournalSettings {
        JournalSettings {
            checkpoint_every_events: 4,
            ..JournalSettings::new(&scratch.0)
        }
    }

    /// A plan with one mid-tick panic per shard-0 window tick; the tick
    /// axis here is the runtime's batch counter (one per sealed block).
    fn panic_plan(ticks: std::ops::Range<u64>) -> FaultPlan {
        FaultPlan::new(42).with_window(
            arb_chaos::site::shard(0),
            ticks,
            FaultKind::PanicTick,
            1_000_000,
        )
    }

    fn moves_for(block: usize) -> Vec<(TokenId, f64)> {
        vec![(t(1), 10.2 + 0.05 * block as f64)]
    }

    /// Drives whale-perturbed blocks through a stepper, mining the
    /// bot's submissions, and returns the decision trace.
    fn drive<S: FnMut(&mut Chain, &[(TokenId, f64)]) -> BotAction>(
        chain: &mut Chain,
        whale: AccountId,
        blocks: std::ops::Range<usize>,
        mut stepper: S,
    ) -> Vec<Option<(u64, usize)>> {
        blocks
            .map(|i| {
                chain.submit(Transaction::Swap {
                    account: whale,
                    pool: PoolId::new(0),
                    token_in: t(0),
                    amount_in: to_raw(2.0 + i as f64),
                    min_out: 0,
                });
                chain.mine_block();
                let action = stepper(chain, &moves_for(i));
                chain.mine_block();
                match action {
                    BotAction::Idle => None,
                    BotAction::Submitted { expected, hops } => {
                        Some((expected.value().to_bits(), hops))
                    }
                }
            })
            .collect()
    }

    #[test]
    fn supervised_bot_survives_injected_panics_and_decides_identically() {
        // Oracle: a plain bot over the same blocks, never faulted.
        let mut oracle_chain = paper_chain();
        let whale = oracle_chain.create_account();
        oracle_chain.mint(whale, t(0), to_raw(1_000.0));
        let oracle_scratch = Scratch::new("panic-oracle");
        let mut oracle = IngestBot::attach(
            &mut oracle_chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&oracle_scratch),
            IngestConfig::default(),
        )
        .unwrap();
        let oracle_actions = drive(&mut oracle_chain, whale, 0..8, |chain, moves| {
            oracle.step(chain, moves).unwrap()
        });

        // Supervised run: identical market, one injected mid-tick panic.
        let scratch = Scratch::new("panic");
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = SupervisedBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch),
            IngestConfig::default(),
            4,
        )
        .unwrap();
        bot.enable_observability(ObsConfig::default());
        let injector = Arc::new(ChaosInjector::new(panic_plan(2..3)));
        bot.set_tick_hook(Arc::new(ChaosTickHook::new(Arc::clone(&injector))));

        let actions = drive(&mut chain, whale, 0..8, |chain, moves| {
            bot.step(chain, moves).unwrap()
        });

        assert!(
            bot.recoveries() >= 1,
            "the panic window must force a supervised recovery"
        );
        assert_eq!(injector.injected(), bot.recoveries() as usize);
        assert_eq!(
            actions, oracle_actions,
            "a supervised panic + journal rebuild must not change a single decision"
        );
        assert!(
            actions.iter().any(Option::is_some),
            "perturbations should open executable opportunities"
        );
        assert_eq!(chain.state().digest(), oracle_chain.state().digest());
        assert!(
            scratch.0.join(arb_obs::FLIGHT_DUMP_FILE).is_file(),
            "recovery leaves the flight-recorder dump next to the journal"
        );
        let snapshot = bot.bot().obs().expect("obs re-enabled").snapshot();
        assert_eq!(snapshot.counter("bot.recoveries"), Some(1));
    }

    #[test]
    fn recovery_budget_exhaustion_surfaces_as_a_typed_error() {
        let scratch = Scratch::new("budget");
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = SupervisedBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch),
            IngestConfig::default(),
            0, // no budget: the first panic must surface
        )
        .unwrap();
        let injector = Arc::new(ChaosInjector::new(panic_plan(0..64)));
        bot.set_tick_hook(Arc::new(ChaosTickHook::new(injector)));

        let mut saw_exhaustion = false;
        for i in 0..4 {
            chain.submit(Transaction::Swap {
                account: whale,
                pool: PoolId::new(0),
                token_in: t(0),
                amount_in: to_raw(2.0),
                min_out: 0,
            });
            chain.mine_block();
            match bot.step(&mut chain, &moves_for(i)) {
                Ok(_) => {}
                Err(BotError::RecoveryExhausted { recoveries }) => {
                    assert_eq!(recoveries, 0);
                    saw_exhaustion = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            chain.mine_block();
        }
        assert!(saw_exhaustion, "the panic window must hit within 4 steps");
        assert_eq!(bot.recoveries(), 0, "no recovery was budgeted");
    }
}
