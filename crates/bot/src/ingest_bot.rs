//! The bot's ingest-fronted mode: one journaled multiplexed stream for
//! chain events **and** CEX price moves.
//!
//! [`IngestBot`] replaces [`crate::JournaledBot`]'s "journal the chain,
//! hope the feed is reproducible" split with the `arb-ingest` front-end:
//!
//! * every block, the CEX feed's price moves and the chain's new events
//!   are staged on separate [`arb_ingest::Ingestor`] sources, sealed
//!   into one deterministically ordered block, journaled **raw**, then
//!   coalesced and applied through an [`arb_ingest::IngestDriver`];
//! * checkpoints embed the price table and the per-source stream
//!   positions, so [`IngestBot::recover`] rebuilds the fleet *and* the
//!   feed from disk alone — no live price feed is needed to resume,
//!   closing the recovery gap the journaled mode had;
//! * the scan/execute policy is unchanged from [`crate::JournaledBot`]:
//!   best executable opportunity per block, flash-bundle submission.

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use arb_amm::token::TokenId;
use arb_cex::feed::PriceTable;
use arb_dexsim::chain::{Chain, EventCursor};
use arb_dexsim::state::AccountId;
use arb_dexsim::tx::Transaction;
use arb_ingest::{IngestConfig, IngestDriver, IngestStats, Ingestor, SourceId};
use arb_journal::{
    JournalConfig, JournalError, JournalWriter, Recovery, RecoveryStats, SnapshotStore,
};

use crate::bot::{pipeline_for, BotAction};
use crate::config::BotConfig;
use crate::error::BotError;
use crate::execution;
use crate::journal::JournalSettings;
use crate::obs::{BotObs, ExportSink, ObsConfig};
use crate::scanner;

/// An arbitrage bot fed through the `arb-ingest` front-end. See the
/// module docs for how it differs from [`crate::JournaledBot`].
#[derive(Debug)]
pub struct IngestBot {
    account: AccountId,
    config: BotConfig,
    settings: JournalSettings,
    ingestor: Ingestor,
    driver: IngestDriver,
    feed_source: SourceId,
    chain_source: SourceId,
    cursor: EventCursor,
    writer: Arc<Mutex<JournalWriter>>,
    store: SnapshotStore,
    events_since_checkpoint: usize,
    checkpoints_taken: usize,
    recovery: Option<RecoveryStats>,
    obs: Option<BotObs>,
}

fn journal_config(settings: &JournalSettings) -> JournalConfig {
    JournalConfig {
        segment_max_bytes: settings.segment_max_bytes,
        sync_on_commit: true,
    }
}

impl IngestBot {
    /// Starts an ingest-fronted bot on a live chain. The journal
    /// directory must be fresh: ingest offsets count the *multiplexed*
    /// stream (feed moves included), so adopting a chain-only journal
    /// would silently misalign every snapshot. The initial feed and the
    /// chain's full event history are journaled first — sorted feed
    /// prices, then chain history — giving recovery a self-contained
    /// genesis prefix.
    ///
    /// # Errors
    ///
    /// Forwards journal I/O failures ([`BotError::Journal`]) and graph /
    /// engine construction failures; rejects a non-empty journal
    /// directory.
    pub fn attach(
        chain: &mut Chain,
        feed: &PriceTable,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
    ) -> Result<Self, BotError> {
        let writer = JournalWriter::open(&settings.dir, journal_config(&settings))
            .map_err(JournalError::from)?;
        if writer.next_offset() != 0 {
            return Err(BotError::Journal(JournalError::Corrupt(
                "ingest attach requires a fresh journal directory (offsets count the \
                 multiplexed stream) — use IngestBot::recover to resume one"
                    .to_string(),
            )));
        }
        let writer = Arc::new(Mutex::new(writer));
        let mut ingestor = Ingestor::new(ingest).with_journal(writer.clone());
        let feed_source = ingestor.register_source("cex-feed");
        let chain_source = ingestor.register_source("dexsim");

        // Journal the genesis prefix: the full feed (sorted, so attach is
        // deterministic), then the chain's event history.
        let mut initial_prices: Vec<(TokenId, f64)> = feed.iter().collect();
        initial_prices.sort_unstable_by_key(|(token, _)| token.index());
        ingestor.offer_feed_moves(feed_source, &initial_prices)?;
        ingestor.offer(chain_source, chain.event_log().decode_from(0))?;
        ingestor.seal_block()?;
        // The runtime below is built from *current* chain state; the
        // backfill block exists for recovery replay, not for application.
        ingestor
            .handle()
            .try_pop()
            .expect("the backfill block was just sealed");

        let graph = scanner::graph_from_chain(chain)?;
        let runtime =
            arb_engine::ShardedRuntime::with_graph(pipeline_for(&config), graph, config.shards)?;
        let driver = IngestDriver::new(runtime, feed.clone(), ingestor.handle());
        let store = SnapshotStore::new(&settings.dir)?;
        let cursor = chain.subscribe();
        Ok(IngestBot {
            account: chain.create_account(),
            config,
            settings,
            ingestor,
            driver,
            feed_source,
            chain_source,
            cursor,
            writer,
            store,
            events_since_checkpoint: 0,
            checkpoints_taken: 0,
            recovery: None,
            obs: None,
        })
    }

    /// Rebuilds an ingest-fronted bot after a crash **from disk alone**:
    /// no live price feed is passed — the journal's inline `FeedPrice`
    /// stream and the snapshot's embedded price table reconstruct it.
    /// Chain events the chain emitted while the bot was down are
    /// ingested (journaled, sealed, applied) before this returns.
    ///
    /// # Errors
    ///
    /// See [`IngestBot::attach`]; additionally fails when recovery
    /// cannot bootstrap (no snapshot and no genesis prefix).
    pub fn recover(
        chain: &mut Chain,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
    ) -> Result<Self, BotError> {
        Self::recover_impl(chain, config, settings, ingest, None)
    }

    /// [`IngestBot::recover`], resuming the pre-crash bot's `account`
    /// instead of registering a fresh one.
    ///
    /// # Errors
    ///
    /// See [`IngestBot::recover`].
    pub fn recover_as(
        chain: &mut Chain,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
        account: AccountId,
    ) -> Result<Self, BotError> {
        Self::recover_impl(chain, config, settings, ingest, Some(account))
    }

    fn recover_impl(
        chain: &mut Chain,
        config: BotConfig,
        settings: JournalSettings,
        ingest: IngestConfig,
        account: Option<AccountId>,
    ) -> Result<Self, BotError> {
        let writer = JournalWriter::open(&settings.dir, journal_config(&settings))
            .map_err(JournalError::from)?;
        let writer = Arc::new(Mutex::new(writer));

        let recovered = Recovery::new(&settings.dir, pipeline_for(&config), config.shards)
            .recover_journaled()?;

        // Reconstruct per-source positions: the snapshot's recorded
        // counts (zeros on the genesis path) plus everything the replay
        // consumed on each source.
        let snapshot_positions = &recovered.source_positions;
        let feed_position = snapshot_positions.first().copied().unwrap_or(0)
            + recovered.feed_events_replayed as u64;
        let chain_position = snapshot_positions.get(1).copied().unwrap_or(0)
            + (recovered.genesis_bootstrap_events + recovered.chain_events_replayed) as u64;

        let mut ingestor = Ingestor::new(ingest).with_journal(writer.clone());
        let feed_source = ingestor.register_source("cex-feed");
        let chain_source = ingestor.register_source("dexsim");
        ingestor.restore_positions(&[feed_position, chain_position])?;
        let driver = IngestDriver::new(recovered.runtime, recovered.feed, ingestor.handle());

        let cursor = EventCursor::at(chain_position as usize);
        let store = SnapshotStore::new(&settings.dir)?;
        let mut bot = IngestBot {
            account: account.unwrap_or_else(|| chain.create_account()),
            config,
            settings,
            ingestor,
            driver,
            feed_source,
            chain_source,
            cursor,
            writer,
            store,
            events_since_checkpoint: 0,
            checkpoints_taken: 0,
            recovery: Some(recovered.stats),
            obs: None,
        };
        // Catch up on blocks mined while the bot was down: journal and
        // apply them now so the first step sees a current fleet.
        let missed = chain.drain_events(&mut bot.cursor);
        if !missed.is_empty() {
            bot.ingestor.offer(bot.chain_source, missed)?;
            bot.ingestor.seal_block()?;
            bot.driver.drain()?;
        }
        Ok(bot)
    }

    /// Turns on observability: one registry + flight recorder wired
    /// through the whole pipeline this bot owns — ingest sealing
    /// (`ingest.seal_ns` → `queue_ns` spans), the apply side
    /// (`ingest.apply_ns`, `ingest.e2e_ns`, per-batch `ingest.tick`
    /// flight marks), the sharded runtime (`runtime.*`, `engine.*`),
    /// and the bot's own step counters. Unless the config names another
    /// directory, a panic hook is installed that dumps the flight
    /// recorder to the journal directory on crash, next to the journal
    /// the post-mortem will replay. A recovery that built this bot is
    /// reported under `journal.*`. Idempotent.
    pub fn enable_observability(&mut self, mut config: ObsConfig) {
        if self.obs.is_some() {
            return;
        }
        if config.panic_dump_dir.is_none() {
            config.panic_dump_dir = Some(self.settings.dir.clone());
        }
        let bot_obs = BotObs::new(&config);
        self.ingestor.set_obs(bot_obs.obs());
        self.driver.set_obs(bot_obs.obs());
        if let Some(recovery) = &self.recovery {
            recovery.record(bot_obs.obs());
        }
        self.obs = Some(bot_obs);
    }

    /// The shared observability handle (`None` until
    /// [`IngestBot::enable_observability`]).
    pub fn obs(&self) -> Option<&arb_obs::Obs> {
        self.obs.as_ref().map(BotObs::obs)
    }

    /// The current registry in Prometheus text format — the body a
    /// `/metrics` pull endpoint would serve. `None` until observability
    /// is enabled.
    pub fn metrics(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.obs().prometheus_text())
    }

    /// Routes the periodic JSON-lines export (every
    /// [`ObsConfig::export_every_steps`] steps) into `sink`. No-op
    /// until observability is enabled.
    pub fn set_obs_export(&mut self, sink: ExportSink) {
        if let Some(obs) = &mut self.obs {
            obs.set_sink(sink);
        }
    }

    /// The bot's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// The configuration.
    pub fn config(&self) -> &BotConfig {
        &self.config
    }

    /// The journal directory.
    pub fn journal_dir(&self) -> &Path {
        &self.settings.dir
    }

    /// The recovered price table / current feed view.
    pub fn feed(&self) -> &PriceTable {
        self.driver.feed()
    }

    /// Front-end counters (coalescing, queue depth, stalls).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingestor.stats()
    }

    /// The apply-side driver (batch counters, seal-to-rank latency).
    pub fn driver(&self) -> &IngestDriver {
        &self.driver
    }

    /// How the last [`IngestBot::recover`] went (`None` after
    /// [`IngestBot::attach`]).
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Checkpoints written since this process started.
    pub fn checkpoints_taken(&self) -> usize {
        self.checkpoints_taken
    }

    /// One decision step: stage this block's feed moves and chain
    /// events, seal them into one journaled block, apply it through the
    /// driver, checkpoint if due, and submit a flash bundle for the best
    /// executable opportunity.
    ///
    /// # Errors
    ///
    /// Fails on journal write errors, engine failures, or bundle
    /// construction failures — not on unprofitable markets
    /// ([`BotAction::Idle`]).
    pub fn step(
        &mut self,
        chain: &mut Chain,
        feed_moves: &[(TokenId, f64)],
    ) -> Result<BotAction, BotError> {
        let step_timer = self.obs.as_ref().map(BotObs::step_timer);
        let step_span = step_timer.as_ref().map(arb_obs::SpanTimer::start);
        let action = self.step_inner(chain, feed_moves)?;
        drop(step_span);
        if let Some(obs) = &mut self.obs {
            obs.after_step(matches!(action, BotAction::Submitted { .. }));
        }
        Ok(action)
    }

    fn step_inner(
        &mut self,
        chain: &mut Chain,
        feed_moves: &[(TokenId, f64)],
    ) -> Result<BotAction, BotError> {
        self.ingestor
            .offer_feed_moves(self.feed_source, feed_moves)?;
        let events = chain.drain_events(&mut self.cursor);
        let staged = feed_moves.len() + events.len();
        self.ingestor.offer(self.chain_source, events)?;
        self.ingestor.seal_block()?;
        let report = self.driver.drain()?;

        self.events_since_checkpoint += staged;
        if self.events_since_checkpoint >= self.settings.checkpoint_every_events {
            self.checkpoint()?;
        }

        let Some(report) = report else {
            return Ok(BotAction::Idle);
        };
        for opportunity in &report.opportunities {
            let steps = execution::opportunity_bundle(chain, opportunity)?;
            if steps.len() < opportunity.cycle.len() {
                // Rounding collapsed a hop; try the next-ranked loop.
                continue;
            }
            let expected = opportunity.gross_profit;
            let hops = steps.len();
            chain.submit(Transaction::FlashBundle {
                account: self.account,
                steps,
            });
            return Ok(BotAction::Submitted { expected, hops });
        }
        Ok(BotAction::Idle)
    }

    /// Writes a snapshot of the fleet — including the price table and
    /// per-source positions — at the journal's durable tail, prunes old
    /// snapshots, and compacts segments below the oldest retained one.
    /// Called automatically by [`IngestBot::step`]; public for shutdown
    /// hooks.
    ///
    /// When the journal is running behind (events appended but not yet
    /// durably committed, e.g. while the writer is in degraded mode),
    /// the checkpoint is **deferred**: a snapshot taken now would claim
    /// the fleet's state is durable at an offset the disk has not
    /// reached. The due-counter is left alone so the next step retries.
    ///
    /// The writer locks tolerate poisoning: a panicked tick can never
    /// corrupt the writer mid-operation (every mutation completes or
    /// returns an error before control leaves the journal crate), so a
    /// supervised recovery is free to checkpoint afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`BotError::Journal`] on snapshot or compaction failures.
    pub fn checkpoint(&mut self) -> Result<(), BotError> {
        let (offset, pending) = {
            let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            (writer.durable_offset(), writer.pending_events())
        };
        if pending > 0 {
            return Ok(());
        }
        let mut checkpoint = self.driver.checkpoint();
        checkpoint.source_positions = self.ingestor.source_positions();
        self.store.write(offset, &checkpoint)?;
        self.store.prune(self.settings.keep_snapshots)?;
        if let Some(oldest_retained) = self.store.list()?.first().map(|(offset, _)| *offset) {
            self.writer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .compact_below(oldest_retained)
                .map_err(JournalError::from)?;
        }
        self.checkpoints_taken += 1;
        self.events_since_checkpoint = 0;
        Ok(())
    }

    /// Installs an [`arb_engine::TickHook`] on the underlying sharded
    /// runtime — the seam chaos tests use to inject slow ticks and
    /// mid-tick panics into a live bot. Hooks do not survive recovery
    /// (the runtime is rebuilt from disk); [`crate::SupervisedBot`]
    /// re-installs its hook after every supervised restart.
    pub fn set_tick_hook(&mut self, hook: Arc<dyn arb_engine::TickHook>) {
        self.driver.runtime_mut().set_tick_hook(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::PoolId;
    use arb_dexsim::units::to_raw;
    use std::fs;
    use std::path::PathBuf;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("arbloops-ibot-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    fn settings(scratch: &Scratch, checkpoint_every: usize) -> JournalSettings {
        JournalSettings {
            checkpoint_every_events: checkpoint_every,
            ..JournalSettings::new(&scratch.0)
        }
    }

    /// Per-block feed drift, a pure function of the global block index so
    /// a split run sees exactly what a continuous one did.
    fn moves_for(block: usize) -> Vec<(TokenId, f64)> {
        vec![(t(1), 10.2 + 0.05 * block as f64)]
    }

    /// Drives whale-perturbed blocks through a stepper, mining the bot's
    /// submissions, and returns the decision trace.
    fn drive<S: FnMut(&mut Chain, &[(TokenId, f64)]) -> BotAction>(
        chain: &mut Chain,
        whale: AccountId,
        blocks: std::ops::Range<usize>,
        mut stepper: S,
    ) -> Vec<Option<(u64, usize)>> {
        blocks
            .map(|i| {
                chain.submit(Transaction::Swap {
                    account: whale,
                    pool: PoolId::new(0),
                    token_in: t(0),
                    amount_in: to_raw(2.0 + i as f64),
                    min_out: 0,
                });
                chain.mine_block();
                let action = stepper(chain, &moves_for(i));
                chain.mine_block();
                match action {
                    BotAction::Idle => None,
                    BotAction::Submitted { expected, hops } => {
                        Some((expected.value().to_bits(), hops))
                    }
                }
            })
            .collect()
    }

    #[test]
    fn ingest_bot_recovers_without_a_live_feed_and_decides_identically() {
        let scratch = Scratch::new("crash");

        // The never-crashed oracle: one bot across all 8 blocks.
        let mut oracle_chain = paper_chain();
        let whale = oracle_chain.create_account();
        oracle_chain.mint(whale, t(0), to_raw(1_000.0));
        let oracle_scratch = Scratch::new("crash-oracle");
        let mut oracle = IngestBot::attach(
            &mut oracle_chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&oracle_scratch, 4),
            IngestConfig::default(),
        )
        .unwrap();
        let oracle_actions = drive(&mut oracle_chain, whale, 0..8, |chain, moves| {
            oracle.step(chain, moves).unwrap()
        });

        // The crashing run: same chain history, bot dies after block 4.
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        let mut bot = IngestBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch, 4),
            IngestConfig::default(),
        )
        .unwrap();
        assert!(bot.recovery_stats().is_none());
        let mut first_half = drive(&mut chain, whale, 0..4, |chain, moves| {
            bot.step(chain, moves).unwrap()
        });
        assert!(bot.checkpoints_taken() > 0, "checkpoints were due");
        let pre_crash_account = bot.account();
        drop(bot); // 💥 no sink on the chain: events pile up un-journaled

        // NO feed is passed here — the whole point of the ingest stream.
        let mut bot = IngestBot::recover_as(
            &mut chain,
            BotConfig::default(),
            settings(&scratch, 4),
            IngestConfig::default(),
            pre_crash_account,
        )
        .unwrap();
        assert_eq!(bot.account(), pre_crash_account);
        let stats = *bot.recovery_stats().expect("recovered");
        assert!(stats.snapshot_offset.is_some(), "{stats}");

        // The feed was reconstructed from disk: last pre-crash drift
        // applied at block 3.
        let recovered_price = bot
            .feed()
            .iter()
            .find(|(token, _)| *token == t(1))
            .map(|(_, price)| price)
            .expect("t1 priced");
        assert_eq!(
            recovered_price.to_bits(),
            (10.2f64 + 0.05 * 3.0).to_bits(),
            "recovery must replay FeedPrice events to the journal tail"
        );

        let second_half = drive(&mut chain, whale, 4..8, |chain, moves| {
            bot.step(chain, moves).unwrap()
        });
        first_half.extend(second_half);
        assert_eq!(
            first_half, oracle_actions,
            "crash + feed-free recovery must not change a single decision"
        );
        assert!(
            first_half.iter().any(Option::is_some),
            "perturbations should open executable opportunities"
        );
        assert_eq!(chain.state().digest(), oracle_chain.state().digest());
    }

    #[test]
    fn recovery_bootstraps_from_the_journaled_genesis_prefix() {
        let scratch = Scratch::new("genesis");
        let mut chain = paper_chain();
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(1_000.0));
        // Huge checkpoint interval: the bot dies before any snapshot.
        let mut bot = IngestBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch, 10_000),
            IngestConfig::default(),
        )
        .unwrap();
        drive(&mut chain, whale, 0..3, |chain, moves| {
            bot.step(chain, moves).unwrap()
        });
        assert_eq!(bot.checkpoints_taken(), 0);
        drop(bot);

        let bot = IngestBot::recover(
            &mut chain,
            BotConfig::default(),
            settings(&scratch, 10_000),
            IngestConfig::default(),
        )
        .unwrap();
        let stats = *bot.recovery_stats().expect("recovered");
        assert!(stats.snapshot_offset.is_none(), "genesis path: {stats}");
        // The genesis prefix carried the initial feed; the suffix carried
        // the drift. Both land in the reconstructed table.
        assert_eq!(bot.feed().len(), 3);
        let drifted = bot
            .feed()
            .iter()
            .find(|(token, _)| *token == t(1))
            .map(|(_, price)| price)
            .unwrap();
        assert_eq!(drifted.to_bits(), (10.2f64 + 0.05 * 2.0).to_bits());
    }

    #[test]
    fn attach_rejects_a_used_journal_directory() {
        let scratch = Scratch::new("fresh");
        let mut chain = paper_chain();
        let bot = IngestBot::attach(
            &mut chain,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch, 100),
            IngestConfig::default(),
        )
        .unwrap();
        drop(bot);
        let mut second = paper_chain();
        let err = IngestBot::attach(
            &mut second,
            &paper_feed(),
            BotConfig::default(),
            settings(&scratch, 100),
            IngestConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BotError::Journal(_)), "{err:?}");
        assert!(err.to_string().contains("fresh journal"), "{err}");
    }
}
