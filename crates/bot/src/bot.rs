//! The per-block scan → evaluate → execute policy.

use arb_cex::feed::PriceFeed;
use arb_core::monetize::Usd;
use arb_core::{convexopt, maxmax};
use arb_dexsim::chain::Chain;
use arb_dexsim::state::AccountId;
use arb_dexsim::tx::{BundleStep, Transaction};

use crate::config::{BotConfig, StrategyChoice};
use crate::error::BotError;
use crate::execution;
use crate::scanner::{self, Opportunity};

/// What the bot decided to do this block.
#[derive(Debug, Clone)]
pub enum BotAction {
    /// No opportunity above the profit floor.
    Idle,
    /// Submitted a flash bundle with this expected monetized profit.
    Submitted {
        /// Expected profit at evaluation time.
        expected: Usd,
        /// Number of hops in the executed loop.
        hops: usize,
    },
}

/// The arbitrage bot: owns an account and a configuration.
#[derive(Debug, Clone)]
pub struct ArbBot {
    account: AccountId,
    config: BotConfig,
}

impl ArbBot {
    /// Registers a bot account on the chain.
    pub fn new(chain: &mut Chain, config: BotConfig) -> Self {
        ArbBot {
            account: chain.create_account(),
            config,
        }
    }

    /// The bot's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// The configuration.
    pub fn config(&self) -> &BotConfig {
        &self.config
    }

    /// One decision step: scan current state, evaluate the configured
    /// strategy on each opportunity, and submit a flash bundle for the
    /// best one above the profit floor.
    ///
    /// The transaction is only *submitted*; the caller mines the block.
    ///
    /// # Errors
    ///
    /// Fails on scan/evaluation errors, not on unprofitable markets
    /// (those yield [`BotAction::Idle`]).
    pub fn step<F: PriceFeed>(&self, chain: &mut Chain, feed: &F) -> Result<BotAction, BotError> {
        let opportunities = scanner::scan(chain, self.config.max_loop_len)?;
        let mut best: Option<(Usd, Vec<BundleStep>)> = None;
        for opp in &opportunities {
            let Some((expected, steps)) = self.evaluate(chain, feed, opp)? else {
                continue;
            };
            if expected.value() < self.config.min_profit_usd {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| expected > *b) {
                best = Some((expected, steps));
            }
        }
        match best {
            None => Ok(BotAction::Idle),
            Some((expected, steps)) => {
                let hops = steps.len();
                chain.submit(Transaction::FlashBundle {
                    account: self.account,
                    steps,
                });
                Ok(BotAction::Submitted { expected, hops })
            }
        }
    }

    /// Evaluates one opportunity with the configured strategy, returning
    /// the expected profit and the execution bundle (None when the loop
    /// has no priced tokens or the plan is empty).
    fn evaluate<F: PriceFeed>(
        &self,
        chain: &Chain,
        feed: &F,
        opp: &Opportunity,
    ) -> Result<Option<(Usd, Vec<BundleStep>)>, BotError> {
        let Ok(prices) = opp.loop_.resolve_prices(|t| feed.usd_price(t)) else {
            // A loop touching unpriced tokens cannot be monetized; skip it.
            return Ok(None);
        };
        match self.config.strategy {
            StrategyChoice::MaxMax => {
                let outcome = maxmax::evaluate_with(&opp.loop_, &prices, self.config.method)?;
                if outcome.best.token_profit <= 0.0 {
                    return Ok(None);
                }
                let steps = execution::chained_bundle(
                    chain,
                    &opp.cycle,
                    outcome.best.start,
                    outcome.best.optimal_input,
                )?;
                Ok(Some((outcome.best.monetized, steps)))
            }
            StrategyChoice::Convex => {
                let outcome =
                    match convexopt::evaluate_with(&opp.loop_, &prices, &self.config.convex) {
                        Ok(outcome) => outcome,
                        // Near-breakeven loops can have an interior too thin to
                        // start the solver in; they are not worth trading.
                        Err(arb_core::StrategyError::Convex(
                            arb_convex::ConvexError::FeasibilityConstruction,
                        )) => return Ok(None),
                        Err(e) => return Err(e.into()),
                    };
                if outcome.plan.is_zero() {
                    return Ok(None);
                }
                let steps = execution::plan_bundle(&opp.cycle, &outcome.plan);
                if steps.len() < opp.cycle.len() {
                    // Rounding collapsed a hop; fall back to idle rather
                    // than submit a broken loop.
                    return Ok(None);
                }
                Ok(Some((outcome.monetized, steps)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        let mut feed = PriceTable::new();
        feed.set(t(0), 2.0);
        feed.set(t(1), 10.2);
        feed.set(t(2), 20.0);
        feed
    }

    #[test]
    fn maxmax_bot_extracts_paper_profit() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, hops } = action else {
            panic!("expected a submission");
        };
        assert_eq!(hops, 3);
        // MaxMax expects ≈ $205.6.
        assert!((expected.value() - 205.6).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        // Profit banked in token Z (start of the winning rotation).
        assert!(chain.state().balance(bot.account(), t(2)) > to_raw(10.0));
    }

    #[test]
    fn convex_bot_extracts_more() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(
            &mut chain,
            BotConfig {
                strategy: StrategyChoice::Convex,
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, .. } = action else {
            panic!("expected a submission");
        };
        assert!((expected.value() - 206.1).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let y = chain.state().balance(bot.account(), t(1));
        let z = chain.state().balance(bot.account(), t(2));
        assert!(y > 0 && z > 0, "convex profit spread across tokens");
    }

    #[test]
    fn idle_when_market_is_balanced() {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_000.0), fee)
                .unwrap();
        }
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
        assert_eq!(chain.pending(), 0);
    }

    #[test]
    fn profit_floor_filters_small_opportunities() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(
            &mut chain,
            BotConfig {
                min_profit_usd: 1_000.0, // above the ~$206 available
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }

    #[test]
    fn unpriced_tokens_are_skipped() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let empty = PriceTable::new();
        let action = bot.step(&mut chain, &empty).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }
}
