//! The per-block scan → evaluate → execute policy, driven by the engine.

use std::sync::Arc;

use arb_cex::feed::PriceFeed;
use arb_core::monetize::Usd;
use arb_core::{ConvexOptimization, MaxMax};
use arb_dexsim::chain::{Chain, EventCursor};
use arb_dexsim::state::AccountId;
use arb_dexsim::tx::Transaction;
use arb_engine::{
    ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, RuntimeStats, ScreenTotals,
    ShardLoads, ShardedRuntime, SharedStrategy, StreamStats, StreamingEngine,
};
use arb_serve::{
    ClientClass, GovernorConfig, GovernorStats, PublishStats, Publisher, ServeHandle, Subscription,
};

use crate::config::{BotConfig, ScanMode, StrategyChoice};
use crate::error::BotError;
use crate::execution;
use crate::obs::{BotObs, ExportSink, ObsConfig};
use crate::scanner;

/// Builds the engine pipeline a bot configuration describes: one sizing
/// strategy, net-profit ranking, and the config's loop-length and
/// profit-floor limits.
pub fn pipeline_for(config: &BotConfig) -> OpportunityPipeline {
    let strategy: SharedStrategy = match config.strategy {
        StrategyChoice::MaxMax => Arc::new(MaxMax {
            method: config.method,
        }),
        StrategyChoice::Convex => Arc::new(ConvexOptimization {
            options: config.convex,
        }),
    };
    OpportunityPipeline::new(PipelineConfig {
        min_cycle_len: 2,
        max_cycle_len: config.max_loop_len,
        execution_cost_usd: 0.0,
        min_net_profit_usd: config.min_profit_usd,
        parallel: config.workers > 1,
        top_k: None,
        ..PipelineConfig::default()
    })
    .with_strategies(vec![strategy])
}

/// What the bot decided to do this block.
#[derive(Debug, Clone)]
pub enum BotAction {
    /// No opportunity above the profit floor.
    Idle,
    /// Submitted a flash bundle with this expected monetized profit.
    Submitted {
        /// Expected profit at evaluation time.
        expected: Usd,
        /// Number of hops in the executed loop.
        hops: usize,
    },
}

/// The bot's live streaming view: an incremental engine plus its
/// position in the chain's event log.
#[derive(Debug)]
struct StreamState {
    engine: StreamingEngine,
    cursor: EventCursor,
}

/// The bot's sharded view: a multi-engine runtime plus its position in
/// the chain's event log.
#[derive(Debug)]
struct ShardedState {
    runtime: ShardedRuntime,
    cursor: EventCursor,
}

/// The arbitrage bot: owns an account, a configuration, and the engine
/// pipeline built from it. In [`ScanMode::Streaming`] it also owns a
/// [`StreamingEngine`] kept in sync with the chain's event stream.
#[derive(Debug)]
pub struct ArbBot {
    account: AccountId,
    config: BotConfig,
    pipeline: OpportunityPipeline,
    stream: Option<StreamState>,
    sharded: Option<ShardedState>,
    serving: Option<Publisher>,
    obs: Option<BotObs>,
}

impl Clone for ArbBot {
    fn clone(&self) -> Self {
        // The pipeline is a pure function of the config; rebuild it. The
        // streaming view re-synchronizes lazily on the clone's first
        // step. The serving side-car and observability are not cloned —
        // readers attach to one publisher, and a clone must opt back in.
        ArbBot {
            account: self.account,
            config: self.config,
            pipeline: pipeline_for(&self.config),
            stream: None,
            sharded: None,
            serving: None,
            obs: None,
        }
    }
}

/// One-line serving telemetry: publish + admission counters.
#[derive(Debug, Clone, Copy)]
pub struct ServeTelemetry {
    /// Serve revision of the currently published snapshot.
    pub revision: u64,
    /// Publisher counters.
    pub publish: PublishStats,
    /// Admission counters.
    pub governor: GovernorStats,
}

impl std::fmt::Display for ServeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve: revision={} publishes={} skipped={} noop_deltas={} {}",
            self.revision,
            self.publish.publishes,
            self.publish.skipped,
            self.publish.noop_deltas,
            self.governor
        )
    }
}

impl ArbBot {
    /// Registers a bot account on the chain.
    pub fn new(chain: &mut Chain, config: BotConfig) -> Self {
        ArbBot {
            account: chain.create_account(),
            pipeline: pipeline_for(&config),
            config,
            stream: None,
            sharded: None,
            serving: None,
            obs: None,
        }
    }

    /// Turns on the serving side-car: every subsequent step publishes
    /// the ranking it acted on as an immutable snapshot readers attach
    /// to via [`ArbBot::serve_handle`] / [`ArbBot::serve_subscribe`].
    /// Idempotent; a second call keeps existing readers attached.
    pub fn enable_serving(&mut self, governor: GovernorConfig) {
        if self.serving.is_none() {
            let mut publisher = Publisher::new(governor);
            if let Some(obs) = &self.obs {
                publisher.set_obs(obs.obs());
            }
            self.serving = Some(publisher);
        }
    }

    /// Turns on observability: one registry + flight recorder shared by
    /// every layer the bot owns. The live market view (streaming engine
    /// or sharded runtime) and the serving publisher are wired
    /// immediately if present, and lazily as they are (re)built; each
    /// step records `bot.step_ns` and the step counters. Idempotent.
    pub fn enable_observability(&mut self, config: ObsConfig) {
        if self.obs.is_some() {
            return;
        }
        let bot_obs = BotObs::new(&config);
        if let Some(state) = &mut self.stream {
            state.engine.set_obs(bot_obs.obs());
        }
        if let Some(state) = &mut self.sharded {
            state.runtime.set_obs(bot_obs.obs());
        }
        if let Some(publisher) = &mut self.serving {
            publisher.set_obs(bot_obs.obs());
        }
        self.obs = Some(bot_obs);
    }

    /// The shared observability handle (`None` until
    /// [`ArbBot::enable_observability`]).
    pub fn obs(&self) -> Option<&arb_obs::Obs> {
        self.obs.as_ref().map(BotObs::obs)
    }

    /// The current registry in Prometheus text format — the body a
    /// `/metrics` pull endpoint would serve. `None` until observability
    /// is enabled.
    pub fn metrics(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.obs().prometheus_text())
    }

    /// Routes the periodic JSON-lines export (every
    /// [`ObsConfig::export_every_steps`] steps) into `sink`. No-op
    /// until observability is enabled.
    pub fn set_obs_export(&mut self, sink: ExportSink) {
        if let Some(obs) = &mut self.obs {
            obs.set_sink(sink);
        }
    }

    /// A wait-free reader handle in `class` (`None` until
    /// [`ArbBot::enable_serving`]).
    pub fn serve_handle(&self, class: ClientClass) -> Option<ServeHandle> {
        self.serving.as_ref().map(|p| p.handle(class))
    }

    /// A ranking-delta subscription (`None` until serving is enabled).
    pub fn serve_subscribe(&self) -> Option<Subscription> {
        self.serving.as_ref().map(Publisher::subscribe)
    }

    /// Serving telemetry one-liner (`None` until serving is enabled).
    pub fn serve_stats(&self) -> Option<ServeTelemetry> {
        self.serving.as_ref().map(|p| ServeTelemetry {
            revision: p.revision(),
            publish: p.stats(),
            governor: p.governor_stats(),
        })
    }

    /// The bot's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// The configuration.
    pub fn config(&self) -> &BotConfig {
        &self.config
    }

    /// Streaming counters, once the event-driven view is live (`None` in
    /// batch mode and before the first streaming step).
    pub fn stream_stats(&self) -> Option<&StreamStats> {
        self.stream.as_ref().map(|s| s.engine.stats())
    }

    /// Sharded-runtime counters, once the sharded view is live (`None`
    /// outside [`ScanMode::Sharded`] and before the first sharded step).
    pub fn runtime_stats(&self) -> Option<&RuntimeStats> {
        self.sharded.as_ref().map(|s| s.runtime.stats())
    }

    /// Realized shard count of the live sharded view, if any.
    pub fn shard_count(&self) -> Option<usize> {
        self.sharded.as_ref().map(|s| s.runtime.shard_count())
    }

    /// Cumulative screen-discharge totals of the live market view: the
    /// sharded fleet's rebuild-surviving totals in [`ScanMode::Sharded`],
    /// or the streaming engine's own counters in [`ScanMode::Streaming`],
    /// in one [`ScreenTotals`] `Display` line. `None` in batch mode and
    /// before the first step.
    pub fn screen_totals(&self) -> Option<ScreenTotals> {
        if let Some(state) = &self.sharded {
            return Some(state.runtime.screen_totals());
        }
        self.stream.as_ref().map(|state| {
            let mut totals = ScreenTotals::default();
            totals.add_stats(state.engine.stats());
            totals
        })
    }

    /// Per-shard load picture of the live sharded view — routed events in
    /// the current observation window, cumulative evaluations, and the
    /// rebalance count — as one [`ShardLoads`] `Display` line. `None`
    /// outside [`ScanMode::Sharded`] and before the first sharded step.
    pub fn shard_loads(&self) -> Option<ShardLoads> {
        self.sharded.as_ref().map(|s| s.runtime.shard_loads())
    }

    /// One decision step: bring the market view current (incrementally in
    /// [`ScanMode::Streaming`], by full rescan in [`ScanMode::Batch`]) and
    /// submit a flash bundle for the best executable opportunity.
    ///
    /// The transaction is only *submitted*; the caller mines the block.
    ///
    /// # Errors
    ///
    /// Fails on discovery errors, not on unprofitable markets (those
    /// yield [`BotAction::Idle`]).
    pub fn step<F: PriceFeed + Sync>(
        &mut self,
        chain: &mut Chain,
        feed: &F,
    ) -> Result<BotAction, BotError> {
        let step_timer = self.obs.as_ref().map(BotObs::step_timer);
        let step_span = step_timer.as_ref().map(arb_obs::SpanTimer::start);
        let opportunities = match self.config.mode {
            ScanMode::Batch => scanner::discover(chain, &self.pipeline, feed)?.opportunities,
            ScanMode::Streaming => self.streaming_opportunities(chain, feed)?,
            ScanMode::Sharded => self.sharded_opportunities(chain, feed)?,
        };
        self.publish(&opportunities);
        let action = self.execute_best(chain, &opportunities)?;
        drop(step_span);
        if let Some(obs) = &mut self.obs {
            obs.after_step(matches!(action, BotAction::Submitted { .. }));
        }
        Ok(action)
    }

    /// Submits a flash bundle for the best executable opportunity in the
    /// ranking, skipping loops that rounding collapsed.
    fn execute_best(
        &self,
        chain: &mut Chain,
        opportunities: &[ArbitrageOpportunity],
    ) -> Result<BotAction, BotError> {
        for opportunity in opportunities {
            let steps = execution::opportunity_bundle(chain, opportunity)?;
            if steps.len() < opportunity.cycle.len() {
                // Rounding collapsed a hop; try the next-ranked loop
                // rather than submit a broken bundle.
                continue;
            }
            let expected = opportunity.gross_profit;
            let hops = steps.len();
            chain.submit(Transaction::FlashBundle {
                account: self.account,
                steps,
            });
            return Ok(BotAction::Submitted { expected, hops });
        }
        Ok(BotAction::Idle)
    }

    /// Publishes the ranking this step acted on, when serving is
    /// enabled. Incremental views key the publish on their standing
    /// revision so quiet steps skip; batch scans (including the desync
    /// fallback, which drops the incremental view) have no revision to
    /// anchor on and re-publish unconditionally.
    fn publish(&mut self, opportunities: &[ArbitrageOpportunity]) {
        let Some(publisher) = self.serving.as_mut() else {
            return;
        };
        let source = match self.config.mode {
            ScanMode::Sharded => self.sharded.as_ref().map(|s| s.runtime.standing_revision()),
            ScanMode::Streaming => self.stream.as_ref().map(|s| s.engine.standing_revision()),
            ScanMode::Batch => None,
        };
        match source {
            Some(revision) => {
                publisher.publish_if_changed(revision, opportunities);
            }
            None => {
                publisher.reanchor();
                publisher.publish(opportunities.to_vec());
            }
        }
    }

    /// The event-driven path: drain new chain events into the streaming
    /// engine and return its standing ranking. The first step pays one
    /// full build (cold start); a desynchronized stream is dropped and
    /// the step falls back to a batch scan, re-synchronizing next step.
    fn streaming_opportunities<F: PriceFeed>(
        &mut self,
        chain: &Chain,
        feed: &F,
    ) -> Result<Vec<ArbitrageOpportunity>, BotError> {
        if self.stream.is_none() {
            let mut state = self.build_stream(chain)?;
            if let Some(obs) = &self.obs {
                state.engine.set_obs(obs.obs());
            }
            self.stream = Some(state);
        }
        let state = self.stream.as_mut().expect("initialized above");
        let events = chain.drain_events(&mut state.cursor);
        match state.engine.apply_events(&events, feed) {
            Ok(report) => Ok(report.opportunities),
            Err(_) => {
                // Fallback path: drop the stale view, serve this block
                // from a full rescan, rebuild the stream next step.
                self.stream = None;
                Ok(scanner::discover(chain, &self.pipeline, feed)?.opportunities)
            }
        }
    }

    /// Builds a streaming engine over the chain's *current* pool set and
    /// subscribes at the current end of the event log, so the pair stays
    /// consistent: state now + every event after now. Degenerate pools
    /// enter as retired slots (keeping `PoolId`s chain-aligned) and
    /// revive through their next valid `Sync`.
    fn build_stream(&self, chain: &Chain) -> Result<StreamState, BotError> {
        let graph = scanner::graph_from_chain(chain)?;
        let engine = StreamingEngine::with_graph(pipeline_for(&self.config), graph)
            .map_err(BotError::from)?;
        Ok(StreamState {
            engine,
            cursor: chain.subscribe(),
        })
    }

    /// The sharded path: drain new chain events into the multi-engine
    /// runtime and return the merged global ranking. Cold start and
    /// desync fallback mirror [`ArbBot::streaming_opportunities`].
    fn sharded_opportunities<F: PriceFeed + Sync>(
        &mut self,
        chain: &Chain,
        feed: &F,
    ) -> Result<Vec<ArbitrageOpportunity>, BotError> {
        if self.sharded.is_none() {
            let mut state = self.build_sharded(chain)?;
            if let Some(obs) = &self.obs {
                state.runtime.set_obs(obs.obs());
            }
            self.sharded = Some(state);
        }
        let state = self.sharded.as_mut().expect("initialized above");
        let events = chain.drain_events(&mut state.cursor);
        match state.runtime.apply_events(&events, feed) {
            Ok(report) => Ok(report.opportunities),
            Err(_) => {
                // Fallback path: drop the stale fleet, serve this block
                // from a full rescan, rebuild the runtime next step.
                self.sharded = None;
                Ok(scanner::discover(chain, &self.pipeline, feed)?.opportunities)
            }
        }
    }

    /// Builds the sharded runtime over the chain's current pool set (the
    /// same slot-aligned graph the streaming engine mirrors) and
    /// subscribes at the current end of the event log.
    fn build_sharded(&self, chain: &Chain) -> Result<ShardedState, BotError> {
        let graph = scanner::graph_from_chain(chain)?;
        let runtime =
            ShardedRuntime::with_graph(pipeline_for(&self.config), graph, self.config.shards)
                .map_err(BotError::from)?;
        Ok(ShardedState {
            runtime,
            cursor: chain.subscribe(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        let mut feed = PriceTable::new();
        feed.set(t(0), 2.0);
        feed.set(t(1), 10.2);
        feed.set(t(2), 20.0);
        feed
    }

    #[test]
    fn maxmax_bot_extracts_paper_profit() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, hops } = action else {
            panic!("expected a submission");
        };
        assert_eq!(hops, 3);
        // MaxMax expects ≈ $205.6.
        assert!((expected.value() - 205.6).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        // Profit banked in token Z (start of the winning rotation).
        assert!(chain.state().balance(bot.account(), t(2)) > to_raw(10.0));
    }

    #[test]
    fn convex_bot_extracts_more() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(
            &mut chain,
            BotConfig {
                strategy: StrategyChoice::Convex,
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, .. } = action else {
            panic!("expected a submission");
        };
        assert!((expected.value() - 206.1).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let y = chain.state().balance(bot.account(), t(1));
        let z = chain.state().balance(bot.account(), t(2));
        assert!(y > 0 && z > 0, "convex profit spread across tokens");
    }

    #[test]
    fn idle_when_market_is_balanced() {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_000.0), fee)
                .unwrap();
        }
        let mut bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
        assert_eq!(chain.pending(), 0);
    }

    #[test]
    fn profit_floor_filters_small_opportunities() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(
            &mut chain,
            BotConfig {
                min_profit_usd: 1_000.0, // above the ~$206 available
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }

    #[test]
    fn unpriced_tokens_are_skipped() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(&mut chain, BotConfig::default());
        let empty = PriceTable::new();
        let action = bot.step(&mut chain, &empty).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }

    #[test]
    fn streaming_and_batch_bots_make_identical_decisions() {
        // Same chain, same feed, same seed of perturbations: the
        // event-driven bot must submit exactly what the rescan bot does.
        let run = |mode: ScanMode| {
            let mut chain = paper_chain();
            let mut bot = ArbBot::new(
                &mut chain,
                BotConfig {
                    mode,
                    ..BotConfig::default()
                },
            );
            let whale = chain.create_account();
            chain.mint(whale, t(0), to_raw(1_000.0));
            let mut actions = Vec::new();
            for i in 0..6 {
                // A whale trade perturbs pool 0 between bot steps.
                chain.submit(Transaction::Swap {
                    account: whale,
                    pool: arb_amm::pool::PoolId::new(0),
                    token_in: t(0),
                    amount_in: to_raw(2.0 + i as f64),
                    min_out: 0,
                });
                chain.mine_block();
                let action = bot.step(&mut chain, &paper_feed()).unwrap();
                chain.mine_block();
                actions.push(match action {
                    BotAction::Idle => None,
                    BotAction::Submitted { expected, hops } => {
                        Some((expected.value().to_bits(), hops))
                    }
                });
            }
            (actions, chain.state().digest())
        };
        let (streaming_actions, streaming_digest) = run(ScanMode::Streaming);
        let (batch_actions, batch_digest) = run(ScanMode::Batch);
        let (sharded_actions, sharded_digest) = run(ScanMode::Sharded);
        assert_eq!(streaming_actions, batch_actions);
        assert_eq!(streaming_digest, batch_digest);
        assert_eq!(sharded_actions, batch_actions);
        assert_eq!(sharded_digest, batch_digest);
        assert!(
            streaming_actions.iter().any(Option::is_some),
            "perturbations should open executable opportunities"
        );
    }

    #[test]
    fn sharded_bot_tracks_events_and_reports_runtime_stats() {
        let mut chain = paper_chain();
        // A second, disjoint triangle so the partition has two components.
        let fee = FeeRate::UNISWAP_V2;
        for (a, b) in [(3, 4), (4, 5), (5, 3)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_010.0), fee)
                .unwrap();
        }
        let mut feed = paper_feed();
        feed.extend((3..6).map(|i| (t(i), 1.0)));
        let mut bot = ArbBot::new(
            &mut chain,
            BotConfig {
                mode: ScanMode::Sharded,
                shards: 2,
                ..BotConfig::default()
            },
        );
        assert!(bot.runtime_stats().is_none());
        bot.step(&mut chain, &feed).unwrap();
        chain.mine_block();
        assert_eq!(bot.shard_count(), Some(2));

        // Whale flow between steps reaches the owning shard as events.
        let whale = chain.create_account();
        chain.mint(whale, t(0), to_raw(50.0));
        chain.submit(Transaction::Swap {
            account: whale,
            pool: arb_amm::pool::PoolId::new(0),
            token_in: t(0),
            amount_in: to_raw(5.0),
            min_out: 0,
        });
        chain.mine_block();
        bot.step(&mut chain, &feed).unwrap();
        let stats = bot.runtime_stats().unwrap();
        assert!(stats.ticks >= 2, "{stats}");
        assert!(stats.events_routed > 0, "{stats}");

        // Telemetry one-liners: screen totals and the per-shard loads.
        let totals = bot.screen_totals().unwrap();
        let line = totals.to_string();
        assert!(line.contains("screened"), "{line}");
        assert!(!line.contains('\n'));
        let loads = bot.shard_loads().unwrap();
        assert_eq!(loads.window_events.len(), 2);
        assert!(loads.window_events.iter().sum::<u64>() > 0, "{loads}");
        assert_eq!(loads.rebalances, 0);
        assert!(!loads.to_string().contains('\n'));
    }

    #[test]
    fn serving_bot_publishes_the_ranking_it_acts_on() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(
            &mut chain,
            BotConfig {
                mode: ScanMode::Sharded,
                ..BotConfig::default()
            },
        );
        assert!(bot.serve_handle(ClientClass::Interactive).is_none());
        assert!(bot.serve_stats().is_none());
        bot.enable_serving(GovernorConfig::default());
        let handle = bot.serve_handle(ClientClass::Interactive).unwrap();
        assert_eq!(handle.load().revision(), 0, "nothing published yet");

        bot.step(&mut chain, &paper_feed()).unwrap();
        let published = handle.load();
        assert_eq!(published.revision(), 1);
        assert_eq!(published.len(), 1, "the paper triangle ranks once");
        // Bit-identical to what the engine would rank right now.
        let guard = handle.query().unwrap();
        assert_eq!(
            guard.top_k(1)[0].net_profit.value().to_bits(),
            published.entries()[0].net_profit.value().to_bits()
        );
        drop(guard);

        // A quiet step (the bundle is pending, not mined, so no chain
        // events arrive) publishes nothing new.
        bot.step(&mut chain, &paper_feed()).unwrap();
        let stats = bot.serve_stats().unwrap();
        assert_eq!(stats.revision, 1, "{stats}");
        assert_eq!(stats.publish.skipped, 1);
        assert!(stats.governor.admitted[0] >= 1);
        let line = stats.to_string();
        assert!(line.contains("serve:"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn telemetry_is_none_before_first_step() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(&mut chain, BotConfig::default());
        assert!(bot.screen_totals().is_none());
        assert!(bot.shard_loads().is_none());
        // The default mode is streaming: after a step the screen totals
        // surface through the same accessor, loads stay sharded-only.
        bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(bot.stream_stats().is_some());
        assert!(bot.screen_totals().is_some());
        assert!(bot.shard_loads().is_none());
    }

    #[test]
    fn streaming_bot_tracks_pools_created_after_cold_start() {
        let mut chain = paper_chain();
        let mut bot = ArbBot::new(&mut chain, BotConfig::default());
        // Cold start over the original triangle.
        bot.step(&mut chain, &paper_feed()).unwrap();
        chain.mine_block();
        assert!(bot.stream_stats().is_some());

        // A new pool arrives as an event, not a re-snapshot.
        chain
            .add_pool(t(0), t(1), to_raw(90.0), to_raw(210.0), FeeRate::UNISWAP_V2)
            .unwrap();
        bot.step(&mut chain, &paper_feed()).unwrap();
        let stats = bot.stream_stats().unwrap();
        assert_eq!(stats.pools_added, 1);
        assert!(stats.cycles_added > 0, "{stats}");
    }

    #[test]
    fn pipeline_reflects_config() {
        let maxmax = pipeline_for(&BotConfig::default());
        assert_eq!(maxmax.strategy_names(), vec!["maxmax"]);
        let convex = pipeline_for(&BotConfig {
            strategy: StrategyChoice::Convex,
            max_loop_len: 4,
            ..BotConfig::default()
        });
        assert_eq!(convex.strategy_names(), vec!["convex"]);
        assert_eq!(convex.config().max_cycle_len, 4);
    }
}
