//! The per-block scan → evaluate → execute policy, driven by the engine.

use std::sync::Arc;

use arb_cex::feed::PriceFeed;
use arb_core::monetize::Usd;
use arb_core::{ConvexOptimization, MaxMax};
use arb_dexsim::chain::Chain;
use arb_dexsim::state::AccountId;
use arb_dexsim::tx::Transaction;
use arb_engine::{OpportunityPipeline, PipelineConfig, SharedStrategy};

use crate::config::{BotConfig, StrategyChoice};
use crate::error::BotError;
use crate::execution;
use crate::scanner;

/// Builds the engine pipeline a bot configuration describes: one sizing
/// strategy, net-profit ranking, and the config's loop-length and
/// profit-floor limits.
pub fn pipeline_for(config: &BotConfig) -> OpportunityPipeline {
    let strategy: SharedStrategy = match config.strategy {
        StrategyChoice::MaxMax => Arc::new(MaxMax {
            method: config.method,
        }),
        StrategyChoice::Convex => Arc::new(ConvexOptimization {
            options: config.convex,
        }),
    };
    OpportunityPipeline::new(PipelineConfig {
        min_cycle_len: 2,
        max_cycle_len: config.max_loop_len,
        execution_cost_usd: 0.0,
        min_net_profit_usd: config.min_profit_usd,
        parallel: config.workers > 1,
        top_k: None,
    })
    .with_strategies(vec![strategy])
}

/// What the bot decided to do this block.
#[derive(Debug, Clone)]
pub enum BotAction {
    /// No opportunity above the profit floor.
    Idle,
    /// Submitted a flash bundle with this expected monetized profit.
    Submitted {
        /// Expected profit at evaluation time.
        expected: Usd,
        /// Number of hops in the executed loop.
        hops: usize,
    },
}

/// The arbitrage bot: owns an account, a configuration, and the engine
/// pipeline built from it.
#[derive(Debug)]
pub struct ArbBot {
    account: AccountId,
    config: BotConfig,
    pipeline: OpportunityPipeline,
}

impl Clone for ArbBot {
    fn clone(&self) -> Self {
        // The pipeline is a pure function of the config; rebuild it.
        ArbBot {
            account: self.account,
            config: self.config,
            pipeline: pipeline_for(&self.config),
        }
    }
}

impl ArbBot {
    /// Registers a bot account on the chain.
    pub fn new(chain: &mut Chain, config: BotConfig) -> Self {
        ArbBot {
            account: chain.create_account(),
            pipeline: pipeline_for(&config),
            config,
        }
    }

    /// The bot's account.
    pub fn account(&self) -> AccountId {
        self.account
    }

    /// The configuration.
    pub fn config(&self) -> &BotConfig {
        &self.config
    }

    /// One decision step: run the engine pipeline on current state and
    /// submit a flash bundle for the best executable opportunity.
    ///
    /// The transaction is only *submitted*; the caller mines the block.
    ///
    /// # Errors
    ///
    /// Fails on discovery errors, not on unprofitable markets (those
    /// yield [`BotAction::Idle`]).
    pub fn step<F: PriceFeed>(&self, chain: &mut Chain, feed: &F) -> Result<BotAction, BotError> {
        let report = scanner::discover(chain, &self.pipeline, feed)?;
        for opportunity in &report.opportunities {
            let steps = execution::opportunity_bundle(chain, opportunity)?;
            if steps.len() < opportunity.cycle.len() {
                // Rounding collapsed a hop; try the next-ranked loop
                // rather than submit a broken bundle.
                continue;
            }
            let expected = opportunity.gross_profit;
            let hops = steps.len();
            chain.submit(Transaction::FlashBundle {
                account: self.account,
                steps,
            });
            return Ok(BotAction::Submitted { expected, hops });
        }
        Ok(BotAction::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_chain() -> Chain {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        chain
            .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
            .unwrap();
        chain
            .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
            .unwrap();
        chain
    }

    fn paper_feed() -> PriceTable {
        let mut feed = PriceTable::new();
        feed.set(t(0), 2.0);
        feed.set(t(1), 10.2);
        feed.set(t(2), 20.0);
        feed
    }

    #[test]
    fn maxmax_bot_extracts_paper_profit() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, hops } = action else {
            panic!("expected a submission");
        };
        assert_eq!(hops, 3);
        // MaxMax expects ≈ $205.6.
        assert!((expected.value() - 205.6).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        // Profit banked in token Z (start of the winning rotation).
        assert!(chain.state().balance(bot.account(), t(2)) > to_raw(10.0));
    }

    #[test]
    fn convex_bot_extracts_more() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(
            &mut chain,
            BotConfig {
                strategy: StrategyChoice::Convex,
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        let BotAction::Submitted { expected, .. } = action else {
            panic!("expected a submission");
        };
        assert!((expected.value() - 206.1).abs() < 1.0, "{expected}");
        let block = chain.mine_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let y = chain.state().balance(bot.account(), t(1));
        let z = chain.state().balance(bot.account(), t(2));
        assert!(y > 0 && z > 0, "convex profit spread across tokens");
    }

    #[test]
    fn idle_when_market_is_balanced() {
        let mut chain = Chain::new();
        let fee = FeeRate::UNISWAP_V2;
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            chain
                .add_pool(t(a), t(b), to_raw(1_000.0), to_raw(1_000.0), fee)
                .unwrap();
        }
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
        assert_eq!(chain.pending(), 0);
    }

    #[test]
    fn profit_floor_filters_small_opportunities() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(
            &mut chain,
            BotConfig {
                min_profit_usd: 1_000.0, // above the ~$206 available
                ..BotConfig::default()
            },
        );
        let action = bot.step(&mut chain, &paper_feed()).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }

    #[test]
    fn unpriced_tokens_are_skipped() {
        let mut chain = paper_chain();
        let bot = ArbBot::new(&mut chain, BotConfig::default());
        let empty = PriceTable::new();
        let action = bot.step(&mut chain, &empty).unwrap();
        assert!(matches!(action, BotAction::Idle));
    }

    #[test]
    fn pipeline_reflects_config() {
        let maxmax = pipeline_for(&BotConfig::default());
        assert_eq!(maxmax.strategy_names(), vec!["maxmax"]);
        let convex = pipeline_for(&BotConfig {
            strategy: StrategyChoice::Convex,
            max_loop_len: 4,
            ..BotConfig::default()
        });
        assert_eq!(convex.strategy_names(), vec!["convex"]);
        assert_eq!(convex.config().max_cycle_len, 4);
    }
}
