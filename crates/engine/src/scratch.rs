//! The reusable evaluation scratch arena behind the streaming refresh.
//!
//! Every `StreamingEngine::refresh_standing` used to allocate per dirty
//! cycle: a cloned [`arb_graph::Cycle`], a curve `Vec` from
//! `curves_for`, an `ArbLoop` (two more `Vec`s), a prices `Vec`, and a
//! collected results `Vec`. This module replaces all of that with one
//! engine-owned arena of flat structure-of-arrays buffers:
//!
//! ```text
//! hops:   [c0h0 c0h1 c0h2 | c1h0 c1h1 | ...]   SwapCurve, flat
//! tokens: [c0t0 c0t1 c0t2 | c1t0 c1t1 | ...]   TokenId,   flat
//! prices: [c0p0 c0p1 c0p2 | c1p0 c1p1 | ...]   f64,       flat
//! slots:  [ (id, offset, len, ArbLoop scratch, outcome) ... ]
//! ```
//!
//! Each surviving candidate is one [`EvalSlot`] holding an `(offset,
//! len)` span into the shared buffers plus a persistent [`ArbLoop`] whose
//! inner vectors are rebuilt in place per refresh (capacity reused). The
//! parallel fan-out runs `for_each` over `&mut` slots — every worker
//! writes its outcome into its own slot, so nothing is collected and
//! nothing is allocated. Buffers only grow while a refresh touches more
//! candidates/hops than any refresh before it; [`ScratchArena::grow_events`]
//! counts those growth episodes so benches can assert the steady state
//! allocates **zero** bytes in this path.

use arb_amm::curve::SwapCurve;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use arb_core::loop_def::ArbLoop;
use arb_graph::CycleId;

use crate::error::EngineError;
use crate::opportunity::ArbitrageOpportunity;

/// One prepared candidate awaiting (or holding the result of) strategy
/// evaluation.
#[derive(Debug)]
pub(crate) struct EvalSlot {
    /// The cycle under evaluation.
    pub(crate) id: CycleId,
    /// Start of this candidate's span in the flat buffers.
    pub(crate) offset: usize,
    /// Hop count (= token count = price count) of the span.
    pub(crate) len: usize,
    /// Reusable loop storage, rebuilt in place each refresh.
    pub(crate) loop_: ArbLoop,
    /// The evaluation outcome, written by the fan-out worker that owns
    /// this slot.
    pub(crate) outcome: Option<Result<EvalOutcome, EngineError>>,
}

/// One cycle's evaluation result: `(best opportunity, strategy attempts,
/// benign failures)` — the tuple `OpportunityPipeline::evaluate_cycle`
/// returns.
pub(crate) type EvalOutcome = (Option<ArbitrageOpportunity>, usize, usize);

/// The engine-owned scratch arena. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct ScratchArena {
    /// Flat per-hop curves, span-indexed by slots.
    pub(crate) hops: Vec<SwapCurve>,
    /// Flat per-hop entry tokens, span-indexed by slots.
    pub(crate) tokens: Vec<TokenId>,
    /// Flat per-token USD prices, span-indexed by slots.
    pub(crate) prices: Vec<f64>,
    /// Slot storage; only `..used` is meaningful this refresh.
    slots: Vec<EvalSlot>,
    used: usize,
    /// Cycles the screen (or exact classification) dropped this refresh,
    /// to be removed from the standing set at commit.
    pub(crate) dropped: Vec<CycleId>,
    /// Reused buffer for the feed-diff pool scan.
    pub(crate) moved_pools: Vec<PoolId>,
    /// Capacity-growth episodes since construction: refreshes during
    /// which at least one arena buffer had to allocate. Flat after
    /// warmup ⇔ the refresh hot path is allocation-free.
    grow_events: usize,
    watermark: (usize, usize, usize, usize, usize),
}

impl ScratchArena {
    /// Resets the arena for a new refresh. Lengths go to zero; capacity
    /// is retained.
    pub(crate) fn begin_refresh(&mut self) {
        self.hops.clear();
        self.tokens.clear();
        self.prices.clear();
        self.used = 0;
        self.dropped.clear();
        self.watermark = self.capacities();
    }

    /// Finishes the refresh's preparation phase, recording whether any
    /// buffer grew past its prior high-water capacity.
    pub(crate) fn end_prepare(&mut self) {
        if self.capacities() != self.watermark {
            self.grow_events += 1;
        }
    }

    fn capacities(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.hops.capacity(),
            self.tokens.capacity(),
            self.prices.capacity(),
            self.slots.capacity(),
            self.dropped.capacity(),
        )
    }

    /// Capacity-growth episodes since construction.
    pub(crate) fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Claims the next evaluation slot for the candidate whose span
    /// `[offset, offset+len)` was just pushed into the flat buffers.
    /// Reuses a previously grown slot (and its `ArbLoop` capacity) when
    /// one is available.
    pub(crate) fn push_candidate(&mut self, id: CycleId, offset: usize, len: usize) {
        if self.used < self.slots.len() {
            let slot = &mut self.slots[self.used];
            slot.id = id;
            slot.offset = offset;
            slot.len = len;
            slot.outcome = None;
        } else {
            self.slots.push(EvalSlot {
                id,
                offset,
                len,
                loop_: ArbLoop::scratch(),
                outcome: None,
            });
        }
        self.used += 1;
    }

    /// The slots prepared this refresh, mutably (the fan-out's working
    /// set).
    pub(crate) fn slots_mut(&mut self) -> &mut [EvalSlot] {
        &mut self.slots[..self.used]
    }

    /// Splits the arena for the evaluation fan-out: shared read-only
    /// views of the flat buffers plus mutable access to this refresh's
    /// slots — disjoint fields, so workers can write outcomes while all
    /// of them read the same spans.
    #[allow(clippy::type_complexity)]
    pub(crate) fn split_for_eval(&mut self) -> (&[SwapCurve], &[TokenId], &[f64], &mut [EvalSlot]) {
        (
            &self.hops,
            &self.tokens,
            &self.prices,
            &mut self.slots[..self.used],
        )
    }

    /// The slots prepared this refresh.
    pub(crate) fn slots(&self) -> &[EvalSlot] {
        &self.slots[..self.used]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_reuse_and_growth_accounting() {
        let mut arena = ScratchArena::default();
        arena.begin_refresh();
        for i in 0..4 {
            arena
                .hops
                .push(SwapCurve::new(10.0, 10.0, arb_amm::fee::FeeRate::UNISWAP_V2).unwrap());
            arena.tokens.push(TokenId::new(i));
            arena.prices.push(1.0);
        }
        arena.push_candidate(CycleId::from_index(0), 0, 2);
        arena.push_candidate(CycleId::from_index(1), 2, 2);
        arena.end_prepare();
        assert_eq!(arena.slots().len(), 2);
        assert_eq!(arena.grow_events(), 1, "cold arena grows once");

        // A same-shape refresh reuses every buffer: no growth episode.
        arena.begin_refresh();
        for i in 0..4 {
            arena
                .hops
                .push(SwapCurve::new(10.0, 10.0, arb_amm::fee::FeeRate::UNISWAP_V2).unwrap());
            arena.tokens.push(TokenId::new(i));
            arena.prices.push(1.0);
        }
        arena.push_candidate(CycleId::from_index(7), 0, 2);
        arena.push_candidate(CycleId::from_index(8), 2, 2);
        arena.end_prepare();
        assert_eq!(arena.grow_events(), 1, "steady state allocates nothing");
        assert_eq!(arena.slots()[0].id, CycleId::from_index(7));
        assert!(arena.slots()[0].outcome.is_none(), "outcome reset on reuse");

        // A *smaller* refresh also reuses.
        arena.begin_refresh();
        arena.end_prepare();
        assert_eq!(arena.slots().len(), 0);
        assert_eq!(arena.grow_events(), 1);
    }
}
