//! Plain-data checkpoints of engine state, for durable snapshots.
//!
//! A [`crate::StreamingEngine`] (and the [`crate::ShardedRuntime`] fleet
//! above it) is a deterministic function of the event stream it consumed:
//! evaluation is pure in (reserves, feed), so any copy of the graph +
//! cycle index resumes to the exact same standing ranking. These types
//! capture that state as plain data — no I/O, no encoding — so a
//! persistence layer (`arb-journal`) can serialize them however it likes
//! and tie them to a journal offset.
//!
//! What is captured, and why it suffices:
//!
//! * **Pool slots** ([`PoolSlot`]) — every slot's token pair, reserves,
//!   fee, and liveness. Retired slots keep their last valid state, so the
//!   restored graph has the same id space and the same revive behavior.
//! * **Cycle index arena** — the cycle slots and free list
//!   ([`arb_graph::CycleIndex::to_parts`]), so restored `CycleId`s and
//!   future slot recycling match the checkpointed engine exactly and the
//!   exponential enumeration is *not* re-run at recovery time.
//! * **`standing_revision`** — restored so external caches keyed on the
//!   revision stay monotone across a restart.
//!
//! The standing opportunity *values* are deliberately **not** captured:
//! restore marks every live cycle dirty and the first refresh recomputes
//! them bit-identically (the same invariant the sharded runtime's rebuild
//! path already relies on). Cumulative counters ([`crate::StreamStats`],
//! [`crate::RuntimeStats`]) restart from zero — they describe a process
//! lifetime, not market state.

use arb_amm::fee::FeeRate;
use arb_amm::pool::Pool;
use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;
use arb_graph::{Cycle, GraphError, TokenGraph};

/// One pool slot's full state: enough to rebuild the slot (live or
/// retired) bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSlot {
    /// First token of the pair.
    pub token_a: u32,
    /// Second token of the pair.
    pub token_b: u32,
    /// Reserve of token A (the last *valid* state for retired slots).
    pub reserve_a: f64,
    /// Reserve of token B (the last *valid* state for retired slots).
    pub reserve_b: f64,
    /// Swap fee in parts-per-million.
    pub fee_ppm: u32,
    /// Whether the slot is live (false = retired, revivable by a `Sync`).
    pub live: bool,
}

impl PoolSlot {
    /// Captures one slot of `graph`.
    pub(crate) fn capture(graph: &TokenGraph, id: PoolId) -> Self {
        let pool = &graph.pools()[id.index()];
        PoolSlot {
            token_a: pool.token_a().index() as u32,
            token_b: pool.token_b().index() as u32,
            reserve_a: pool.reserve_a(),
            reserve_b: pool.reserve_b(),
            fee_ppm: pool.fee().ppm(),
            live: graph.is_live(id),
        }
    }

    /// Rebuilds the slot's [`Pool`] value.
    fn to_pool(&self) -> Result<Pool, GraphError> {
        let fee = FeeRate::from_ppm(self.fee_ppm).map_err(GraphError::from)?;
        Pool::new(
            TokenId::new(self.token_a),
            TokenId::new(self.token_b),
            self.reserve_a,
            self.reserve_b,
            fee,
        )
        .map_err(GraphError::from)
    }
}

/// A checkpoint of one [`crate::StreamingEngine`]: graph slots, cycle
/// index arena, and standing revision. Produce with
/// [`crate::StreamingEngine::checkpoint`], consume with
/// [`crate::StreamingEngine::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Shortest indexed cycle length (must match the restoring
    /// pipeline's config).
    pub min_cycle_len: usize,
    /// Longest indexed cycle length.
    pub max_cycle_len: usize,
    /// Every pool slot, in `PoolId` order.
    pub slots: Vec<PoolSlot>,
    /// The cycle arena (`None` = tombstoned slot awaiting recycling).
    pub arena: Vec<Option<Cycle>>,
    /// Tombstoned arena slots in recycling order.
    pub free: Vec<u32>,
    /// The engine's standing revision at checkpoint time.
    pub standing_revision: u64,
}

impl EngineCheckpoint {
    /// Rebuilds the checkpointed graph: all slots with their last valid
    /// state, retired slots re-retired.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when a slot no longer constructs (which
    /// indicates a corrupted checkpoint, since every captured slot was a
    /// valid pool once).
    pub fn build_graph(&self) -> Result<TokenGraph, GraphError> {
        let pools = self
            .slots
            .iter()
            .map(PoolSlot::to_pool)
            .collect::<Result<Vec<_>, _>>()?;
        let mut graph = TokenGraph::new(pools)?;
        for (index, slot) in self.slots.iter().enumerate() {
            if !slot.live {
                graph.remove_pool(PoolId::new(index as u32))?;
            }
        }
        Ok(graph)
    }
}

/// A checkpoint of a whole [`crate::ShardedRuntime`]: the per-slot shard
/// assignment plus one [`EngineCheckpoint`] per shard (each shard mirrors
/// the full slot array, with non-owned slots retired). Produce with
/// [`crate::ShardedRuntime::checkpoint`], consume with
/// [`crate::ShardedRuntime::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeCheckpoint {
    /// The shard-count cap to re-apply on post-restore rebuilds.
    pub max_shards: usize,
    /// `owners[p]` = shard owning pool slot `p`.
    pub owners: Vec<u32>,
    /// Per-shard engine checkpoints, indexed by shard.
    pub shards: Vec<EngineCheckpoint>,
    /// The price feed at checkpoint time as `(token index, f64 bits)`
    /// entries sorted by token — filled by the ingestion front-end
    /// (`arb-ingest`), whose journaled stream carries feed updates
    /// inline, so recovery reproduces rankings without a live feed.
    /// Empty when the checkpoint was taken by a consumer that sources
    /// prices externally; [`crate::ShardedRuntime::restore`] ignores it.
    pub feed: Vec<(u32, u64)>,
    /// Per-ingest-source consumed-event counts at checkpoint time,
    /// in source registration order. Opaque to the engine (restore
    /// ignores it); the ingestion front-end uses it to resume each
    /// source's cursor after recovery. Empty outside ingest mode.
    pub source_positions: Vec<u64>,
}
