//! The incremental streaming engine: event deltas → dirty cycles → re-rank.
//!
//! [`crate::OpportunityPipeline`] is a pure function of a full market
//! snapshot: every run rebuilds the graph and re-enumerates every cycle.
//! That is the right shape for cold starts and offline studies, but a live
//! market tick touches a handful of pools while the universe holds
//! hundreds — rescanning the world each block does O(universe) work for
//! O(delta) change.
//!
//! [`StreamingEngine`] owns the state the batch pipeline recomputes:
//!
//! ```text
//! events ──▶ delta apply (TokenGraph::apply_sync / add_pool)
//!    │              │
//!    │        CycleIndex: PoolId → affected CycleIds  ──▶ dirty set
//!    │                                                      │
//!    └── price feed ──▶ re-evaluate ONLY dirty cycles (parallel)
//!                                   │
//!                    merge into standing ranked opportunity set
//! ```
//!
//! The work per batch is proportional to the cycles the events touched,
//! not to the universe; [`StreamStats::evaluations_saved`] counts the
//! difference. Evaluation, floor filtering, and ranking reuse the exact
//! pipeline code, so after any event sequence the standing set is
//! *identical* to a fresh batch run on the resulting state under the same
//! feed (`tests/streaming_equivalence.rs` enforces this).
//!
//! Feed moves are handled symmetrically to reserve moves: every refresh
//! compares the feed against the per-token prices used last time and
//! dirties the cycles touching any token whose USD price changed, so the
//! standing set stays batch-identical even under a drifting CEX feed —
//! while a universe whose prices *didn't* move pays nothing.
//!
//! # The profitability screen and the zero-allocation hot path
//!
//! Re-evaluation itself is screened: before a dirty cycle pays for curve
//! assembly, price resolution, and the strategy fan-out (the convex
//! solver dominates), the engine consults the [`CycleIndex`]'s
//! incrementally maintained log-sum. A cycle whose running `Σ log p` sits
//! at or below `-`[`CycleIndex::SCREEN_DRIFT_MARGIN`] is provably not an
//! arbitrage loop — the full path would classify it `NotArbitrage` and
//! drop it — so the engine drops it directly and counts it in
//! [`StreamStats::cycles_screened_out`]. When the effective gross floor
//! (`execution_cost_usd + min_net_profit_usd`) is positive, a second
//! sound screen applies: no trading plan can extract more USD from a
//! cycle's pools than `Σ_pools (√(Pa·x) − √(Pb·y))²` (each pool's value
//! at feed prices never drops below its `2√(k·Pa·Pb)` alignment minimum,
//! and with fees `k` never decreases), so cycles whose bound cannot clear
//! the floor skip strategy evaluation too
//! ([`StreamStats::cycles_floor_screened`]). Both screens are
//! conservative — borderline cycles fall through to the exact path — so
//! output stays bit-identical with the screen on or off
//! (`tests/screen_equivalence.rs`).
//!
//! Survivors are prepared into a reusable scratch arena (flat
//! structure-of-arrays buffers for curves/tokens/prices, span-indexed
//! evaluation slots with per-slot reusable `ArbLoop`s) and evaluated by
//! an in-place `for_each` fan-out: in the steady state the refresh
//! performs **zero heap allocation** in this scratch path
//! ([`StreamStats::scratch_grow_events`] stays flat once warm).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use arb_amm::pool::Pool;
use arb_cex::feed::PriceFeed;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_display;
use arb_graph::{CycleId, CycleIndex, SyncOutcome, TokenGraph};
use arb_obs::{Counter, Obs, SpanTimer};
use rayon::prelude::*;

use crate::bounds::{floor_verdict, FloorVerdict};
use crate::checkpoint::{EngineCheckpoint, PoolSlot};
use crate::dirty::DirtyCycleSet;
use crate::error::EngineError;
use crate::opportunity::ArbitrageOpportunity;
use crate::pipeline::OpportunityPipeline;
use crate::scratch::{EvalSlot, ScratchArena};

/// Cumulative counters for one streaming engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events consumed (all variants).
    pub events_applied: usize,
    /// `Sync` reserve updates applied to the graph.
    pub syncs_applied: usize,
    /// Pools added from `PoolCreated` events.
    pub pools_added: usize,
    /// Pools retired after degenerate reserves.
    pub pools_retired: usize,
    /// Retired pools revived by a later valid `Sync`.
    pub pools_revived: usize,
    /// Cycles newly indexed for added/revived pools.
    pub cycles_added: usize,
    /// Cycles retired with their pools.
    pub cycles_retired: usize,
    /// Cycle-ids marked dirty by events (deduplicated per batch).
    pub cycles_dirtied: usize,
    /// Dirty cycles actually re-examined across all refreshes.
    pub cycles_evaluated: usize,
    /// Strategy evaluation attempts on dirty profitable cycles.
    pub strategy_evaluations: usize,
    /// Live cycles whose standing evaluation was reused instead of being
    /// recomputed — the per-refresh gap to a full rescan, accumulated.
    pub evaluations_saved: usize,
    /// Refresh passes run.
    pub refreshes: usize,
    /// Dirty cycles the incremental log-sum screen dropped without
    /// preparation or strategy evaluation (provably `Σ log p ≤ 0`).
    pub cycles_screened_out: usize,
    /// Dirty cycles dropped because a sound profit upper bound could
    /// not clear the effective gross floor (execution cost + net-profit
    /// floor) at current feed prices — by either the pool-potential or
    /// the per-hop fee-aware bound.
    pub cycles_floor_screened: usize,
    /// The subset of [`StreamStats::cycles_floor_screened`] only the
    /// per-hop fee-aware bound could discharge — marginal
    /// whale-displaced loops whose book displacement (pool-potential
    /// bound) looks huge but whose fee-adjusted marginal rates cannot
    /// clear the floor.
    pub cycles_hop_screened: usize,
    /// Dirty cycles skipped because a hop's fee-adjusted rate degenerated
    /// (`Σ log p = -∞`) — counted separately from ordinary non-arbitrage
    /// cycles instead of being conflated with them.
    pub cycles_degenerate_skipped: usize,
    /// O(1) `new − old` delta updates applied to per-cycle log-sums.
    pub screen_delta_updates: usize,
    /// Exact log-sum resummations (periodic drift control, or a
    /// non-finite rate passing through).
    pub screen_resummations: usize,
    /// Scratch-arena capacity-growth episodes; flat once warm ⇔ the
    /// refresh fan-out scratch path is allocation-free.
    pub scratch_grow_events: usize,
    /// Arena slots tracked by the generation-stamped dense dirty bitset
    /// (which replaced the old `BTreeSet<CycleId>` dirty set).
    pub dirty_bitset_capacity: usize,
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events ({} syncs), {} cycles dirtied, {} evaluated \
             ({} screened, {} floor-screened ({} by hop bound), \
             {} degenerate), {} evaluations saved over {} refreshes \
             (+{} pools, -{} pools, {} revived; screen {}Δ/{}Σ, \
             bitset {} slots, {} scratch grows)",
            self.events_applied,
            self.syncs_applied,
            self.cycles_dirtied,
            self.cycles_evaluated,
            self.cycles_screened_out,
            self.cycles_floor_screened,
            self.cycles_hop_screened,
            self.cycles_degenerate_skipped,
            self.evaluations_saved,
            self.refreshes,
            self.pools_added,
            self.pools_retired,
            self.pools_revived,
            self.screen_delta_updates,
            self.screen_resummations,
            self.dirty_bitset_capacity,
            self.scratch_grow_events
        )
    }
}

/// Pre-resolved registry instruments mirroring [`StreamStats`] under
/// `engine.*`, plus the refresh/rank span timers.
///
/// Counters are *additive* across engines sharing a registry: each
/// engine pushes only the delta since its last sync (`mirrored`), so a
/// sharded fleet's registry totals are the sum over every engine that
/// ever lived — exactly what [`crate::ScreenTotals`] reports, rebuilds
/// included. Syncs happen at refresh boundaries (the end of every tick
/// path), so a snapshot taken between ticks always agrees with the
/// legacy struct.
#[derive(Debug)]
struct EngineObs {
    refresh: SpanTimer,
    rank: SpanTimer,
    events_applied: Counter,
    syncs_applied: Counter,
    pools_added: Counter,
    pools_retired: Counter,
    pools_revived: Counter,
    cycles_added: Counter,
    cycles_retired: Counter,
    cycles_dirtied: Counter,
    cycles_evaluated: Counter,
    strategy_evaluations: Counter,
    evaluations_saved: Counter,
    refreshes: Counter,
    cycles_screened_out: Counter,
    cycles_floor_screened: Counter,
    cycles_hop_screened: Counter,
    cycles_degenerate_skipped: Counter,
    screen_delta_updates: Counter,
    screen_resummations: Counter,
    scratch_grow_events: Counter,
    dirty_bitset_capacity: Counter,
    /// The stats value last pushed to the registry; the next sync adds
    /// only the field-wise delta beyond this.
    mirrored: StreamStats,
}

impl EngineObs {
    fn new(obs: &Obs) -> Self {
        let registry = obs.registry();
        EngineObs {
            refresh: obs.span("engine.refresh.eval_ns"),
            rank: obs.span("engine.rank_ns"),
            events_applied: registry.counter("engine.events_applied"),
            syncs_applied: registry.counter("engine.syncs_applied"),
            pools_added: registry.counter("engine.pools_added"),
            pools_retired: registry.counter("engine.pools_retired"),
            pools_revived: registry.counter("engine.pools_revived"),
            cycles_added: registry.counter("engine.cycles_added"),
            cycles_retired: registry.counter("engine.cycles_retired"),
            cycles_dirtied: registry.counter("engine.cycles_dirtied"),
            cycles_evaluated: registry.counter("engine.cycles_evaluated"),
            strategy_evaluations: registry.counter("engine.strategy_evaluations"),
            evaluations_saved: registry.counter("engine.evaluations_saved"),
            refreshes: registry.counter("engine.refreshes"),
            cycles_screened_out: registry.counter("engine.cycles_screened_out"),
            cycles_floor_screened: registry.counter("engine.cycles_floor_screened"),
            cycles_hop_screened: registry.counter("engine.cycles_hop_screened"),
            cycles_degenerate_skipped: registry.counter("engine.cycles_degenerate_skipped"),
            screen_delta_updates: registry.counter("engine.screen_delta_updates"),
            screen_resummations: registry.counter("engine.screen_resummations"),
            scratch_grow_events: registry.counter("engine.scratch_grow_events"),
            dirty_bitset_capacity: registry.counter("engine.dirty_bitset_capacity"),
            mirrored: StreamStats::default(),
        }
    }

    /// Pushes the delta between `current` and the last sync into the
    /// registry. Every [`StreamStats`] field is monotone over one
    /// engine's lifetime, so the deltas are always non-negative.
    fn sync(&mut self, current: &StreamStats) {
        let m = &self.mirrored;
        self.events_applied
            .add((current.events_applied - m.events_applied) as u64);
        self.syncs_applied
            .add((current.syncs_applied - m.syncs_applied) as u64);
        self.pools_added
            .add((current.pools_added - m.pools_added) as u64);
        self.pools_retired
            .add((current.pools_retired - m.pools_retired) as u64);
        self.pools_revived
            .add((current.pools_revived - m.pools_revived) as u64);
        self.cycles_added
            .add((current.cycles_added - m.cycles_added) as u64);
        self.cycles_retired
            .add((current.cycles_retired - m.cycles_retired) as u64);
        self.cycles_dirtied
            .add((current.cycles_dirtied - m.cycles_dirtied) as u64);
        self.cycles_evaluated
            .add((current.cycles_evaluated - m.cycles_evaluated) as u64);
        self.strategy_evaluations
            .add((current.strategy_evaluations - m.strategy_evaluations) as u64);
        self.evaluations_saved
            .add((current.evaluations_saved - m.evaluations_saved) as u64);
        self.refreshes.add((current.refreshes - m.refreshes) as u64);
        self.cycles_screened_out
            .add((current.cycles_screened_out - m.cycles_screened_out) as u64);
        self.cycles_floor_screened
            .add((current.cycles_floor_screened - m.cycles_floor_screened) as u64);
        self.cycles_hop_screened
            .add((current.cycles_hop_screened - m.cycles_hop_screened) as u64);
        self.cycles_degenerate_skipped
            .add((current.cycles_degenerate_skipped - m.cycles_degenerate_skipped) as u64);
        self.screen_delta_updates
            .add((current.screen_delta_updates - m.screen_delta_updates) as u64);
        self.screen_resummations
            .add((current.screen_resummations - m.screen_resummations) as u64);
        self.scratch_grow_events
            .add((current.scratch_grow_events - m.scratch_grow_events) as u64);
        self.dirty_bitset_capacity
            .add((current.dirty_bitset_capacity - m.dirty_bitset_capacity) as u64);
        self.mirrored = *current;
    }
}

/// The ranked output of one streaming refresh.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// The standing opportunity set in execution-priority order.
    pub opportunities: Vec<ArbitrageOpportunity>,
    /// Cumulative engine counters at the time of the refresh.
    pub stats: StreamStats,
}

impl StreamReport {
    /// The best standing opportunity, if any.
    pub fn best(&self) -> Option<&ArbitrageOpportunity> {
        self.opportunities.first()
    }
}

/// The incremental engine: an owned graph + cycle index + standing
/// opportunity set, advanced by event batches.
#[derive(Debug)]
pub struct StreamingEngine {
    pipeline: OpportunityPipeline,
    graph: TokenGraph,
    index: CycleIndex,
    dirty: DirtyCycleSet,
    /// Reusable flat buffers + evaluation slots for the refresh hot
    /// path; grows to a high-water mark, then never allocates again.
    scratch: ScratchArena,
    standing: BTreeMap<CycleId, ArbitrageOpportunity>,
    /// USD price per token index as of the last refresh (`None` =
    /// unpriced then). Refreshes diff the feed against this to dirty the
    /// cycles a price move invalidates.
    feed_prices: Vec<Option<f64>>,
    /// Bumped whenever the standing set may have changed (conservative:
    /// re-inserting a bitwise-identical evaluation still counts). Lets
    /// callers cache derived views — the sharded runtime keeps each
    /// shard's ranked list and re-clones it only when this moves.
    revision: u64,
    /// Ranked view memoized per revision: `ranked()` at an unchanged
    /// revision re-clones this instead of re-sorting the standing set.
    /// Interior mutability because ranking is logically a read.
    rank_cache: Mutex<Option<(u64, Vec<ArbitrageOpportunity>)>>,
    /// How many times `ranked()` actually sorted (cache misses).
    rank_sorts: AtomicUsize,
    stats: StreamStats,
    /// Registry mirror + span timers, when observability is attached.
    obs: Option<EngineObs>,
}

impl StreamingEngine {
    /// Builds the engine over an initial pool universe: constructs the
    /// graph, enumerates the cycle index once, and marks every cycle
    /// dirty so the first refresh produces the full cold-start ranking.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for an invalid pipeline config and
    /// [`EngineError::Graph`] on graph/index construction failures.
    pub fn new(pipeline: OpportunityPipeline, pools: Vec<Pool>) -> Result<Self, EngineError> {
        let graph = TokenGraph::new(pools)?;
        Self::with_graph(pipeline, graph)
    }

    /// Builds the engine over an already-constructed graph, which may
    /// contain retired slots (e.g. a chain mirror where some pools have
    /// degenerated — they keep their slot for id alignment and revive on
    /// a later valid `Sync`). Retired pools contribute no cycles.
    ///
    /// # Errors
    ///
    /// See [`StreamingEngine::new`].
    pub fn with_graph(
        pipeline: OpportunityPipeline,
        graph: TokenGraph,
    ) -> Result<Self, EngineError> {
        let config = *pipeline.config();
        config.validate()?;
        let index = CycleIndex::build(&graph, config.min_cycle_len, config.max_cycle_len)?;
        let mut dirty = DirtyCycleSet::new();
        for (id, _) in index.iter_live() {
            dirty.insert(id);
        }
        let stats = StreamStats {
            cycles_added: dirty.len(),
            cycles_dirtied: dirty.len(),
            dirty_bitset_capacity: dirty.capacity(),
            ..StreamStats::default()
        };
        Ok(StreamingEngine {
            pipeline,
            graph,
            index,
            dirty,
            scratch: ScratchArena::default(),
            standing: BTreeMap::new(),
            feed_prices: Vec::new(),
            revision: 0,
            rank_cache: Mutex::new(None),
            rank_sorts: AtomicUsize::new(0),
            stats,
            obs: None,
        })
    }

    /// Attaches observability: an `engine.refresh.eval_ns` span per
    /// refresh, an `engine.rank_ns` span per ranking, and an additive
    /// registry mirror of [`StreamStats`] under `engine.*` (synced at
    /// refresh boundaries). Counters already accumulated — cold-start
    /// cycle enumeration, work done before attachment — are pushed
    /// immediately, so the registry never under-reports.
    pub fn set_obs(&mut self, obs: &Obs) {
        let mut engine_obs = EngineObs::new(obs);
        engine_obs.sync(&self.stats);
        self.obs = Some(engine_obs);
    }

    /// The engine's current graph view.
    pub fn graph(&self) -> &TokenGraph {
        &self.graph
    }

    /// The persistent cycle index.
    pub fn index(&self) -> &CycleIndex {
        &self.index
    }

    /// The inner pipeline (strategy set, ranking policy, config).
    pub fn pipeline(&self) -> &OpportunityPipeline {
        &self.pipeline
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Cycles currently awaiting re-evaluation.
    pub fn pending_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// A monotone counter that moves whenever the standing opportunity
    /// set may have changed (over-approximate: re-evaluating a cycle to
    /// the same result still counts). Equal revisions across two calls
    /// guarantee [`StreamingEngine::ranked`] would return the same list,
    /// so derived views can be cached against it.
    pub fn standing_revision(&self) -> u64 {
        self.revision
    }

    /// Marks every live cycle dirty, forcing the next refresh to
    /// re-evaluate the full standing set. Feed moves are detected
    /// automatically per token ([`StreamingEngine::refresh`]); this is
    /// the blunt escape hatch for anything else (e.g. a strategy whose
    /// output depends on state outside the graph and feed).
    pub fn mark_all_dirty(&mut self) {
        for (id, _) in self.index.iter_live() {
            if self.dirty.insert(id) {
                self.stats.cycles_dirtied += 1;
            }
        }
    }

    /// Applies a batch of chain events to the owned graph, marks the
    /// affected cycles dirty via the index, re-evaluates **only** those,
    /// and returns the merged standing ranking.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Desync`] — an event references a pool this engine
    ///   never saw; rebuild from a fresh snapshot.
    /// * [`EngineError::Graph`] / [`EngineError::Strategy`] — forwarded
    ///   evaluation failures (benign thin-interior infeasibility is only
    ///   counted).
    pub fn apply_events<F: PriceFeed>(
        &mut self,
        events: &[Event],
        feed: &F,
    ) -> Result<StreamReport, EngineError> {
        self.advance(events, feed)?;
        Ok(StreamReport {
            opportunities: self.ranked(),
            stats: self.stats,
        })
    }

    /// [`StreamingEngine::apply_events`] without materializing the ranked
    /// report: applies the batch and brings the standing set current, but
    /// skips the clone + sort of [`StreamingEngine::ranked`]. Callers that
    /// rank elsewhere (the sharded runtime merges across engines) pair
    /// this with [`StreamingEngine::standing_revision`] to only re-rank
    /// when something actually changed.
    ///
    /// # Errors
    ///
    /// See [`StreamingEngine::apply_events`].
    pub fn advance<F: PriceFeed>(&mut self, events: &[Event], feed: &F) -> Result<(), EngineError> {
        self.ingest(events)?;
        self.refresh_standing(feed)
    }

    /// Applies a batch of events to the graph, index, and dirty set
    /// **without** re-evaluating anything: the first half of
    /// [`StreamingEngine::advance`]. Callers that need to adjust the
    /// universe between application and evaluation (the sharded runtime
    /// retires mirrored non-owned slots there, so no shard evaluates
    /// cycles it is about to discard) follow up with
    /// [`StreamingEngine::refresh_standing`].
    ///
    /// # Errors
    ///
    /// See [`StreamingEngine::apply_events`].
    pub fn ingest(&mut self, events: &[Event]) -> Result<(), EngineError> {
        for event in events {
            self.apply_event(event)?;
        }
        Ok(())
    }

    /// Pushes any un-mirrored counter movement into the registry, when
    /// observability is attached. Called at refresh boundaries so the
    /// registry tracks the legacy struct tick by tick; callers driving
    /// `ingest`/`retire_pool` directly between refreshes can call it
    /// explicitly before snapshotting.
    pub fn sync_obs(&mut self) {
        let stats = self.stats;
        if let Some(obs) = &mut self.obs {
            obs.sync(&stats);
        }
    }

    /// Re-evaluates the dirty set against `feed` and returns the standing
    /// ranking. Tokens whose USD price moved since the last refresh dirty
    /// their cycles first, so standing valuations never go stale under a
    /// drifting feed. A no-op refresh (nothing dirty, no price moves)
    /// just re-ranks.
    ///
    /// # Errors
    ///
    /// Forwards evaluation failures; see [`StreamingEngine::apply_events`].
    /// A failed refresh leaves the standing ranking and evaluation
    /// counters untouched and keeps every pending cycle dirty (including
    /// cycles dirtied by this call's feed diff), so the engine stays
    /// consistent and the refresh can simply be retried.
    pub fn refresh<F: PriceFeed>(&mut self, feed: &F) -> Result<StreamReport, EngineError> {
        self.refresh_standing(feed)?;
        Ok(StreamReport {
            opportunities: self.ranked(),
            stats: self.stats,
        })
    }

    /// [`StreamingEngine::refresh`] minus the report: re-evaluates the
    /// dirty set and updates the standing map without cloning or ranking
    /// it.
    ///
    /// The pass is screen-first and allocation-free in the steady state:
    /// dirty cycles whose incremental log-sum (or feed-priced profit
    /// bound) proves the full evaluation would drop them are dropped
    /// directly; survivors are prepared into the engine's reusable
    /// scratch arena and evaluated by an in-place fan-out. See the
    /// module docs for the soundness argument.
    ///
    /// # Errors
    ///
    /// See [`StreamingEngine::refresh`]. A failed refresh leaves the
    /// standing ranking and evaluation counters untouched and keeps
    /// every pending cycle dirty (including cycles dirtied by this
    /// call's feed diff), so the engine stays consistent and the refresh
    /// can simply be retried.
    pub fn refresh_standing<F: PriceFeed>(&mut self, feed: &F) -> Result<(), EngineError> {
        // Clone the timer out so the guard doesn't borrow `self` across
        // the field destructure below; SpanTimer clones are Arc-cheap.
        let refresh_timer = self.obs.as_ref().map(|o| o.refresh.clone());
        let _refresh_span = refresh_timer.as_ref().map(SpanTimer::start);
        self.dirty_feed_moves(feed);

        let StreamingEngine {
            pipeline,
            graph,
            index,
            dirty,
            scratch,
            standing,
            revision,
            stats,
            obs,
            ..
        } = self;
        let config = pipeline.config();
        let screen = config.screen;
        // A standing entry needs `gross > 0` and `gross − cost ≥ floor`;
        // when the combined requirement is positive, a sound gross upper
        // bound can discharge cycles without evaluating them.
        let required_gross = config.execution_cost_usd + config.min_net_profit_usd;
        let floor_screen = screen && required_gross > 0.0;

        // Phase 1 — screen + prepare. Nothing engine-visible mutates
        // here (counter deltas are committed only after evaluation
        // succeeds), so any `?` leaves the engine retryable.
        scratch.begin_refresh();
        let mut screened_out = 0usize;
        let mut floor_screened = 0usize;
        let mut hop_screened = 0usize;
        let mut degenerate_skipped = 0usize;
        for id in dirty.iter() {
            let cycle = index.get(id).expect("dirty set only holds live cycles");
            if screen {
                let log_sum = index.screen_log_sum(id).expect("live cycles are screened");
                if log_sum <= -CycleIndex::SCREEN_DRIFT_MARGIN {
                    // Sound: the exact Σ log p is certainly ≤ 0, so the
                    // full path would classify this NotArbitrage (or
                    // Degenerate) and drop it — identical outcome,
                    // without curves, prices, or strategies.
                    scratch.dropped.push(id);
                    screened_out += 1;
                    continue;
                }
            }
            // Exact classification, mirroring the batch pipeline's
            // `prepare_candidate` step for step (the equivalence tests
            // hold the two paths together).
            let log_rate = graph.cycle_log_rate(cycle)?;
            if log_rate == f64::NEG_INFINITY {
                scratch.dropped.push(id);
                degenerate_skipped += 1;
                continue;
            }
            if log_rate.is_nan() || log_rate <= 0.0 {
                scratch.dropped.push(id);
                continue;
            }
            if floor_screen {
                // Either sound gross bound (pool-potential, or the
                // per-hop fee-aware bound for whale-displaced loops)
                // may discharge the cycle; both carry a relative safety
                // margin so strategy-side rounding can never flip a
                // borderline keep into a screened drop.
                match floor_verdict(graph, cycle, feed, required_gross) {
                    FloorVerdict::Keep => {}
                    verdict => {
                        scratch.dropped.push(id);
                        floor_screened += 1;
                        if verdict == FloorVerdict::HopBound {
                            hop_screened += 1;
                        }
                        continue;
                    }
                }
            }
            // Prepare into the flat buffers: the same validation, curve
            // construction, and price resolution as
            // `prepare_candidate`, minus its allocations.
            cycle.validate(graph)?;
            let offset = scratch.hops.len();
            for (&pool, &token_in) in cycle.pools().iter().zip(cycle.tokens()) {
                scratch.hops.push(graph.curve(pool, token_in)?);
            }
            scratch.tokens.extend_from_slice(cycle.tokens());
            let mut unpriced = false;
            for &token in cycle.tokens() {
                match feed.usd_price(token) {
                    Some(price) => scratch.prices.push(price),
                    None => {
                        unpriced = true;
                        break;
                    }
                }
            }
            if unpriced {
                scratch.hops.truncate(offset);
                scratch.tokens.truncate(offset);
                scratch.prices.truncate(offset);
                scratch.dropped.push(id);
                continue;
            }
            scratch.push_candidate(id, offset, cycle.len());
        }
        scratch.end_prepare();

        // Phase 2 — the strategy fan-out, in place over the scratch
        // slots: every worker writes into its own slot, nothing is
        // collected, nothing allocates.
        {
            let (hops, tokens, prices, slots) = scratch.split_for_eval();
            let evaluate = |slot: &mut EvalSlot| {
                let span = slot.offset..slot.offset + slot.len;
                let cycle = index.get(slot.id).expect("slots hold live cycles");
                let outcome = slot
                    .loop_
                    .rebuild(&hops[span.clone()], &tokens[span.clone()])
                    .map_err(EngineError::from)
                    .and_then(|()| pipeline.evaluate_cycle(cycle, &slot.loop_, &prices[span]));
                slot.outcome = Some(outcome);
            };
            if config.parallel && slots.len() > 1 {
                slots.par_iter_mut().for_each(evaluate);
            } else {
                slots.iter_mut().for_each(evaluate);
            }
        }
        if scratch
            .slots()
            .iter()
            .any(|slot| matches!(slot.outcome, Some(Err(_))))
        {
            for slot in scratch.slots_mut() {
                if let Some(Err(error)) = slot.outcome.take() {
                    return Err(error);
                }
            }
        }

        // Phase 3 — commit. Infallible from here on.
        let dirty_count = dirty.len();
        dirty.clear();
        stats.refreshes += 1;
        stats.cycles_evaluated += dirty_count;
        stats.evaluations_saved += index.live_cycles() - dirty_count;
        stats.cycles_screened_out += screened_out;
        stats.cycles_floor_screened += floor_screened;
        stats.cycles_hop_screened += hop_screened;
        stats.cycles_degenerate_skipped += degenerate_skipped;
        stats.scratch_grow_events = scratch.grow_events();
        stats.dirty_bitset_capacity = dirty.capacity();
        let mut changed = false;
        for &id in &scratch.dropped {
            changed |= standing.remove(&id).is_some();
        }
        let floor = config.min_net_profit_usd;
        for slot in scratch.slots_mut() {
            let (opportunity, attempts, _benign) = slot
                .outcome
                .take()
                .expect("fan-out filled every slot")
                .expect("errors were drained above");
            stats.strategy_evaluations += attempts;
            match opportunity {
                Some(opp) if opp.net_profit.value() >= floor => {
                    standing.insert(slot.id, opp);
                    changed = true;
                }
                _ => {
                    changed |= standing.remove(&slot.id).is_some();
                }
            }
        }
        if changed {
            *revision += 1;
        }
        if let Some(obs) = obs {
            obs.sync(stats);
        }

        Ok(())
    }

    /// The standing opportunity set in execution-priority order (the
    /// pipeline's ranking policy, tie-breaks, and `top_k` cut). Sorts
    /// references and deep-clones only the survivors of the `top_k`
    /// cut, memoized per [`StreamingEngine::standing_revision`]: repeat
    /// calls at an unchanged revision skip the sort and re-clone the
    /// cached list — with hundreds of standing opportunities and a small
    /// `top_k`, the old clone-everything-then-sort path dominated quiet
    /// ticks.
    pub fn ranked(&self) -> Vec<ArbitrageOpportunity> {
        let _rank_span = self.obs.as_ref().map(|o| o.rank.start());
        let mut cache = self.rank_cache.lock().expect("rank cache lock");
        if let Some((revision, ranked)) = cache.as_ref() {
            if *revision == self.revision {
                return ranked.clone();
            }
        }
        self.rank_sorts.fetch_add(1, Ordering::Relaxed);
        let mut refs: Vec<&ArbitrageOpportunity> = self.standing.values().collect();
        refs.sort_by(|a, b| self.pipeline.compare(a, b));
        if let Some(k) = self.pipeline.config().top_k {
            refs.truncate(k);
        }
        let ranked: Vec<ArbitrageOpportunity> = refs.into_iter().cloned().collect();
        *cache = Some((self.revision, ranked.clone()));
        ranked
    }

    /// How many [`StreamingEngine::ranked`] calls fell through the
    /// per-revision cache and re-sorted the standing set. Repeated
    /// `ranked()` calls at an unchanged [`StreamingEngine::standing_revision`]
    /// leave this flat.
    pub fn rank_sorts(&self) -> usize {
        self.rank_sorts.load(Ordering::Relaxed)
    }

    /// Captures this engine's durable state as plain data: every pool
    /// slot, the cycle-index arena, and the standing revision. The
    /// standing opportunity values are not captured —
    /// [`StreamingEngine::restore`] recomputes them bit-identically on
    /// its first refresh, because evaluation is a pure function of
    /// (reserves, feed).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let (min_cycle_len, max_cycle_len) = self.index.length_bounds();
        let (arena, free) = self.index.to_parts();
        EngineCheckpoint {
            min_cycle_len,
            max_cycle_len,
            slots: (0..self.graph.pool_count())
                .map(|i| PoolSlot::capture(&self.graph, arb_amm::pool::PoolId::new(i as u32)))
                .collect(),
            arena,
            free,
            standing_revision: self.revision,
        }
    }

    /// Rebuilds an engine from a checkpoint: same graph (including
    /// retired slots), same cycle index (same `CycleId`s, same future
    /// slot recycling), restored standing revision. Every live cycle
    /// starts dirty and the standing set empty, so the first refresh
    /// reproduces the checkpointed ranking bit-for-bit under the same
    /// feed; cumulative [`StreamStats`] restart from zero.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] — invalid pipeline config, or cycle
    ///   length bounds that contradict the checkpoint's.
    /// * [`EngineError::Graph`] — the checkpoint's slots or arena are
    ///   internally inconsistent
    ///   ([`arb_graph::GraphError::InvalidCheckpoint`]).
    pub fn restore(
        pipeline: OpportunityPipeline,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Self, EngineError> {
        let config = *pipeline.config();
        config.validate()?;
        if (config.min_cycle_len, config.max_cycle_len)
            != (checkpoint.min_cycle_len, checkpoint.max_cycle_len)
        {
            return Err(EngineError::Config(format!(
                "checkpoint cycle bounds {}..={} do not match pipeline config {}..={}",
                checkpoint.min_cycle_len,
                checkpoint.max_cycle_len,
                config.min_cycle_len,
                config.max_cycle_len
            )));
        }
        let graph = checkpoint.build_graph()?;
        let index = CycleIndex::from_parts(
            &graph,
            checkpoint.min_cycle_len,
            checkpoint.max_cycle_len,
            checkpoint.arena.clone(),
            checkpoint.free.clone(),
        )?;
        let mut dirty = DirtyCycleSet::new();
        for (id, _) in index.iter_live() {
            dirty.insert(id);
        }
        let stats = StreamStats {
            cycles_added: dirty.len(),
            cycles_dirtied: dirty.len(),
            dirty_bitset_capacity: dirty.capacity(),
            ..StreamStats::default()
        };
        Ok(StreamingEngine {
            pipeline,
            graph,
            index,
            dirty,
            scratch: ScratchArena::default(),
            standing: BTreeMap::new(),
            feed_prices: Vec::new(),
            revision: checkpoint.standing_revision,
            rank_cache: Mutex::new(None),
            rank_sorts: AtomicUsize::new(0),
            stats,
            obs: None,
        })
    }

    fn apply_event(&mut self, event: &Event) -> Result<(), EngineError> {
        self.stats.events_applied += 1;
        match *event {
            Event::Sync {
                pool,
                reserve_a,
                reserve_b,
            } => {
                if pool.index() >= self.graph.pool_count() {
                    return Err(EngineError::Desync("Sync for a pool never seen"));
                }
                self.stats.syncs_applied += 1;
                let was_live = self.graph.is_live(pool);
                // Capture the pre-sync cached log rates: a live→live
                // update feeds the screen an O(1) delta per containing
                // cycle instead of a recompute.
                let old_log_rates = self.graph.pool_log_rates(pool);
                match self
                    .graph
                    .apply_sync(pool, to_display(reserve_a), to_display(reserve_b))?
                {
                    SyncOutcome::Updated => {
                        let update = self.index.on_pool_synced(&self.graph, pool, old_log_rates);
                        self.stats.screen_delta_updates += update.deltas;
                        self.stats.screen_resummations += update.resummations;
                        self.mark_pool_dirty(pool);
                    }
                    // `Retired` is idempotent at the graph layer; only a
                    // live → retired transition has cycles to drop (and
                    // counts as a retirement).
                    SyncOutcome::Retired if was_live => self.retire_pool_cycles(pool),
                    SyncOutcome::Retired => {}
                    SyncOutcome::Revived => {
                        self.stats.pools_revived += 1;
                        self.extend_index(pool)?;
                    }
                }
            }
            Event::PoolCreated {
                pool,
                token_a,
                token_b,
                reserve_a,
                reserve_b,
                fee,
            } => {
                if pool.index() != self.graph.pool_count() {
                    return Err(EngineError::Desync("PoolCreated out of slot order"));
                }
                let analysis = Pool::new(
                    token_a,
                    token_b,
                    to_display(reserve_a),
                    to_display(reserve_b),
                    fee,
                )
                .map_err(arb_graph::GraphError::from)?;
                let assigned = self.graph.add_pool(analysis);
                debug_assert_eq!(assigned, pool);
                self.stats.pools_added += 1;
                self.extend_index(pool)?;
            }
            Event::Swap { pool, .. } | Event::Mint { pool, .. } | Event::Burn { pool, .. } => {
                // Reserve changes arrive via the paired `Sync`; these only
                // pre-mark the pool's cycles (cheap and idempotent).
                if pool.index() >= self.graph.pool_count() {
                    return Err(EngineError::Desync("event for a pool never seen"));
                }
                self.mark_pool_dirty(pool);
            }
            // `Event` is non-exhaustive; unknown variants carry no reserve
            // deltas this engine understands, so they are counted and
            // skipped rather than desyncing the stream.
            _ => {}
        }
        Ok(())
    }

    /// Diffs `feed` against the prices used at the last refresh and marks
    /// the cycles of every token whose price changed (a cycle visiting a
    /// token always enters it through one of the token's adjacent pools,
    /// so the pool posting lists cover it). Bit-level comparison: any
    /// representable move, however small, re-values its cycles.
    fn dirty_feed_moves<F: PriceFeed>(&mut self, feed: &F) {
        let tokens = self.graph.token_count();
        if self.feed_prices.len() < tokens {
            self.feed_prices.resize(tokens, None);
        }
        self.scratch.moved_pools.clear();
        for index in 0..tokens {
            let token = arb_amm::token::TokenId::new(index as u32);
            let now = feed.usd_price(token);
            if self.feed_prices[index].map(f64::to_bits) != now.map(f64::to_bits) {
                self.feed_prices[index] = now;
                self.scratch
                    .moved_pools
                    .extend(self.graph.neighbors(token).iter().map(|e| e.pool));
            }
        }
        // Indexed loop: `mark_pool_dirty` needs `&mut self`, so the
        // reused buffer cannot stay borrowed across it.
        for position in 0..self.scratch.moved_pools.len() {
            let pool = self.scratch.moved_pools[position];
            self.mark_pool_dirty(pool);
        }
    }

    fn mark_pool_dirty(&mut self, pool: arb_amm::pool::PoolId) {
        for entry in self.index.cycles_for_pool(pool) {
            if self.dirty.insert(entry.cycle) {
                self.stats.cycles_dirtied += 1;
            }
        }
    }

    /// Drops a pool from this engine's universe: retires it in the graph
    /// and discards its cycles and any standing evaluations on them. The
    /// slot is kept (id stability), so later events for other pools keep
    /// decoding against the same id space; a retired slot only comes back
    /// through a valid `Sync`. The sharded runtime uses this to park pool
    /// slots a shard does not own.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Desync`] for a pool this engine never saw.
    pub fn retire_pool(&mut self, pool: arb_amm::pool::PoolId) -> Result<(), EngineError> {
        if pool.index() >= self.graph.pool_count() {
            return Err(EngineError::Desync("retire for a pool never seen"));
        }
        if self.graph.is_live(pool) {
            self.graph.remove_pool(pool)?;
            self.retire_pool_cycles(pool);
        }
        Ok(())
    }

    fn retire_pool_cycles(&mut self, pool: arb_amm::pool::PoolId) {
        self.stats.pools_retired += 1;
        for id in self.index.on_pool_removed(pool) {
            self.dirty.remove(id);
            if self.standing.remove(&id).is_some() {
                self.revision += 1;
            }
            self.stats.cycles_retired += 1;
        }
    }

    fn extend_index(&mut self, pool: arb_amm::pool::PoolId) -> Result<(), EngineError> {
        for id in self.index.on_pool_added(&self.graph, pool)? {
            self.stats.cycles_added += 1;
            if self.dirty.insert(id) {
                self.stats.cycles_dirtied += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::PoolId;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn p(i: u32) -> PoolId {
        PoolId::new(i)
    }

    fn paper_pools() -> Vec<Pool> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ]
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    fn sync(pool: u32, a: f64, b: f64) -> Event {
        Event::Sync {
            pool: p(pool),
            reserve_a: to_raw(a),
            reserve_b: to_raw(b),
        }
    }

    /// The streaming oracle: after any event batch the ranked set must be
    /// bit-identical to a fresh batch run on the engine's live pools.
    fn assert_matches_batch(engine: &StreamingEngine, feed: &PriceTable) {
        let pools: Vec<Pool> = engine.graph().live_pools().map(|(_, p)| *p).collect();
        let fresh = OpportunityPipeline::new(*engine.pipeline().config())
            .run(pools, feed)
            .unwrap();
        let streamed = engine.ranked();
        assert_eq!(streamed.len(), fresh.opportunities.len());
        for (s, f) in streamed.iter().zip(&fresh.opportunities) {
            assert_eq!(s.cycle.tokens(), f.cycle.tokens());
            assert_eq!(s.strategy, f.strategy);
            assert_eq!(
                s.gross_profit.value().to_bits(),
                f.gross_profit.value().to_bits()
            );
            assert_eq!(
                s.net_profit.value().to_bits(),
                f.net_profit.value().to_bits()
            );
        }
    }

    #[test]
    fn cold_start_equals_batch_run() {
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        let report = engine.refresh(&paper_feed()).unwrap();
        assert_eq!(report.opportunities.len(), 1);
        assert_eq!(report.best().unwrap().strategy, "convex");
        assert_matches_batch(&engine, &paper_feed());
    }

    #[test]
    fn ranked_caches_per_revision() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        let sorts_after_refresh = engine.rank_sorts();
        let first = engine.ranked();
        let revision = engine.standing_revision();
        // Repeat calls at an unchanged revision must not re-sort.
        for _ in 0..5 {
            let again = engine.ranked();
            assert_eq!(again.len(), first.len());
            for (a, b) in again.iter().zip(&first) {
                assert_eq!(a.cycle.pools(), b.cycle.pools());
                assert_eq!(
                    a.net_profit.value().to_bits(),
                    b.net_profit.value().to_bits()
                );
            }
        }
        assert_eq!(engine.standing_revision(), revision);
        assert_eq!(
            engine.rank_sorts(),
            sorts_after_refresh,
            "repeat ranked() calls at an unchanged revision re-sorted"
        );
        // Moving the standing set invalidates the cache exactly once:
        // apply_events ranks its report, repeat calls hit the cache.
        engine
            .apply_events(&[sync(0, 120.0, 180.0)], &feed)
            .unwrap();
        assert!(engine.standing_revision() > revision);
        engine.ranked();
        engine.ranked();
        assert_eq!(engine.rank_sorts(), sorts_after_refresh + 1);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn sync_dirties_only_affected_cycles() {
        let fee = FeeRate::UNISWAP_V2;
        // Two disjoint triangles: 0-1-2 (paper) and 3-4-5 (imbalanced).
        let mut pools = paper_pools();
        pools.push(Pool::new(t(3), t(4), 1_000.0, 1_050.0, fee).unwrap());
        pools.push(Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap());
        pools.push(Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap());
        let mut feed = paper_feed();
        feed.extend([(t(3), 1.0), (t(4), 1.0), (t(5), 1.0)]);

        let mut engine = StreamingEngine::new(OpportunityPipeline::default(), pools).unwrap();
        engine.refresh(&feed).unwrap();
        let evaluated_cold = engine.stats().cycles_evaluated;

        // Perturb one pool of the second triangle: only its two directed
        // cycles are dirtied, the paper triangle is untouched.
        let report = engine
            .apply_events(&[sync(3, 1_000.0, 1_060.0)], &feed)
            .unwrap();
        assert_eq!(report.stats.cycles_evaluated - evaluated_cold, 2);
        assert!(report.stats.evaluations_saved > 0);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn degenerate_sync_retires_then_revives() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        assert_eq!(engine.ranked().len(), 1);

        // Draining pool 0 breaks the triangle: no cycles, no standing set.
        let report = engine
            .apply_events(
                &[Event::Sync {
                    pool: p(0),
                    reserve_a: 0,
                    reserve_b: 0,
                }],
                &feed,
            )
            .unwrap();
        assert!(report.opportunities.is_empty());
        assert_eq!(report.stats.pools_retired, 1);
        assert_eq!(report.stats.cycles_retired, 2);
        assert_eq!(engine.index().live_cycles(), 0);

        // A second degenerate sync is idempotent: no double retirement.
        let report = engine
            .apply_events(
                &[Event::Sync {
                    pool: p(0),
                    reserve_a: 0,
                    reserve_b: 0,
                }],
                &feed,
            )
            .unwrap();
        assert_eq!(report.stats.pools_retired, 1, "{}", report.stats);
        assert_eq!(report.stats.cycles_retired, 2);

        // Reviving it restores the standing set exactly.
        let report = engine
            .apply_events(&[sync(0, 100.0, 200.0)], &feed)
            .unwrap();
        assert_eq!(report.opportunities.len(), 1);
        assert_eq!(report.stats.pools_revived, 1);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn pool_created_extends_the_universe() {
        let feed = {
            let mut f = paper_feed();
            f.set(t(3), 1.0);
            f
        };
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();

        // A parallel pool on (0,1) at a different price opens 2-cycles and
        // new triangles.
        let created = Event::PoolCreated {
            pool: p(3),
            token_a: t(0),
            token_b: t(1),
            reserve_a: to_raw(150.0),
            reserve_b: to_raw(250.0),
            fee: FeeRate::UNISWAP_V2,
        };
        let report = engine.apply_events(&[created], &feed).unwrap();
        assert_eq!(report.stats.pools_added, 1);
        assert!(report.stats.cycles_added > 0);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn out_of_order_events_desync() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        let err = engine
            .apply_events(&[sync(9, 1.0, 1.0)], &feed)
            .unwrap_err();
        assert!(matches!(err, EngineError::Desync(_)), "{err:?}");

        let gap = Event::PoolCreated {
            pool: p(7),
            token_a: t(0),
            token_b: t(3),
            reserve_a: to_raw(1.0),
            reserve_b: to_raw(1.0),
            fee: FeeRate::UNISWAP_V2,
        };
        let err = engine.apply_events(&[gap], &feed).unwrap_err();
        assert!(matches!(err, EngineError::Desync(_)), "{err:?}");
    }

    #[test]
    fn floor_and_top_k_match_pipeline_semantics() {
        let feed = paper_feed();
        let config = PipelineConfig {
            min_net_profit_usd: 1_000.0,
            ..PipelineConfig::default()
        };
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::new(config), paper_pools()).unwrap();
        let report = engine.refresh(&feed).unwrap();
        assert!(report.opportunities.is_empty(), "floored out");
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn mark_all_dirty_forces_full_revaluation() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        assert_eq!(engine.pending_dirty(), 0);
        engine.mark_all_dirty();
        assert_eq!(engine.pending_dirty(), engine.index().live_cycles());

        // A feed move re-values the standing set on the next refresh.
        let mut moved = feed.clone();
        moved.set(t(2), 25.0);
        let report = engine.refresh(&moved).unwrap();
        assert_matches_batch(&engine, &moved);
        assert_eq!(report.opportunities.len(), 1);
    }

    #[test]
    fn feed_moves_dirty_affected_cycles_automatically() {
        let fee = FeeRate::UNISWAP_V2;
        // Two disjoint triangles so a price move on one leaves the other
        // untouched.
        let mut pools = paper_pools();
        pools.push(Pool::new(t(3), t(4), 1_000.0, 1_080.0, fee).unwrap());
        pools.push(Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap());
        pools.push(Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap());
        let mut feed = paper_feed();
        feed.extend([(t(3), 1.0), (t(4), 1.0), (t(5), 1.0)]);

        let mut engine = StreamingEngine::new(OpportunityPipeline::default(), pools).unwrap();
        engine.refresh(&feed).unwrap();
        let evaluated_cold = engine.stats().cycles_evaluated;

        // No chain events, just a CEX move on token 4: only the second
        // triangle's two directed cycles re-evaluate, and the standing
        // set still equals a fresh batch run under the new feed.
        feed.set(t(4), 1.3);
        let report = engine.refresh(&feed).unwrap();
        assert_eq!(report.stats.cycles_evaluated - evaluated_cold, 2);
        assert_matches_batch(&engine, &feed);

        // A refresh with an unchanged feed re-evaluates nothing.
        let before = engine.stats().cycles_evaluated;
        engine.refresh(&feed).unwrap();
        assert_eq!(engine.stats().cycles_evaluated, before);
    }

    #[test]
    fn screen_drops_non_arb_cycles_without_preparing_them() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        // The cold start re-examined both directed triangle cycles; the
        // unprofitable direction (exact Σ log p < −fee drag) was screened
        // out by the incremental sum without curve/price preparation.
        assert_eq!(engine.stats().cycles_screened_out, 1, "{}", engine.stats());

        // A sync keeps the screen maintained by O(1) deltas and screens
        // the losing direction again on the next refresh.
        engine
            .apply_events(&[sync(0, 101.0, 199.0)], &feed)
            .unwrap();
        assert!(engine.stats().screen_delta_updates > 0);
        assert_eq!(engine.stats().cycles_screened_out, 2);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn unscreened_config_matches_screened_bit_for_bit() {
        let feed = paper_feed();
        let screened = StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        let config = PipelineConfig {
            screen: false,
            ..PipelineConfig::default()
        };
        let unscreened =
            StreamingEngine::new(OpportunityPipeline::new(config), paper_pools()).unwrap();
        let mut engines = [screened, unscreened];
        for engine in &mut engines {
            engine.refresh(&feed).unwrap();
        }
        for batch in [vec![sync(0, 101.0, 199.0)], vec![sync(1, 290.0, 210.0)]] {
            let [a, b] = &mut engines;
            let ra = a.apply_events(&batch, &feed).unwrap();
            let rb = b.apply_events(&batch, &feed).unwrap();
            assert_eq!(ra.opportunities.len(), rb.opportunities.len());
            for (x, y) in ra.opportunities.iter().zip(&rb.opportunities) {
                assert_eq!(
                    x.net_profit.value().to_bits(),
                    y.net_profit.value().to_bits()
                );
            }
        }
        assert_eq!(engines[1].stats().cycles_screened_out, 0);
        assert!(engines[0].stats().cycles_screened_out > 0);
    }

    #[test]
    fn floor_screen_skips_strategy_work_only_below_the_bound() {
        let feed = paper_feed();
        // The paper triangle's pool-potential bound is ≈ $2247; a floor
        // far above it screens the profitable direction without ever
        // running a strategy, a floor below it does not.
        let screened_out = |floor: f64| {
            let config = PipelineConfig {
                min_net_profit_usd: floor,
                ..PipelineConfig::default()
            };
            let mut engine =
                StreamingEngine::new(OpportunityPipeline::new(config), paper_pools()).unwrap();
            engine.refresh(&feed).unwrap();
            assert_matches_batch(&engine, &feed);
            (
                engine.stats().cycles_floor_screened,
                engine.stats().strategy_evaluations,
            )
        };
        let (floored_high, evals_high) = screened_out(10_000.0);
        assert_eq!(floored_high, 1, "profitable direction provably < floor");
        assert_eq!(evals_high, 0, "no strategy ran at all");
        let (floored_low, evals_low) = screened_out(100.0);
        assert_eq!(floored_low, 0, "bound cannot discharge a reachable floor");
        assert!(evals_low > 0);
    }

    #[test]
    fn hop_bound_discharges_marginal_loops_the_pool_bound_cannot() {
        // A high-fee triangle whose loop edge is barely positive: every
        // pool sits ~4% off mid (inside what the 3.5% fee band leaves as
        // a ~1% loop edge), so the realizable profit is cents — but the
        // fee-blind pool-potential bound still sees ~$4 of book
        // displacement per pool and cannot discharge a $5 gross floor.
        // The per-hop fee-aware bound can.
        let fee = FeeRate::from_ppm(35_000).unwrap();
        let pools = vec![
            Pool::new(t(0), t(1), 10_000.0, 10_400.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10_000.0, 10_400.0, fee).unwrap(),
            Pool::new(t(2), t(0), 10_000.0, 10_400.0, fee).unwrap(),
        ];
        let feed: PriceTable = [(t(0), 1.0), (t(1), 1.0), (t(2), 1.0)]
            .into_iter()
            .collect();
        let config = PipelineConfig {
            execution_cost_usd: 4.0,
            min_net_profit_usd: 1.0,
            ..PipelineConfig::default()
        };
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::new(config), pools.clone()).unwrap();
        engine.refresh(&feed).unwrap();
        assert_eq!(
            engine.stats().cycles_hop_screened,
            1,
            "the marginal direction must fall to the hop bound: {}",
            engine.stats()
        );
        assert_eq!(
            engine.stats().strategy_evaluations,
            0,
            "no strategy work on a fully screened universe: {}",
            engine.stats()
        );
        assert_matches_batch(&engine, &feed);

        // Control: without the hop bound's reach (no gross floor), the
        // same universe evaluates normally and ranks nothing above $1.
        let mut unfloored = StreamingEngine::new(OpportunityPipeline::default(), pools).unwrap();
        let report = unfloored.refresh(&feed).unwrap();
        assert_eq!(unfloored.stats().cycles_hop_screened, 0);
        for opp in &report.opportunities {
            assert!(
                opp.gross_profit.value() < 5.0,
                "loop was genuinely marginal"
            );
        }
    }

    #[test]
    fn steady_state_refreshes_stop_growing_the_scratch_arena() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        let mut flip = false;
        for _ in 0..3 {
            // Alternate between two reserve states so every refresh does
            // real re-evaluation work of identical shape.
            flip = !flip;
            let (a, b) = if flip { (101.0, 199.0) } else { (100.0, 200.0) };
            engine.apply_events(&[sync(0, a, b)], &feed).unwrap();
        }
        let warm = engine.stats().scratch_grow_events;
        for _ in 0..16 {
            flip = !flip;
            let (a, b) = if flip { (101.0, 199.0) } else { (100.0, 200.0) };
            engine.apply_events(&[sync(0, a, b)], &feed).unwrap();
        }
        assert_eq!(
            engine.stats().scratch_grow_events,
            warm,
            "warm refreshes must not allocate in the scratch path: {}",
            engine.stats()
        );
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn degenerate_rates_are_counted_alike_in_batch_and_streaming() {
        let fee = FeeRate::UNISWAP_V2;
        // A live pool whose 1→2 rate underflows to zero: reserves are
        // valid so nothing retires, but every cycle through it is
        // untradeable and must be skipped — and *counted* — identically
        // by the batch pipeline and the streaming engine.
        let pools = vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 1e300, 1e-300, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ];
        let feed = paper_feed();

        let batch = OpportunityPipeline::default()
            .run(pools.clone(), &feed)
            .unwrap();
        // One direction sums to -inf (degenerate); the reverse sums to
        // +inf and evaluates like any other loop candidate.
        assert_eq!(batch.stats.cycles_degenerate, 1, "{}", batch.stats);

        // Screened streaming: the -inf sum is caught by the log-sum
        // screen, so the dedicated degenerate counter only moves when
        // the screen is off — but the *output* is identical either way.
        let unscreened_config = PipelineConfig {
            screen: false,
            ..PipelineConfig::default()
        };
        let mut unscreened =
            StreamingEngine::new(OpportunityPipeline::new(unscreened_config), pools.clone())
                .unwrap();
        unscreened.refresh(&feed).unwrap();
        assert_eq!(
            unscreened.stats().cycles_degenerate_skipped,
            1,
            "{}",
            unscreened.stats()
        );
        let mut screened =
            StreamingEngine::new(OpportunityPipeline::default(), pools.clone()).unwrap();
        screened.refresh(&feed).unwrap();
        assert_eq!(
            screened.stats().cycles_screened_out + screened.stats().cycles_degenerate_skipped,
            1,
            "{}",
            screened.stats()
        );
        assert_matches_batch(&screened, &feed);
        assert_matches_batch(&unscreened, &feed);

        // NaN-sync and zero-reserve syncs retire the pool in streaming;
        // the batch run over the remaining live pools must agree.
        let mut engine = StreamingEngine::new(OpportunityPipeline::default(), pools).unwrap();
        engine.refresh(&feed).unwrap();
        engine
            .apply_events(
                &[Event::Sync {
                    pool: p(1),
                    reserve_a: 0,
                    reserve_b: 0,
                }],
                &feed,
            )
            .unwrap();
        assert_eq!(engine.stats().pools_retired, 1);
        assert_matches_batch(&engine, &feed);
    }

    #[test]
    fn stream_stats_display_one_liner() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine
            .apply_events(&[sync(0, 101.0, 199.0)], &feed)
            .unwrap();
        let line = engine.stats().to_string();
        assert!(line.contains("events"), "{line}");
        assert!(line.contains("evaluations saved"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn checkpoint_restore_reproduces_ranking_bit_for_bit() {
        let feed = paper_feed();
        let mut engine =
            StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        engine.refresh(&feed).unwrap();
        // Mutate past the cold start: a sync, a retire (tombstones +
        // free-list entries), and a new pool.
        engine
            .apply_events(
                &[
                    sync(0, 101.0, 199.0),
                    Event::PoolCreated {
                        pool: p(3),
                        token_a: t(0),
                        token_b: t(1),
                        reserve_a: to_raw(150.0),
                        reserve_b: to_raw(250.0),
                        fee: FeeRate::UNISWAP_V2,
                    },
                    Event::Sync {
                        pool: p(1),
                        reserve_a: 0,
                        reserve_b: 0,
                    },
                    sync(1, 300.0, 200.0),
                ],
                &feed,
            )
            .unwrap();

        let checkpoint = engine.checkpoint();
        let mut restored =
            StreamingEngine::restore(OpportunityPipeline::default(), &checkpoint).unwrap();
        assert_eq!(restored.standing_revision(), engine.standing_revision());
        assert_eq!(
            restored.pending_dirty(),
            restored.index().live_cycles(),
            "restore starts with everything dirty"
        );
        restored.refresh(&feed).unwrap();

        let live = engine.ranked();
        let back = restored.ranked();
        assert_eq!(live.len(), back.len());
        assert!(!live.is_empty(), "non-vacuous");
        for (a, b) in live.iter().zip(&back) {
            assert_eq!(a.cycle.tokens(), b.cycle.tokens());
            assert_eq!(a.cycle.pools(), b.cycle.pools());
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(
                a.net_profit.value().to_bits(),
                b.net_profit.value().to_bits()
            );
        }

        // Both copies keep agreeing on subsequent events (same CycleIds,
        // same slot recycling, same revive behavior).
        for batch in [vec![sync(3, 160.0, 240.0)], vec![sync(1, 290.0, 210.0)]] {
            let a = engine.apply_events(&batch, &feed).unwrap();
            let b = restored.apply_events(&batch, &feed).unwrap();
            assert_eq!(a.opportunities.len(), b.opportunities.len());
            for (x, y) in a.opportunities.iter().zip(&b.opportunities) {
                assert_eq!(
                    x.net_profit.value().to_bits(),
                    y.net_profit.value().to_bits()
                );
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_cycle_bounds() {
        let engine = StreamingEngine::new(OpportunityPipeline::default(), paper_pools()).unwrap();
        let checkpoint = engine.checkpoint();
        let config = PipelineConfig {
            max_cycle_len: 4,
            ..PipelineConfig::default()
        };
        let err =
            StreamingEngine::restore(OpportunityPipeline::new(config), &checkpoint).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("cycle bounds"), "{err}");
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let config = PipelineConfig {
            min_cycle_len: 5,
            max_cycle_len: 3,
            ..PipelineConfig::default()
        };
        let err =
            StreamingEngine::new(OpportunityPipeline::new(config), paper_pools()).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err:?}");
    }
}
