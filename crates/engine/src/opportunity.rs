//! The uniform arbitrage-opportunity type produced by the pipeline.

use arb_core::loop_def::ArbLoop;
use arb_core::monetize::Usd;
use arb_graph::Cycle;

/// A fully evaluated arbitrage opportunity: one discovered cycle, the
/// winning strategy, and everything an executor needs to act on it.
///
/// This is the single currency flowing between discovery, ranking, and
/// execution: the bot builds flash bundles from it, examples print it,
/// and benches count them.
#[derive(Debug, Clone)]
pub struct ArbitrageOpportunity {
    /// The discovered cycle (token + pool ids in trade order).
    pub cycle: Cycle,
    /// The analysis view of the same loop (curves + token labels).
    pub loop_: ArbLoop,
    /// CEX (USD) prices aligned with the loop's token order.
    pub prices: Vec<f64>,
    /// Name of the strategy that produced this sizing.
    pub strategy: &'static str,
    /// Optimal input per hop, aligned with loop order. Single-rotation
    /// strategies (Traditional/MaxPrice/MaxMax) have exactly one nonzero
    /// entry; ConvexOpt may fund several hops.
    pub optimal_inputs: Vec<f64>,
    /// Net profit per loop token, aligned with loop order.
    pub token_profits: Vec<f64>,
    /// Monetized profit before execution costs.
    pub gross_profit: Usd,
    /// Monetized profit after the configured per-trade execution cost.
    pub net_profit: Usd,
}

impl ArbitrageOpportunity {
    /// Number of hops in the loop.
    pub fn hops(&self) -> usize {
        self.cycle.len()
    }

    /// When exactly one hop is funded, returns `(rotation, input)` — the
    /// shape single-rotation strategies produce, which executors can chain
    /// hop-by-hop with exact integer outputs.
    pub fn single_entry(&self) -> Option<(usize, f64)> {
        let mut entry = None;
        for (j, &input) in self.optimal_inputs.iter().enumerate() {
            if input > 0.0 {
                if entry.is_some() {
                    return None;
                }
                entry = Some((j, input));
            }
        }
        entry
    }

    /// The loop's zero-input round-trip rate (`> 1` ⇔ arbitrage exists).
    pub fn round_trip_rate(&self) -> f64 {
        self.loop_.round_trip_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::curve::SwapCurve;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::PoolId;
    use arb_amm::token::TokenId;

    fn opportunity(inputs: Vec<f64>) -> ArbitrageOpportunity {
        let fee = FeeRate::UNISWAP_V2;
        let tokens = vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)];
        let pools = vec![PoolId::new(0), PoolId::new(1), PoolId::new(2)];
        let hops = vec![
            SwapCurve::new(100.0, 200.0, fee).unwrap(),
            SwapCurve::new(300.0, 200.0, fee).unwrap(),
            SwapCurve::new(200.0, 400.0, fee).unwrap(),
        ];
        ArbitrageOpportunity {
            cycle: Cycle::new(tokens.clone(), pools).unwrap(),
            loop_: ArbLoop::new(hops, tokens).unwrap(),
            prices: vec![2.0, 10.2, 20.0],
            strategy: "maxmax",
            optimal_inputs: inputs,
            token_profits: vec![0.0, 0.0, 10.0],
            gross_profit: Usd::new(200.0),
            net_profit: Usd::new(195.0),
        }
    }

    #[test]
    fn single_entry_detects_rotations() {
        assert_eq!(
            opportunity(vec![0.0, 27.5, 0.0]).single_entry(),
            Some((1, 27.5))
        );
        assert_eq!(opportunity(vec![1.0, 2.0, 0.0]).single_entry(), None);
        assert_eq!(opportunity(vec![0.0, 0.0, 0.0]).single_entry(), None);
    }

    #[test]
    fn round_trip_rate_matches_loop() {
        let opp = opportunity(vec![27.0, 0.0, 0.0]);
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((opp.round_trip_rate() - expected).abs() < 1e-12);
        assert_eq!(opp.hops(), 3);
    }
}
