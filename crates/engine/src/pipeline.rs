//! The snapshot → graph → cycles → strategies → ranking pipeline.

use std::fmt;
use std::sync::Arc;

use arb_amm::pool::Pool;
use arb_cex::feed::PriceFeed;
use arb_core::loop_def::ArbLoop;
use arb_core::monetize::Usd;
use arb_core::{ConvexOptimization, MaxMax, Strategy};
use arb_graph::{Cycle, TokenGraph};
use arb_snapshot::Snapshot;
use rayon::prelude::*;

use crate::bounds::{floor_verdict, FloorVerdict};
use crate::error::EngineError;
use crate::opportunity::ArbitrageOpportunity;
use crate::ranking::{RankByNetProfit, RankingPolicy};

/// A strategy the pipeline can fan out across threads.
pub type SharedStrategy = Arc<dyn Strategy + Send + Sync>;

/// Outcome of the shared per-cycle discovery step
/// ([`OpportunityPipeline::prepare_candidate`]).
pub(crate) enum CycleCandidate {
    /// Round-trip rate ≤ 1: not an arbitrage loop.
    NotArbitrage,
    /// A hop's fee-adjusted rate degenerated (`Σ log p = -∞`): the cycle
    /// cannot trade, and is counted separately from ordinary
    /// non-arbitrage cycles instead of being conflated with them.
    Degenerate,
    /// A loop, but some token has no USD price in the feed.
    Unpriced,
    /// Ready for strategy evaluation.
    Ready {
        /// The assembled analysis loop.
        loop_: ArbLoop,
        /// `(offset, len)` span of this candidate's USD prices in the
        /// caller's flat price buffer, aligned with the loop's token
        /// order.
        prices: (usize, usize),
    },
}

/// Pipeline tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Shortest cycle length discovered (2 = two-pool back-and-forth).
    pub min_cycle_len: usize,
    /// Longest cycle length discovered (the paper studies 3 and 4).
    pub max_cycle_len: usize,
    /// Flat monetized cost per submitted trade (gas stand-in), subtracted
    /// from gross profit to produce net profit.
    pub execution_cost_usd: f64,
    /// Opportunities with net profit below this floor are dropped.
    pub min_net_profit_usd: f64,
    /// Evaluate cycles across threads (order-preserving; results are
    /// bit-identical to the serial path).
    pub parallel: bool,
    /// Keep only the best `top_k` opportunities after ranking.
    pub top_k: Option<usize>,
    /// Consult the log-space profitability screen before preparing
    /// cycles: cycles whose `Σ log p` is provably ≤ 0, or whose profit
    /// upper bounds (the pool-value and per-hop fee-aware bounds in
    /// `crate::bounds`) provably cannot clear the
    /// net-profit floor, skip preparation and strategy evaluation
    /// entirely. Applies both to the streaming engine's incremental
    /// refresh (dirty cycles) and to batch cold starts through
    /// [`OpportunityPipeline::run_graph`] (every enumerated cycle). The
    /// screen is **sound** — output is bit-identical with it on or off
    /// (`tests/screen_equivalence.rs`) — so disabling it only serves
    /// baseline comparisons.
    pub screen: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_cycle_len: 2,
            max_cycle_len: 3,
            execution_cost_usd: 0.0,
            min_net_profit_usd: 0.0,
            parallel: true,
            top_k: None,
            screen: true,
        }
    }
}

impl PipelineConfig {
    /// Checks the configuration for contradictions. Called by every
    /// pipeline run and by [`crate::StreamingEngine::new`]; invalid
    /// configs fail loudly instead of being silently clamped.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `min_cycle_len < 2` (a 1-hop
    /// "loop" is a self-swap), `min_cycle_len > max_cycle_len`, or a cost
    /// or floor is not finite.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.min_cycle_len < 2 {
            return Err(EngineError::Config(format!(
                "min_cycle_len must be at least 2, got {}",
                self.min_cycle_len
            )));
        }
        if self.min_cycle_len > self.max_cycle_len {
            return Err(EngineError::Config(format!(
                "min_cycle_len ({}) exceeds max_cycle_len ({})",
                self.min_cycle_len, self.max_cycle_len
            )));
        }
        // NaN gets its own diagnostic for both cost fields: "must be
        // finite, got NaN" buries the real defect (an uninitialized or
        // 0.0/0.0 computation upstream), which reads very differently
        // from an operator typing ±inf.
        if self.execution_cost_usd.is_nan() {
            return Err(EngineError::Config(
                "execution_cost_usd must not be NaN".to_string(),
            ));
        }
        if !self.execution_cost_usd.is_finite() {
            return Err(EngineError::Config(format!(
                "execution_cost_usd must be finite, got {}",
                self.execution_cost_usd
            )));
        }
        // +∞ is a legitimate "never trade" floor; only NaN is meaningless.
        if self.min_net_profit_usd.is_nan() {
            return Err(EngineError::Config(
                "min_net_profit_usd must not be NaN".to_string(),
            ));
        }
        Ok(())
    }
}

/// Counters describing one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Tokens in the constructed graph.
    pub tokens: usize,
    /// Pools in the constructed graph.
    pub pools: usize,
    /// Cycles with round-trip rate > 1 discovered across all lengths.
    pub cycles_discovered: usize,
    /// Cycles skipped because a hop's fee-adjusted rate degenerated
    /// (`Σ log p = -∞`, e.g. a rate underflowing to zero) — previously
    /// conflated with ordinary non-arbitrage cycles.
    pub cycles_degenerate: usize,
    /// Cycles dropped because a loop token had no CEX price.
    pub cycles_unpriced: usize,
    /// Cycles that went through full classification
    /// (`prepare_candidate`: curve assembly, loop
    /// construction, price resolution). With the screen off this counts
    /// every enumerated cycle; with it on, only screen survivors — the
    /// cold-start cost the batch screen exists to cut.
    pub cycles_classified: usize,
    /// Enumerated cycles the batch log-sum screen discharged before
    /// classification (`Σ log p` provably not positive, including the
    /// degenerate `-∞` ones, which are *also* counted in
    /// [`PipelineStats::cycles_degenerate`] for parity with unscreened
    /// runs).
    pub cycles_screened_out: usize,
    /// Profitable cycles discharged before classification because a
    /// profit upper bound provably cannot clear the effective gross
    /// floor (`execution_cost_usd + min_net_profit_usd`).
    pub cycles_floor_screened: usize,
    /// The subset of [`PipelineStats::cycles_floor_screened`] only the
    /// per-hop fee-aware bound could discharge.
    pub cycles_hop_screened: usize,
    /// Strategy evaluations attempted (cycles × strategies).
    pub evaluations: usize,
    /// Evaluations skipped for benign infeasibility (near-breakeven loops
    /// whose interior is too thin to start the convex solver). Any other
    /// evaluation error aborts the run instead of being counted here.
    pub evaluation_failures: usize,
    /// Evaluated cycles dropped by the net-profit floor.
    pub below_floor: usize,
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tokens, {} pools, {} cycles ({} unpriced, {} degenerate), \
             {} classified ({} screened, {} floor-screened ({} by hop bound)), \
             {} evaluations ({} benign failures), {} below floor",
            self.tokens,
            self.pools,
            self.cycles_discovered,
            self.cycles_unpriced,
            self.cycles_degenerate,
            self.cycles_classified,
            self.cycles_screened_out,
            self.cycles_floor_screened,
            self.cycles_hop_screened,
            self.evaluations,
            self.evaluation_failures,
            self.below_floor
        )
    }
}

/// The ranked output of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Opportunities in execution-priority order (best first).
    pub opportunities: Vec<ArbitrageOpportunity>,
    /// Run counters.
    pub stats: PipelineStats,
}

impl PipelineReport {
    /// The best opportunity, if any survived the floor.
    pub fn best(&self) -> Option<&ArbitrageOpportunity> {
        self.opportunities.first()
    }

    /// Total net profit across all ranked opportunities (an upper bound —
    /// executing one loop moves the pools under the others).
    pub fn total_net_profit(&self) -> Usd {
        self.opportunities
            .iter()
            .fold(Usd::ZERO, |acc, o| acc + o.net_profit)
    }
}

/// Adapter exposing a [`Snapshot`]'s embedded CEX prices as a
/// [`PriceFeed`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPrices<'a>(pub &'a Snapshot);

impl PriceFeed for SnapshotPrices<'_> {
    fn usd_price(&self, token: arb_amm::token::TokenId) -> Option<f64> {
        self.0.usd_price(token)
    }
}

/// The unified discovery → evaluation → ranking engine.
///
/// One pipeline instance owns a strategy set, a ranking policy, and a
/// config; every run is a pure function of the market state handed in
/// (pools or snapshot plus a price feed), so instances are reusable across
/// blocks and shareable across threads. Cloning a pipeline shares the
/// strategy objects (they are `Arc`s) and duplicates the ranking policy —
/// a clone ranks bit-identically to its original, which is what lets the
/// sharded runtime hand one pipeline per shard.
#[derive(Clone)]
pub struct OpportunityPipeline {
    strategies: Vec<SharedStrategy>,
    ranking: Box<dyn RankingPolicy>,
    config: PipelineConfig,
}

impl fmt::Debug for OpportunityPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpportunityPipeline")
            .field("strategies", &self.strategy_names())
            .field("ranking", &self.ranking.name())
            .field("config", &self.config)
            .finish()
    }
}

impl Default for OpportunityPipeline {
    fn default() -> Self {
        Self::new(PipelineConfig::default())
    }
}

impl OpportunityPipeline {
    /// A pipeline with the default strategy set — MaxMax (the paper's fast
    /// strategy) and ConvexOpt (its dominant one) — ranked by net profit.
    pub fn new(config: PipelineConfig) -> Self {
        OpportunityPipeline {
            strategies: vec![
                Arc::new(MaxMax::default()) as SharedStrategy,
                Arc::new(ConvexOptimization::default()) as SharedStrategy,
            ],
            ranking: Box::new(RankByNetProfit),
            config,
        }
    }

    /// Replaces the strategy set.
    pub fn with_strategies(mut self, strategies: Vec<SharedStrategy>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Replaces the ranking policy.
    pub fn with_ranking(mut self, ranking: Box<dyn RankingPolicy>) -> Self {
        self.ranking = ranking;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The strategy names in evaluation order.
    pub fn strategy_names(&self) -> Vec<&'static str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }

    /// Runs the full pipeline on a pool set plus a price feed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Graph`] on graph-construction failures and
    /// [`EngineError::Strategy`] on non-benign evaluation failures
    /// (benign thin-interior infeasibility is counted in the stats
    /// instead).
    pub fn run<F: PriceFeed>(
        &self,
        pools: Vec<Pool>,
        feed: &F,
    ) -> Result<PipelineReport, EngineError> {
        let graph = TokenGraph::new(pools)?;
        self.run_graph(&graph, feed)
    }

    /// Runs the pipeline on a paper-calibrated snapshot, pricing tokens
    /// from the snapshot's own CEX table.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Graph`] on graph-construction failures.
    pub fn run_snapshot(&self, snapshot: &Snapshot) -> Result<PipelineReport, EngineError> {
        self.run(snapshot.pools().to_vec(), &SnapshotPrices(snapshot))
    }

    /// Runs discovery + evaluation + ranking on an already-built graph.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Graph`] if cycle enumeration fails.
    pub fn run_graph<F: PriceFeed>(
        &self,
        graph: &TokenGraph,
        feed: &F,
    ) -> Result<PipelineReport, EngineError> {
        self.config.validate()?;
        let mut stats = PipelineStats {
            tokens: graph.token_count(),
            // Retired slots (degenerate pools kept for id stability)
            // contribute no liquidity and are not counted.
            pools: graph.live_pool_count(),
            ..PipelineStats::default()
        };

        // Discovery: profitable cycles at every configured length, with
        // prices resolved up front so the evaluation stage is pure CPU.
        // Prices live in one flat buffer shared by every candidate —
        // `(offset, len)` spans instead of a fresh `Vec<f64>` per cycle.
        //
        // With the screen on, each enumerated cycle first passes the
        // cheap cached checks — the log-sum sign and, when a gross floor
        // is configured, the profit upper bounds of [`crate::bounds`] —
        // so cold starts, recovery refreshes, and shard rebuilds stop
        // classifying provably-dead cycles. The checks reuse exactly the
        // classification criteria of `prepare_candidate` (same cached
        // log rates, sound bounds), so the surviving opportunity set is
        // bit-identical to an unscreened run.
        let screen = self.config.screen;
        let required_gross = self.config.execution_cost_usd + self.config.min_net_profit_usd;
        let floor_screen = screen && required_gross > 0.0;
        let mut price_buf: Vec<f64> = Vec::new();
        let mut candidates: Vec<(Cycle, ArbLoop, (usize, usize))> = Vec::new();
        for len in self.config.min_cycle_len..=self.config.max_cycle_len {
            for cycle in graph.cycles(len)? {
                if screen {
                    let log_rate = graph.cycle_log_rate(&cycle)?;
                    if log_rate == f64::NEG_INFINITY {
                        stats.cycles_degenerate += 1;
                        stats.cycles_screened_out += 1;
                        continue;
                    }
                    if log_rate.is_nan() || log_rate <= 0.0 {
                        stats.cycles_screened_out += 1;
                        continue;
                    }
                    if floor_screen {
                        match floor_verdict(graph, &cycle, feed, required_gross) {
                            FloorVerdict::Keep => {}
                            verdict => {
                                stats.cycles_discovered += 1;
                                stats.cycles_floor_screened += 1;
                                if verdict == FloorVerdict::HopBound {
                                    stats.cycles_hop_screened += 1;
                                }
                                continue;
                            }
                        }
                    }
                }
                stats.cycles_classified += 1;
                match self.prepare_candidate(graph, &cycle, feed, &mut price_buf)? {
                    CycleCandidate::NotArbitrage => {}
                    CycleCandidate::Degenerate => stats.cycles_degenerate += 1,
                    CycleCandidate::Unpriced => {
                        stats.cycles_discovered += 1;
                        stats.cycles_unpriced += 1;
                    }
                    CycleCandidate::Ready { loop_, prices } => {
                        stats.cycles_discovered += 1;
                        candidates.push((cycle, loop_, prices));
                    }
                }
            }
        }

        // Evaluation: every strategy on every cycle, best sizing wins.
        // The flat price buffer is shared read-only across the fan-out;
        // the parallel path is order-preserving, so sequential and
        // parallel runs stay bit-identical.
        let price_buf = &price_buf;
        let evaluate = |(cycle, loop_, span): &(Cycle, ArbLoop, (usize, usize))| {
            self.evaluate_cycle(cycle, loop_, &price_buf[span.0..span.0 + span.1])
        };
        let evaluated: Result<Vec<(Option<ArbitrageOpportunity>, usize, usize)>, EngineError> =
            if self.config.parallel && candidates.len() > 1 {
                candidates.par_iter().map(evaluate).collect()
            } else {
                candidates.iter().map(evaluate).collect()
            };

        let mut opportunities = Vec::new();
        for (opportunity, attempts, benign_failures) in evaluated? {
            stats.evaluations += attempts;
            stats.evaluation_failures += benign_failures;
            match opportunity {
                Some(opp) if opp.net_profit.value() >= self.config.min_net_profit_usd => {
                    opportunities.push(opp);
                }
                Some(_) => stats.below_floor += 1,
                None => {}
            }
        }

        self.rank(&mut opportunities);

        Ok(PipelineReport {
            opportunities,
            stats,
        })
    }

    /// Classifies one cycle for evaluation: the batch pipeline's
    /// discovery step, mirrored hop-for-hop by the streaming engine's
    /// scratch-arena preparation (`StreamingEngine::refresh_standing`) so
    /// the arbitrage filter and price resolution can never drift between
    /// the two paths. The filter reads the graph's **cached** per-slot
    /// log rates ([`TokenGraph::cycle_log_rate`]) — bit-identical to
    /// summing fresh `spot_rate().ln()` values, minus the per-hop curve
    /// construction. A `-∞` sum (degenerate hop rate) is classified
    /// [`CycleCandidate::Degenerate`] rather than silently folded into
    /// "not an arbitrage", and structural errors now propagate instead of
    /// being swallowed by the old `unwrap_or(NEG_INFINITY)`.
    ///
    /// Ready candidates push their prices onto `price_buf` and return the
    /// `(offset, len)` span.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Graph`]/[`EngineError::Strategy`] if the
    /// cycle references unknown pools or its curves/loop cannot be
    /// assembled — a structural defect, not a market condition.
    pub(crate) fn prepare_candidate<F: PriceFeed>(
        &self,
        graph: &TokenGraph,
        cycle: &Cycle,
        feed: &F,
        price_buf: &mut Vec<f64>,
    ) -> Result<CycleCandidate, EngineError> {
        let log_rate = graph.cycle_log_rate(cycle)?;
        if log_rate == f64::NEG_INFINITY {
            return Ok(CycleCandidate::Degenerate);
        }
        if log_rate.is_nan() || log_rate <= 0.0 {
            return Ok(CycleCandidate::NotArbitrage);
        }
        let hops = graph.curves_for(cycle)?;
        let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec())?;
        let offset = price_buf.len();
        match loop_.resolve_prices_into(|t| feed.usd_price(t), price_buf) {
            Ok(()) => Ok(CycleCandidate::Ready {
                loop_,
                prices: (offset, cycle.len()),
            }),
            Err(_) => Ok(CycleCandidate::Unpriced),
        }
    }

    /// The total execution-priority order: policy score descending with
    /// deterministic tie-breaks (loop length, token order, then pool
    /// order — two distinct cycles always differ in one of those, so no
    /// two distinct opportunities ever compare `Equal`). Shared by
    /// [`OpportunityPipeline::rank`] and the sharded runtime's k-way
    /// merge so every path orders identically.
    pub(crate) fn compare(
        &self,
        a: &ArbitrageOpportunity,
        b: &ArbitrageOpportunity,
    ) -> std::cmp::Ordering {
        self.ranking
            .score(b)
            .partial_cmp(&self.ranking.score(a))
            .expect("ranking scores are finite")
            .then_with(|| a.hops().cmp(&b.hops()))
            .then_with(|| a.cycle.tokens().cmp(b.cycle.tokens()))
            .then_with(|| a.cycle.pools().cmp(b.cycle.pools()))
    }

    /// Sorts opportunities into execution-priority order
    /// ([`OpportunityPipeline::compare`]) and applies the `top_k` cut.
    /// Shared by the batch run and the streaming engine so both rank
    /// identically.
    pub(crate) fn rank(&self, opportunities: &mut Vec<ArbitrageOpportunity>) {
        opportunities.sort_by(|a, b| self.compare(a, b));
        if let Some(k) = self.config.top_k {
            opportunities.truncate(k);
        }
    }

    /// Evaluates every strategy on one cycle, returning the best-gross
    /// opportunity plus (attempts, benign-failure) counters.
    ///
    /// # Errors
    ///
    /// Benign infeasibility (a near-breakeven loop whose interior is too
    /// thin to start the convex solver) is counted and skipped; any other
    /// strategy error indicates a real defect and aborts the run.
    pub(crate) fn evaluate_cycle(
        &self,
        cycle: &Cycle,
        loop_: &ArbLoop,
        prices: &[f64],
    ) -> Result<(Option<ArbitrageOpportunity>, usize, usize), EngineError> {
        let mut attempts = 0usize;
        let mut benign_failures = 0usize;
        let mut best: Option<(&'static str, arb_core::StrategyOutcome)> = None;
        for strategy in &self.strategies {
            attempts += 1;
            match strategy.evaluate(loop_, prices) {
                Ok(outcome) => {
                    if best
                        .as_ref()
                        .is_none_or(|(_, b)| outcome.monetized > b.monetized)
                    {
                        best = Some((strategy.name(), outcome));
                    }
                }
                // Near-breakeven loops can have an interior too thin to
                // start the convex solver in; they are not worth trading,
                // so skip the strategy, not the scan.
                Err(arb_core::StrategyError::Convex(
                    arb_convex::ConvexError::FeasibilityConstruction,
                )) => benign_failures += 1,
                Err(e) => return Err(e.into()),
            }
        }
        let opportunity = best.and_then(|(name, outcome)| {
            if outcome.monetized.value() <= 0.0 {
                return None;
            }
            let gross = outcome.monetized;
            let net = Usd::new(gross.value() - self.config.execution_cost_usd);
            Some(ArbitrageOpportunity {
                cycle: cycle.clone(),
                loop_: loop_.clone(),
                prices: prices.to_vec(),
                strategy: name,
                optimal_inputs: outcome.inputs,
                token_profits: outcome.token_profits,
                gross_profit: gross,
                net_profit: net,
            })
        });
        Ok((opportunity, attempts, benign_failures))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_core::{MaxPrice, Traditional};

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_pools() -> Vec<Pool> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ]
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn finds_and_sizes_the_paper_triangle() {
        let pipeline = OpportunityPipeline::default();
        let report = pipeline.run(paper_pools(), &paper_feed()).unwrap();
        assert_eq!(report.opportunities.len(), 1);
        let opp = report.best().unwrap();
        // ConvexOpt dominates MaxMax, so it must win the sizing.
        assert_eq!(opp.strategy, "convex");
        assert!((opp.gross_profit.value() - 206.1).abs() < 1.0);
        assert_eq!(report.stats.cycles_discovered, 1);
        assert_eq!(report.stats.evaluations, 2);
    }

    #[test]
    fn parallel_and_serial_agree_bitwise() {
        let mut pools = paper_pools();
        let fee = FeeRate::UNISWAP_V2;
        // Add a second, milder triangle and a balanced pair.
        pools.push(Pool::new(t(3), t(4), 1_000.0, 1_050.0, fee).unwrap());
        pools.push(Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap());
        pools.push(Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap());
        let mut feed = paper_feed();
        feed.extend([(t(3), 1.0), (t(4), 1.0), (t(5), 1.0)]);

        let serial = OpportunityPipeline::new(PipelineConfig {
            parallel: false,
            ..PipelineConfig::default()
        })
        .run(pools.clone(), &feed)
        .unwrap();
        let parallel = OpportunityPipeline::new(PipelineConfig {
            parallel: true,
            ..PipelineConfig::default()
        })
        .run(pools, &feed)
        .unwrap();

        assert_eq!(serial.opportunities.len(), parallel.opportunities.len());
        for (a, b) in serial.opportunities.iter().zip(&parallel.opportunities) {
            assert_eq!(a.cycle.tokens(), b.cycle.tokens());
            assert_eq!(
                a.gross_profit.value().to_bits(),
                b.gross_profit.value().to_bits()
            );
        }
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn unpriced_cycles_are_counted_not_fatal() {
        let pipeline = OpportunityPipeline::default();
        let empty = PriceTable::new();
        let report = pipeline.run(paper_pools(), &empty).unwrap();
        assert!(report.opportunities.is_empty());
        assert_eq!(report.stats.cycles_unpriced, 1);
    }

    #[test]
    fn floor_filters_and_counts() {
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            min_net_profit_usd: 1_000.0,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(paper_pools(), &paper_feed()).unwrap();
        assert!(report.opportunities.is_empty());
        assert_eq!(report.stats.below_floor, 1);
    }

    #[test]
    fn execution_cost_reduces_net() {
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            execution_cost_usd: 50.0,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(paper_pools(), &paper_feed()).unwrap();
        let opp = report.best().unwrap();
        assert!((opp.gross_profit.value() - opp.net_profit.value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn custom_strategy_sets_and_ranking() {
        let pipeline = OpportunityPipeline::new(PipelineConfig::default())
            .with_strategies(vec![
                Arc::new(Traditional {
                    start: 0,
                    method: arb_core::traditional::Method::ClosedForm,
                }) as SharedStrategy,
                Arc::new(MaxPrice::default()) as SharedStrategy,
            ])
            .with_ranking(Box::new(crate::ranking::RankByProfitPerHop));
        assert_eq!(pipeline.strategy_names(), vec!["traditional", "maxprice"]);
        let report = pipeline.run(paper_pools(), &paper_feed()).unwrap();
        let opp = report.best().unwrap();
        // MaxPrice starts from the highest-priced token (Z at $20) and
        // beats Traditional-from-X on the paper example.
        assert_eq!(opp.strategy, "maxprice");
        assert!(opp.single_entry().is_some());
    }

    #[test]
    fn contradictory_config_is_rejected_not_clamped() {
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            min_cycle_len: 4,
            max_cycle_len: 3,
            ..PipelineConfig::default()
        });
        let err = pipeline.run(paper_pools(), &paper_feed()).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("exceeds max_cycle_len"));

        // Every rejection path, with its diagnostic: callers surface
        // these strings to operators, so each must name the field and the
        // offending value.
        let reject = |config: PipelineConfig, needle: &str| {
            let err = config.validate().unwrap_err();
            assert!(matches!(err, EngineError::Config(_)), "{err:?}");
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
        };
        reject(
            PipelineConfig {
                min_cycle_len: 1,
                ..PipelineConfig::default()
            },
            "at least 2",
        );
        reject(
            PipelineConfig {
                min_cycle_len: 0,
                max_cycle_len: 0,
                ..PipelineConfig::default()
            },
            "at least 2",
        );
        for cost in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            reject(
                PipelineConfig {
                    execution_cost_usd: cost,
                    ..PipelineConfig::default()
                },
                "execution_cost_usd",
            );
        }
        // NaN costs get their own diagnostic, distinct from the ±inf one:
        // NaN means a broken upstream computation, not an operator limit.
        for field in ["execution_cost_usd", "min_net_profit_usd"] {
            let config = if field == "execution_cost_usd" {
                PipelineConfig {
                    execution_cost_usd: f64::NAN,
                    ..PipelineConfig::default()
                }
            } else {
                PipelineConfig {
                    min_net_profit_usd: f64::NAN,
                    ..PipelineConfig::default()
                }
            };
            let err = config.validate().unwrap_err();
            assert!(matches!(err, EngineError::Config(_)), "{err:?}");
            let message = err.to_string();
            assert!(
                message.contains(field) && message.contains("must not be NaN"),
                "{message} should carry the dedicated NaN diagnostic for {field}"
            );
        }
        let inf_message = PipelineConfig {
            execution_cost_usd: f64::INFINITY,
            ..PipelineConfig::default()
        }
        .validate()
        .unwrap_err()
        .to_string();
        assert!(
            inf_message.contains("must be finite") && !inf_message.contains("NaN"),
            "{inf_message}: ±inf keeps the finiteness diagnostic"
        );
        reject(
            PipelineConfig {
                min_net_profit_usd: f64::NAN,
                ..PipelineConfig::default()
            },
            "min_net_profit_usd",
        );
        // +∞ is the "never trade" sentinel and must stay legal.
        let never_trade = PipelineConfig {
            min_net_profit_usd: f64::INFINITY,
            ..PipelineConfig::default()
        };
        assert!(never_trade.validate().is_ok());
        assert!(PipelineConfig::default().validate().is_ok());
    }

    #[test]
    fn batch_screen_matches_unscreened_bit_for_bit() {
        let mut pools = paper_pools();
        let fee = FeeRate::UNISWAP_V2;
        // A second triangle: mild (below a steep floor) and a balanced
        // pair that is pure screen fodder.
        pools.push(Pool::new(t(3), t(4), 1_000.0, 1_050.0, fee).unwrap());
        pools.push(Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap());
        pools.push(Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap());
        let mut feed = paper_feed();
        feed.extend([(t(3), 1.0), (t(4), 1.0), (t(5), 1.0)]);

        for (cost, floor) in [(0.0, 0.0), (3.0, 1.0), (50.0, 10.0)] {
            let config = |screen| PipelineConfig {
                execution_cost_usd: cost,
                min_net_profit_usd: floor,
                screen,
                ..PipelineConfig::default()
            };
            let screened = OpportunityPipeline::new(config(true))
                .run(pools.clone(), &feed)
                .unwrap();
            let unscreened = OpportunityPipeline::new(config(false))
                .run(pools.clone(), &feed)
                .unwrap();
            assert_eq!(
                screened.opportunities.len(),
                unscreened.opportunities.len(),
                "cost {cost} floor {floor}"
            );
            for (a, b) in screened.opportunities.iter().zip(&unscreened.opportunities) {
                assert_eq!(a.cycle.tokens(), b.cycle.tokens());
                assert_eq!(a.strategy, b.strategy);
                assert_eq!(
                    a.gross_profit.value().to_bits(),
                    b.gross_profit.value().to_bits()
                );
                assert_eq!(
                    a.net_profit.value().to_bits(),
                    b.net_profit.value().to_bits()
                );
            }
            // Shared classification criteria keep the discovery counters
            // aligned even though the screened run classifies less.
            assert_eq!(
                screened.stats.cycles_discovered,
                unscreened.stats.cycles_discovered
            );
            assert_eq!(
                screened.stats.cycles_degenerate,
                unscreened.stats.cycles_degenerate
            );
            assert!(
                screened.stats.cycles_classified < unscreened.stats.cycles_classified,
                "screen must cut classifications: {} vs {}",
                screened.stats,
                unscreened.stats
            );
            assert_eq!(unscreened.stats.cycles_screened_out, 0);
            assert_eq!(unscreened.stats.cycles_floor_screened, 0);
        }
    }

    #[test]
    fn batch_floor_screen_skips_classification_and_evaluation() {
        // With a floor far above the paper triangle's ~$206 gross, the
        // screened cold start discharges it before curve assembly.
        let config = |screen| PipelineConfig {
            execution_cost_usd: 9_000.0,
            min_net_profit_usd: 1_000.0,
            screen,
            ..PipelineConfig::default()
        };
        let screened = OpportunityPipeline::new(config(true))
            .run(paper_pools(), &paper_feed())
            .unwrap();
        assert!(screened.opportunities.is_empty());
        assert_eq!(screened.stats.cycles_floor_screened, 1);
        assert_eq!(screened.stats.cycles_classified, 0);
        assert_eq!(screened.stats.evaluations, 0);

        let unscreened = OpportunityPipeline::new(config(false))
            .run(paper_pools(), &paper_feed())
            .unwrap();
        assert!(unscreened.opportunities.is_empty());
        assert_eq!(unscreened.stats.evaluations, 2);
        assert_eq!(unscreened.stats.below_floor, 1);
    }

    #[test]
    fn stats_display_one_liner() {
        let pipeline = OpportunityPipeline::default();
        let report = pipeline.run(paper_pools(), &paper_feed()).unwrap();
        let line = report.stats.to_string();
        assert!(line.contains("3 tokens"), "{line}");
        assert!(line.contains("3 pools"), "{line}");
        assert!(line.contains("1 cycles"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn balanced_market_yields_nothing() {
        let fee = FeeRate::UNISWAP_V2;
        let pools = vec![
            Pool::new(t(0), t(1), 1_000.0, 1_000.0, fee).unwrap(),
            Pool::new(t(1), t(2), 1_000.0, 1_000.0, fee).unwrap(),
            Pool::new(t(2), t(0), 1_000.0, 1_000.0, fee).unwrap(),
        ];
        let mut feed = PriceTable::new();
        for i in 0..3 {
            feed.set(t(i), 1.0);
        }
        let report = OpportunityPipeline::default().run(pools, &feed).unwrap();
        assert!(report.opportunities.is_empty());
        assert_eq!(report.stats.cycles_discovered, 0);
    }
}
