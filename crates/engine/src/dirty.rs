//! A generation-stamped dense dirty set keyed by cycle arena slots.
//!
//! The streaming engine used to track dirty cycles in a
//! `BTreeSet<CycleId>`: every insert paid a tree walk and an allocation,
//! and the per-refresh `clear()` freed the nodes again — on the hottest
//! path in the codebase. `CycleId`s are already dense arena indices, so a
//! flat stamp array does the same job with O(1) insert/remove/clear and
//! no steady-state allocation:
//!
//! * `stamps[slot] == generation` ⇔ slot is dirty;
//! * clearing the whole set is one generation bump;
//! * iteration scans the stamp array in slot order — exactly the
//!   ascending-`CycleId` order the old `BTreeSet` produced, so swapping
//!   the structure changes no observable engine behavior.
//!
//! The array only grows when the cycle arena itself grows (a new pool
//! opened cycles), never during a steady-state refresh.

use arb_graph::CycleId;

/// The dense dirty-cycle set. See the module docs for the design.
#[derive(Debug, Clone)]
pub(crate) struct DirtyCycleSet {
    /// `stamps[slot] == generation` marks slot dirty; any other value
    /// (including 0, which `generation` never takes) means clean.
    stamps: Vec<u32>,
    generation: u32,
    len: usize,
}

/// `generation` must start at 1 — a derived default's 0 would alias the
/// cleared-stamp sentinel and silently break `insert`.
impl Default for DirtyCycleSet {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtyCycleSet {
    pub(crate) fn new() -> Self {
        DirtyCycleSet {
            stamps: Vec::new(),
            generation: 1,
            len: 0,
        }
    }

    /// Number of dirty slots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Arena slots this set has capacity for (the high-water cycle-arena
    /// size it has seen) — reported in `StreamStats` so the dense-bitset
    /// swap stays visible in telemetry.
    pub(crate) fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Marks `id` dirty; returns `true` when it was clean before (the
    /// same contract as `BTreeSet::insert`). Grows the stamp array only
    /// when the arena has grown past its high-water mark.
    pub(crate) fn insert(&mut self, id: CycleId) -> bool {
        let slot = id.index();
        if slot >= self.stamps.len() {
            self.stamps.resize(slot + 1, 0);
        }
        if self.stamps[slot] == self.generation {
            return false;
        }
        self.stamps[slot] = self.generation;
        self.len += 1;
        true
    }

    /// Unmarks `id`; returns `true` when it was dirty.
    pub(crate) fn remove(&mut self, id: CycleId) -> bool {
        let slot = id.index();
        if slot < self.stamps.len() && self.stamps[slot] == self.generation {
            self.stamps[slot] = 0;
            self.len -= 1;
            return true;
        }
        false
    }

    /// Empties the set in O(1) by bumping the generation. On the (once
    /// per ~4 billion clears) wraparound past `u32::MAX`, the stamp array
    /// is rewound to zero so stale stamps can never alias the new
    /// generation.
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.generation = match self.generation.checked_add(1) {
            Some(next) => next,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// The dirty slots in arena (ascending `CycleId`) order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = CycleId> + '_ {
        self.stamps.iter().enumerate().filter_map(|(slot, &stamp)| {
            (stamp == self.generation).then_some(CycleId::from_index(slot))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> CycleId {
        CycleId::from_index(i)
    }

    #[test]
    fn insert_remove_clear_track_membership() {
        let mut set = DirtyCycleSet::new();
        assert_eq!(set.len(), 0);
        assert!(set.insert(c(3)));
        assert!(!set.insert(c(3)), "double insert reports already-dirty");
        assert!(set.insert(c(0)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![c(0), c(3)]);
        assert!(set.remove(c(3)));
        assert!(!set.remove(c(3)));
        assert!(!set.remove(c(7)), "never-seen slot is clean");
        assert_eq!(set.len(), 1);
        set.clear();
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        // Stamps from the previous generation never alias the new one.
        assert!(set.insert(c(0)));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![c(0)]);
    }

    #[test]
    fn iteration_is_arena_order_like_the_old_btreeset() {
        let mut set = DirtyCycleSet::new();
        for slot in [9, 2, 7, 0, 4] {
            set.insert(c(slot));
        }
        let order: Vec<usize> = set.iter().map(|id| id.index()).collect();
        assert_eq!(order, vec![0, 2, 4, 7, 9]);
        assert_eq!(set.capacity(), 10, "grows to the high-water slot");
    }

    #[test]
    fn default_is_equivalent_to_new() {
        // A derived Default would start generation at 0, aliasing the
        // cleared-stamp sentinel — insert() would silently no-op.
        let mut set = DirtyCycleSet::default();
        assert!(set.insert(c(0)), "default set must accept inserts");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn generation_wraparound_rewinds_stamps() {
        let mut set = DirtyCycleSet::new();
        set.insert(c(1));
        set.generation = u32::MAX;
        set.stamps[1] = u32::MAX; // as if inserted in the last generation
        set.clear();
        assert_eq!(set.generation, 1);
        assert!(set.insert(c(1)), "old stamp must not alias");
        assert_eq!(set.len(), 1);
    }
}
