//! Sound feed-priced upper bounds on cycle profit.
//!
//! Both screens that discharge cycles without evaluating them — the
//! streaming engine's floor screen and the batch pipeline's cold-start
//! screen — share these bounds. Each bound is a *sound* over-estimate of
//! the monetized gross profit any trading plan can extract from a
//! cycle's hops, so screening on it never changes output, only skips
//! provably-dead work.
//!
//! Two complementary bounds are maintained:
//!
//! * **Pool potential** ([`cycle_profit_bound`]): `Σ_pools
//!   (√(Pa·x) − √(Pb·y))²` — the pools' total displacement from their
//!   price-aligned value minimum. Tight for near-aligned universes, but
//!   it blows up for whale-displaced pools: a pool knocked far off the
//!   feed price holds a large *book* potential even when fees make the
//!   marginal trade unprofitable.
//! * **Per-hop fee-aware** ([`cycle_hop_profit_bound`]): for each hop,
//!   the closed-form unconstrained maximum of the hop's standalone
//!   profit `P_out·F(Δ) − P_in·Δ`, summed along the cycle. Because it is
//!   driven by marginal (fee-adjusted spot) rates rather than reserve
//!   displacement, it discharges exactly the marginal whale-displaced
//!   loops the pool-potential bound cannot.
//!
//! A cycle is floor-screened when *either* bound (plus a conservative
//! relative margin) cannot clear the effective gross floor.

use arb_cex::feed::PriceFeed;
use arb_graph::{Cycle, TokenGraph};

/// Relative safety margin applied over either bound before a cycle is
/// floor-screened, so strategy-side floating-point rounding can never
/// flip a kept opportunity into a screened drop. The analytic bounds'
/// real-world slack is orders of magnitude larger than this.
pub(crate) const FLOOR_SCREEN_MARGIN: f64 = 1e-6;

/// Why (or whether) the floor screen discharged a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FloorVerdict {
    /// Neither bound could prove the cycle dead; evaluate it.
    Keep,
    /// The pool-potential bound discharged it.
    PoolBound,
    /// Only the per-hop fee-aware bound discharged it (the
    /// whale-displaced case the pool-potential bound cannot reach).
    HopBound,
}

/// Runs both floor screens against `required_gross`, cheapest first.
pub(crate) fn floor_verdict<F: PriceFeed>(
    graph: &TokenGraph,
    cycle: &Cycle,
    feed: &F,
    required_gross: f64,
) -> FloorVerdict {
    let below = |bound: f64| bound + FLOOR_SCREEN_MARGIN * (1.0 + bound) < required_gross;
    if cycle_profit_bound(graph, cycle, feed).is_some_and(below) {
        FloorVerdict::PoolBound
    } else if cycle_hop_profit_bound(graph, cycle, feed).is_some_and(below) {
        FloorVerdict::HopBound
    } else {
        FloorVerdict::Keep
    }
}

/// A sound upper bound, in USD at current feed prices, on the monetized
/// gross profit *any* trading plan can extract from a cycle's pools.
///
/// Per pool with reserves `(x, y)` and token prices `(Pa, Pb)`: the
/// pool's holdings are worth `Pa·x + Pb·y ≥ 2√(Pa·Pb·x·y)` (AM–GM), the
/// product `x·y` never decreases under fee-charging swaps, and every
/// token the trader nets is a token some pool lost — so the total value
/// extracted cannot exceed `Σ_pools (√(Pa·x) − √(Pb·y))²` (zero exactly
/// when every pool is already price-aligned; this is the pools'
/// arbitrage potential in the sense of Milionis et al.'s LVR).
///
/// Returns `None` when a pool token is unpriced or a price is not a
/// positive finite number — the caller then falls through to the exact
/// path, which classifies the cycle itself.
pub(crate) fn cycle_profit_bound<F: PriceFeed>(
    graph: &TokenGraph,
    cycle: &Cycle,
    feed: &F,
) -> Option<f64> {
    let mut bound = 0.0;
    for &pool in cycle.pools() {
        let p = graph.pool(pool).ok()?;
        let price_a = feed.usd_price(p.token_a())?;
        let price_b = feed.usd_price(p.token_b())?;
        if !(price_a.is_finite() && price_a > 0.0 && price_b.is_finite() && price_b > 0.0) {
            return None;
        }
        let gap = (price_a * p.reserve_a()).sqrt() - (price_b * p.reserve_b()).sqrt();
        bound += gap * gap;
    }
    bound.is_finite().then_some(bound)
}

/// The per-hop directional fee-aware profit bound: a sound USD upper
/// bound on the gross profit of any flow routed along a cycle's hops.
///
/// A loop's monetized profit telescopes into per-hop terms: valuing
/// every hop's input and output at feed prices, the intermediate legs
/// cancel and the total is exactly `Σ_hops (P_out·F_h(Δ_h) − P_in·Δ_h)`
/// — for the coordinated loop flow *or* any other flow assignment. Each
/// term is a concave function of `Δ_h` whose unconstrained maximum over
/// `Δ ≥ 0` has the closed form (for the CPMM hop `F(Δ) = γ·y·Δ/(x+γΔ)`)
///
/// ```text
/// max(0, √(P_out·y) − √(P_in·x/γ))²
/// ```
///
/// zero when the hop's fee-adjusted spot rate is already unprofitable
/// (`P_out·γ·y/x ≤ P_in`). Summing the independent per-hop maxima
/// therefore over-estimates any realizable loop profit. The reserve
/// ingredients `[√y, √(x/γ)]` come pre-cached per slot and direction
/// from [`TokenGraph::pool_bound_terms`], so each hop costs two price
/// square roots and a multiply-add.
///
/// Returns `None` when a hop token is unpriced, a price is not a
/// positive finite number, a hop's slot is retired (NaN terms), or the
/// cycle's hop directions cannot be resolved.
pub(crate) fn cycle_hop_profit_bound<F: PriceFeed>(
    graph: &TokenGraph,
    cycle: &Cycle,
    feed: &F,
) -> Option<f64> {
    let tokens = cycle.tokens();
    let n = tokens.len();
    let mut bound = 0.0;
    for (j, (&pool, &token_in)) in cycle.pools().iter().zip(tokens).enumerate() {
        let token_out = tokens[(j + 1) % n];
        let p = graph.pool(pool).ok()?;
        let dir = if token_in == p.token_a() {
            0
        } else if token_in == p.token_b() {
            1
        } else {
            return None;
        };
        let [sqrt_out, sqrt_in_over_gamma] = graph.pool_bound_terms(pool)[dir];
        let price_in = feed.usd_price(token_in)?;
        let price_out = feed.usd_price(token_out)?;
        if !(price_in.is_finite() && price_in > 0.0 && price_out.is_finite() && price_out > 0.0) {
            return None;
        }
        let gap = price_out.sqrt() * sqrt_out - price_in.sqrt() * sqrt_in_over_gamma;
        if gap.is_nan() {
            return None;
        }
        if gap > 0.0 {
            bound += gap * gap;
        }
    }
    bound.is_finite().then_some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{OpportunityPipeline, PipelineConfig};
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use proptest::prelude::*;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn paper_graph() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap()
    }

    fn paper_feed() -> PriceTable {
        [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect()
    }

    /// The closed form `(√(P_out·y) − √(P_in·x/γ))²` really is the
    /// maximum of `P_out·F(Δ) − P_in·Δ`: a grid probe never beats it.
    #[test]
    fn hop_closed_form_dominates_grid_probe() {
        let fee = FeeRate::UNISWAP_V2;
        let (x, y) = (100.0, 200.0);
        let (p_in, p_out) = (2.0, 10.2);
        let pool = Pool::new(t(0), t(1), x, y, fee).unwrap();
        let curve = pool.curve(t(0)).unwrap();
        let gap = (p_out * y).sqrt() - (p_in * x / fee.gamma()).sqrt();
        let closed = gap * gap;
        let mut best = 0.0f64;
        for k in 0..10_000 {
            let delta = k as f64 * 0.1;
            best = best.max(p_out * curve.amount_out(delta) - p_in * delta);
        }
        assert!(closed >= best, "closed {closed} < probed {best}");
        assert!(closed <= best * 1.001, "closed form should be attained");
    }

    #[test]
    fn hop_bound_covers_every_evaluated_cycle_on_the_paper_triangle() {
        let graph = paper_graph();
        let feed = paper_feed();
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            max_cycle_len: 3,
            screen: false,
            ..PipelineConfig::default()
        });
        let report = pipeline
            .run(graph.pools().to_vec(), &feed)
            .expect("pipeline runs");
        assert!(!report.opportunities.is_empty(), "non-vacuous");
        for opp in &report.opportunities {
            let hop = cycle_hop_profit_bound(&graph, &opp.cycle, &feed).expect("priced");
            let pool = cycle_profit_bound(&graph, &opp.cycle, &feed).expect("priced");
            let gross = opp.gross_profit.value();
            assert!(hop >= gross, "hop bound {hop} < realized {gross}");
            assert!(pool >= gross, "pool bound {pool} < realized {gross}");
        }
    }

    #[test]
    fn retired_slots_poison_the_hop_bound() {
        let mut graph = paper_graph();
        let feed = paper_feed();
        let cycle = graph.cycles(3).unwrap().into_iter().next().unwrap();
        assert!(cycle_hop_profit_bound(&graph, &cycle, &feed).is_some());
        graph.remove_pool(cycle.pools()[0]).unwrap();
        assert_eq!(cycle_hop_profit_bound(&graph, &cycle, &feed), None);
    }

    #[test]
    fn unpriced_tokens_disable_both_bounds() {
        let graph = paper_graph();
        let feed: PriceTable = [(t(0), 2.0), (t(1), 10.2)].into_iter().collect();
        let cycle = graph.cycles(3).unwrap().into_iter().next().unwrap();
        assert_eq!(cycle_profit_bound(&graph, &cycle, &feed), None);
        assert_eq!(cycle_hop_profit_bound(&graph, &cycle, &feed), None);
    }

    /// Builds a 3-token triangle with the given reserve/fee regime,
    /// evaluates every cycle unscreened, and checks both bounds cover
    /// each realized gross profit. Used directly by the proptest below.
    fn assert_bounds_sound(
        reserves: &[(f64, f64); 3],
        fees: &[FeeRate; 3],
        prices: &[f64],
    ) -> Result<(), TestCaseError> {
        let pools = vec![
            Pool::new(t(0), t(1), reserves[0].0, reserves[0].1, fees[0]).unwrap(),
            Pool::new(t(1), t(2), reserves[1].0, reserves[1].1, fees[1]).unwrap(),
            Pool::new(t(2), t(0), reserves[2].0, reserves[2].1, fees[2]).unwrap(),
        ];
        let graph = TokenGraph::new(pools.clone()).unwrap();
        let feed: PriceTable = [(t(0), prices[0]), (t(1), prices[1]), (t(2), prices[2])]
            .into_iter()
            .collect();
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            screen: false,
            parallel: false,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(pools, &feed).expect("pipeline runs");
        for opp in &report.opportunities {
            let gross = opp.gross_profit.value();
            // Tolerance matching the floor screen's own safety margin.
            let slack = |b: f64| b + FLOOR_SCREEN_MARGIN * (1.0 + b);
            if let Some(hop) = cycle_hop_profit_bound(&graph, &opp.cycle, &feed) {
                prop_assert!(
                    slack(hop) >= gross,
                    "hop bound {hop} < realized {gross} (cycle {:?})",
                    opp.cycle.tokens()
                );
            }
            if let Some(pool) = cycle_profit_bound(&graph, &opp.cycle, &feed) {
                prop_assert!(
                    slack(pool) >= gross,
                    "pool bound {pool} < realized {gross} (cycle {:?})",
                    opp.cycle.tokens()
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness under randomized reserves, prices, and fee regimes
        /// (the Milionis et al. tiers plus V2): neither bound ever
        /// under-estimates a realized optimal gross profit.
        #[test]
        fn bounds_cover_realized_profit_under_random_fee_regimes(
            r in proptest::collection::vec(1e2..1e7f64, 6),
            p in proptest::collection::vec(1e-2..1e4f64, 3),
            f in proptest::collection::vec(0..4usize, 3),
        ) {
            // The Milionis et al. tiers (5 / 30 / 100 bps) plus V2.
            let tiers = [
                FeeRate::UNISWAP_V2,
                FeeRate::from_ppm(500).unwrap(),
                FeeRate::from_ppm(3_000).unwrap(),
                FeeRate::from_ppm(10_000).unwrap(),
            ];
            let reserves = [(r[0], r[1]), (r[2], r[3]), (r[4], r[5])];
            let fees = [tiers[f[0]], tiers[f[1]], tiers[f[2]]];
            assert_bounds_sound(&reserves, &fees, &p)?;
        }

        /// Dynamic-fee drift (Alexander & Fritz): the same universe
        /// re-synced through a sequence of fee regimes — the cached
        /// bound ingredients must stay sound after every mutation, not
        /// just at construction.
        #[test]
        fn bounds_stay_sound_under_dynamic_fee_drift(
            r in proptest::collection::vec(1e2..1e6f64, 6),
            p in proptest::collection::vec(1e-1..1e3f64, 3),
            drift in proptest::collection::vec((0..3usize, 0.8..1.25f64), 1..6),
        ) {
            let reserves = [(r[0], r[1]), (r[2], r[3]), (r[4], r[5])];
            let fees = [
                FeeRate::from_ppm(500).unwrap(),
                FeeRate::from_ppm(3_000).unwrap(),
                FeeRate::from_ppm(10_000).unwrap(),
            ];
            let pools = vec![
                Pool::new(t(0), t(1), reserves[0].0, reserves[0].1, fees[0]).unwrap(),
                Pool::new(t(1), t(2), reserves[1].0, reserves[1].1, fees[1]).unwrap(),
                Pool::new(t(2), t(0), reserves[2].0, reserves[2].1, fees[2]).unwrap(),
            ];
            let mut graph = TokenGraph::new(pools).unwrap();
            let feed: PriceTable = [(t(0), p[0]), (t(1), p[1]), (t(2), p[2])]
                .into_iter()
                .collect();
            let pipeline = OpportunityPipeline::new(PipelineConfig {
                screen: false,
                parallel: false,
                ..PipelineConfig::default()
            });
            for &(slot, scale) in &drift {
                let pool = *graph.pool(arb_amm::pool::PoolId::new(slot as u32)).unwrap();
                graph
                    .apply_sync(
                        arb_amm::pool::PoolId::new(slot as u32),
                        pool.reserve_a() * scale,
                        pool.reserve_b() / scale,
                    )
                    .unwrap();
                let live: Vec<Pool> = graph.live_pools().map(|(_, p)| *p).collect();
                let report = pipeline.run(live, &feed).expect("pipeline runs");
                for opp in &report.opportunities {
                    let gross = opp.gross_profit.value();
                    let slack = |b: f64| b + FLOOR_SCREEN_MARGIN * (1.0 + b);
                    if let Some(hop) = cycle_hop_profit_bound(&graph, &opp.cycle, &feed) {
                        prop_assert!(
                            slack(hop) >= gross,
                            "hop bound {hop} < realized {gross} after drift"
                        );
                    }
                }
            }
        }
    }
}
