//! The sharded multi-engine runtime: one [`StreamingEngine`] per shard.
//!
//! A single streaming engine owns the whole pool universe; past a few
//! hundred pools its per-tick serial sections (candidate preparation,
//! standing-set maintenance, the full clone + sort behind
//! [`StreamingEngine::ranked`]) become the bottleneck. This module splits
//! the universe along connected components ([`arb_graph::Partition`]) —
//! an arbitrage cycle can never cross a component boundary, so sharding by
//! component loses nothing — and runs an independent engine per shard:
//!
//! ```text
//! events ──▶ route by owning shard ─┬─▶ shard 0: StreamingEngine ─┐
//!            (PoolCreated broadcast │        ⋮   (worker pool)    ├─▶ k-way
//!             for slot alignment)   └─▶ shard N: StreamingEngine ─┘   merge
//!                                                                      │
//!                                              global ranked opportunity set
//! ```
//!
//! * **Routing.** Pool-keyed events (`Sync`/`Swap`/`Mint`/`Burn`) go only
//!   to the owning shard. `PoolCreated` is broadcast so every shard keeps
//!   the same `PoolId` slot space (the streaming desync checks rely on
//!   it); non-owners retire the new slot immediately after applying it.
//! * **Rebuilds.** A created pool that bridges two different shards'
//!   components would let cycles span shards, so the runtime flushes
//!   pending work and repartitions from the merged live state — rare,
//!   counted in [`RuntimeStats::rebuilds`], and equivalence-preserving
//!   (evaluation is a pure function of reserves + feed, so re-evaluating
//!   from cold reproduces every standing value bit-for-bit).
//! * **Merging.** Each shard's ranked list is cached against its engine's
//!   [`StreamingEngine::standing_revision`] and re-cloned only when the
//!   shard actually changed; the global ranking is a k-way merge under
//!   the pipeline's total execution-priority order. With `top_k` set,
//!   per-shard lists are already `top_k`-truncated and the merge stops at
//!   `top_k` — the global top-k of a union is always drawn from the
//!   per-shard top-k's.
//!
//! The merged output is **bit-identical** to one [`StreamingEngine`] over
//! the same event stream (`tests/runtime_equivalence.rs` proves it across
//! the workload catalog): sharding is an execution strategy, never an
//! approximation.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use arb_amm::pool::{Pool, PoolId};
use arb_cex::feed::PriceFeed;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_display;
use arb_graph::{Partition, TokenGraph};
use arb_obs::{Counter, Gauge, Histogram, Obs};
use rayon::prelude::*;

use crate::checkpoint::RuntimeCheckpoint;
use crate::error::EngineError;
use crate::opportunity::ArbitrageOpportunity;
use crate::pipeline::OpportunityPipeline;
use crate::streaming::{StreamStats, StreamingEngine};

/// A hook invoked just before each shard's queue is flushed on a tick —
/// the seam fault-injection harnesses use to make a specific shard slow
/// or panic mid-tick at a chosen `(shard, tick)` coordinate, without the
/// runtime knowing anything about chaos plans.
///
/// Invoked serially (outside the worker pool) so a panicking hook
/// unwinds on the caller's thread exactly like a panicking shard worker
/// would (the worker-pool shim re-raises worker panics on the caller).
/// Hooks are **not** part of checkpoints: a recovered runtime starts
/// with no hook, and supervisors re-install theirs after rebuild.
pub trait TickHook: Send + Sync + fmt::Debug {
    /// Called once per shard per flush, with the runtime's tick counter
    /// (completed [`ShardedRuntime::apply_events`] calls, so the first
    /// tick is 0).
    fn before_shard_tick(&self, shard: usize, tick: u64);
}

/// Cumulative counters for one sharded runtime's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Event batches processed ([`ShardedRuntime::apply_events`] calls).
    pub ticks: usize,
    /// Pool-keyed events routed to a single owning shard.
    pub events_routed: usize,
    /// `PoolCreated` events broadcast to every shard for slot alignment.
    pub broadcasts: usize,
    /// Full repartitions triggered by cross-shard bridge pools.
    pub rebuilds: usize,
    /// Adaptive repartitions triggered by dirty-load skew
    /// ([`RebalanceConfig`]).
    pub rebalances: usize,
    /// Per-shard refresh passes run (ticks × shards, plus rebuild flushes).
    pub shard_refreshes: usize,
    /// Shard ranked-list clones skipped because the shard's standing
    /// revision had not moved since the cache was filled.
    pub merge_cache_hits: usize,
    /// Opportunities in the most recent merged ranking.
    pub merged_opportunities: usize,
    /// Wall-clock nanoseconds spent in the most recent merge.
    pub last_merge_nanos: u64,
    /// Total wall-clock nanoseconds spent merging.
    pub total_merge_nanos: u64,
    /// Wall-clock nanoseconds of the most recent end-to-end tick.
    pub last_tick_nanos: u64,
    /// Total wall-clock nanoseconds across all ticks.
    pub total_tick_nanos: u64,
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ticks ({} events routed, {} broadcasts, {} rebuilds, \
             {} rebalances), {} shard refreshes, {} merge cache hits, \
             {} standing opportunities, last tick {}ns (merge {}ns)",
            self.ticks,
            self.events_routed,
            self.broadcasts,
            self.rebuilds,
            self.rebalances,
            self.shard_refreshes,
            self.merge_cache_hits,
            self.merged_opportunities,
            self.last_tick_nanos,
            self.last_merge_nanos
        )
    }
}

/// The fleet-wide profitability-screen counters, summed across every
/// shard engine **and** across rebuilds (a repartition replaces the
/// engines, so their counters are banked first — these totals are
/// cumulative for the runtime's lifetime, like
/// [`ShardedRuntime::cycles_evaluated`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenTotals {
    /// Dirty cycles dropped by the incremental log-sum screen.
    pub cycles_screened_out: usize,
    /// Dirty cycles dropped by the feed-priced profit-floor bound.
    pub cycles_floor_screened: usize,
    /// The subset of [`ScreenTotals::cycles_floor_screened`] only the
    /// per-hop fee-aware bound could discharge.
    pub cycles_hop_screened: usize,
    /// Dirty cycles skipped for degenerate (`-∞`) log rates.
    pub cycles_degenerate_skipped: usize,
    /// O(1) delta updates applied to per-cycle log-sums.
    pub screen_delta_updates: usize,
    /// Exact resummations (drift control / non-finite rates).
    pub screen_resummations: usize,
    /// Strategy evaluation attempts actually performed.
    pub strategy_evaluations: usize,
}

impl ScreenTotals {
    /// Accumulates one engine's screen counters into the totals (used by
    /// the runtime across its fleet, and by telemetry consumers to view a
    /// single [`StreamingEngine`]'s counters in the same shape).
    pub fn add_stats(&mut self, stats: &StreamStats) {
        self.cycles_screened_out += stats.cycles_screened_out;
        self.cycles_floor_screened += stats.cycles_floor_screened;
        self.cycles_hop_screened += stats.cycles_hop_screened;
        self.cycles_degenerate_skipped += stats.cycles_degenerate_skipped;
        self.screen_delta_updates += stats.screen_delta_updates;
        self.screen_resummations += stats.screen_resummations;
        self.strategy_evaluations += stats.strategy_evaluations;
    }
}

impl fmt::Display for ScreenTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} screened, {} floor-screened ({} by hop bound), {} degenerate, \
             {} strategy evaluations (screen {}Δ/{}Σ)",
            self.cycles_screened_out,
            self.cycles_floor_screened,
            self.cycles_hop_screened,
            self.cycles_degenerate_skipped,
            self.strategy_evaluations,
            self.screen_delta_updates,
            self.screen_resummations
        )
    }
}

/// Tuning for adaptive hot-shard rebalancing.
///
/// The runtime accumulates per-pool and per-shard routed-event counts
/// over a rolling window of `interval_ticks` ticks. At each window
/// boundary, if the busiest shard's window load exceeds
/// `skew_threshold ×` the mean (or a single engine is serving a
/// universe that `max_shards` could split), the runtime flushes,
/// repartitions with [`Partition::new_weighted`] — weighting components
/// by observed load and splitting the dominant component along bridge
/// boundaries — and rebuilds the fleet. Every input to the decision is
/// derived from the journaled event stream (never wall-clock), so a
/// replay of the same events reproduces the same rebalances, and the
/// rebuild re-evaluates from reserves + feed alone, so the merged output
/// stays bit-identical to a single engine whether or not a rebalance
/// fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Master switch; disabled keeps the static construction-time
    /// partition for the runtime's lifetime.
    pub enabled: bool,
    /// Window length in ticks between skew checks (0 behaves as 1).
    pub interval_ticks: usize,
    /// Rebalance when the busiest shard's window events exceed this
    /// multiple of the mean shard's.
    pub skew_threshold: f64,
    /// Minimum routed events in a window before skew is trusted — keeps
    /// near-idle fleets from thrashing on noise.
    pub min_window_events: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            interval_ticks: 8,
            skew_threshold: 1.5,
            min_window_events: 32,
        }
    }
}

impl RebalanceConfig {
    /// An enabled config with the default window and threshold.
    pub fn enabled() -> Self {
        RebalanceConfig {
            enabled: true,
            ..RebalanceConfig::default()
        }
    }
}

/// Per-shard load telemetry: the dirty-load window driving rebalance
/// decisions plus the current fleet's evaluation counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLoads {
    /// Pool-keyed events routed to each shard in the current rebalance
    /// window.
    pub window_events: Vec<u64>,
    /// Dirty-cycle evaluations per shard (current fleet; rebuilds and
    /// rebalances reset these, see [`ShardedRuntime::shard_stats`]).
    pub evaluations: Vec<usize>,
    /// Lifetime adaptive rebalances ([`RuntimeStats::rebalances`]).
    pub rebalances: usize,
}

impl ShardLoads {
    /// Busiest ÷ mean window load (1.0 for an empty or single-shard
    /// window) — the number the rebalance threshold is compared against.
    pub fn skew(&self) -> f64 {
        let total: u64 = self.window_events.iter().sum();
        if total == 0 || self.window_events.is_empty() {
            return 1.0;
        }
        let max = *self.window_events.iter().max().expect("non-empty") as f64;
        max / (total as f64 / self.window_events.len() as f64)
    }
}

impl fmt::Display for ShardLoads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards, window events {:?} (skew {:.2}x), evaluations {:?}, {} rebalances",
            self.window_events.len(),
            self.window_events,
            self.skew(),
            self.evaluations,
            self.rebalances
        )
    }
}

/// One tick's telemetry, captured atomically at the tick boundary.
///
/// [`ShardedRuntime::shard_loads`] and [`ShardedRuntime::screen_totals`]
/// are separate reads: a caller (or a serving wrapper polling between
/// ticks) interleaving them around an `apply_events` can pair a
/// pre-tick load picture with a post-tick screen picture — torn across
/// ticks. The runtime therefore captures both (plus the stats and
/// revision they belong to) in one place at the end of every merge;
/// [`ShardedRuntime::telemetry`] returns that last consistent capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeTelemetry {
    /// The tick this capture closed ([`RuntimeStats::ticks`] after the
    /// merge; 0 means no tick has completed yet).
    pub tick: usize,
    /// The merged standing revision at the capture.
    pub revision: u64,
    /// Cumulative runtime counters at the capture.
    pub stats: RuntimeStats,
    /// Fleet-wide screen totals at the capture.
    pub screen: ScreenTotals,
    /// Per-shard load picture at the capture.
    pub loads: ShardLoads,
}

/// Pre-resolved registry instruments for the runtime, plus the `Obs`
/// handle kept to re-wire shard engines after rebuilds/rebalances.
#[derive(Debug)]
struct RuntimeObs {
    handle: Obs,
    tick_ns: Histogram,
    merge_ns: Histogram,
    ticks: Counter,
    events_routed: Counter,
    broadcasts: Counter,
    rebuilds: Counter,
    rebalances: Counter,
    shard_refreshes: Counter,
    merge_cache_hits: Counter,
    merged_opportunities: Gauge,
    shard_count: Gauge,
    mirrored: RuntimeStats,
}

impl RuntimeObs {
    fn new(obs: &Obs) -> Self {
        let registry = obs.registry();
        RuntimeObs {
            handle: obs.clone(),
            tick_ns: registry.histogram("runtime.tick_ns"),
            merge_ns: registry.histogram("runtime.merge_ns"),
            ticks: registry.counter("runtime.ticks"),
            events_routed: registry.counter("runtime.events_routed"),
            broadcasts: registry.counter("runtime.broadcasts"),
            rebuilds: registry.counter("runtime.rebuilds"),
            rebalances: registry.counter("runtime.rebalances"),
            shard_refreshes: registry.counter("runtime.shard_refreshes"),
            merge_cache_hits: registry.counter("runtime.merge_cache_hits"),
            merged_opportunities: registry.gauge("runtime.merged_opportunities"),
            shard_count: registry.gauge("runtime.shard_count"),
            mirrored: RuntimeStats::default(),
        }
    }

    /// Pushes the delta since the last sync (monotone fields) and the
    /// current levels (gauges); the nanosecond fields feed the
    /// histograms directly in `merge`.
    fn sync(&mut self, current: &RuntimeStats, shards: usize) {
        let m = &self.mirrored;
        self.ticks.add((current.ticks - m.ticks) as u64);
        self.events_routed
            .add((current.events_routed - m.events_routed) as u64);
        self.broadcasts
            .add((current.broadcasts - m.broadcasts) as u64);
        self.rebuilds.add((current.rebuilds - m.rebuilds) as u64);
        self.rebalances
            .add((current.rebalances - m.rebalances) as u64);
        self.shard_refreshes
            .add((current.shard_refreshes - m.shard_refreshes) as u64);
        self.merge_cache_hits
            .add((current.merge_cache_hits - m.merge_cache_hits) as u64);
        self.merged_opportunities
            .set(current.merged_opportunities as f64);
        self.shard_count.set(shards as f64);
        self.mirrored = *current;
    }
}

/// The merged, globally ranked output of one runtime tick.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The merged standing opportunity set in execution-priority order.
    pub opportunities: Vec<ArbitrageOpportunity>,
    /// Cumulative runtime counters at the time of the tick.
    pub stats: RuntimeStats,
}

impl RuntimeReport {
    /// The best standing opportunity across all shards, if any.
    pub fn best(&self) -> Option<&ArbitrageOpportunity> {
        self.opportunities.first()
    }
}

/// One shard: an engine plus its event queue and cached ranking.
#[derive(Debug)]
struct Shard {
    engine: StreamingEngine,
    queue: Vec<Event>,
    /// This shard's standing set in execution-priority order, valid while
    /// `revision` matches the engine's standing revision.
    ranked: Vec<ArbitrageOpportunity>,
    revision: u64,
}

impl Shard {
    /// Re-clones the cached ranking if the engine's standing set moved.
    /// Returns whether the cache was still valid.
    fn refresh_cache(&mut self) -> bool {
        let revision = self.engine.standing_revision();
        if revision == self.revision {
            return true;
        }
        self.ranked = self.engine.ranked();
        self.revision = revision;
        false
    }
}

/// The sharded multi-engine runtime. See the module docs for the
/// architecture; construction partitions the universe, after which
/// [`ShardedRuntime::apply_events`] is the whole interface: route, flush
/// on a worker pool, merge.
#[derive(Debug)]
pub struct ShardedRuntime {
    /// The merge pipeline: comparator + `top_k` for the global ranking.
    /// Shard engines hold clones of it.
    pipeline: OpportunityPipeline,
    shards: Vec<Shard>,
    partition: Partition,
    /// Total pool slots across the universe (every shard mirrors them).
    pool_slots: usize,
    /// The shard-count cap to re-apply on rebuilds.
    max_shards: usize,
    /// `PoolCreated` slots awaiting retirement in non-owning shards
    /// (processed after the queues drain, before anything re-evaluates).
    pending_retires: Vec<(PoolId, usize)>,
    /// Cycle evaluations accumulated by shard fleets that rebuilds have
    /// since replaced, so [`ShardedRuntime::cycles_evaluated`] stays
    /// cumulative across repartitions.
    evaluations_before_rebuilds: usize,
    /// Screen counters banked from replaced fleets, mirroring
    /// `evaluations_before_rebuilds`.
    screen_before_rebuilds: ScreenTotals,
    /// Adaptive rebalancing tuning (off by default).
    rebalance: RebalanceConfig,
    /// Routed events per pool slot in the current rebalance window —
    /// the weights handed to [`Partition::new_weighted`]. Derived purely
    /// from the event stream, so replays rebalance identically.
    pool_weights: Vec<u64>,
    /// Routed events per shard in the current rebalance window.
    shard_window_events: Vec<u64>,
    /// Ticks elapsed in the current rebalance window.
    window_ticks: usize,
    /// Bumped whenever a merge found at least one shard whose standing
    /// set moved (see [`ShardedRuntime::standing_revision`]).
    revision: u64,
    stats: RuntimeStats,
    /// Registry instruments, when observability is attached
    /// ([`ShardedRuntime::set_obs`]).
    obs: Option<RuntimeObs>,
    /// Last tick-boundary telemetry capture
    /// ([`ShardedRuntime::telemetry`]).
    telemetry: RuntimeTelemetry,
    /// Per-shard pre-tick hook ([`ShardedRuntime::set_tick_hook`]).
    tick_hook: Option<Arc<dyn TickHook>>,
}

impl ShardedRuntime {
    /// Builds the runtime over an initial pool universe, partitioning it
    /// into at most `max_shards` component-aligned shards (fewer when the
    /// graph has fewer components). Every shard engine starts cold; the
    /// first [`ShardedRuntime::refresh`] produces the full ranking.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for an invalid pipeline config and
    /// [`EngineError::Graph`] on graph/index construction failures.
    pub fn new(
        pipeline: OpportunityPipeline,
        pools: Vec<Pool>,
        max_shards: usize,
    ) -> Result<Self, EngineError> {
        let graph = TokenGraph::new(pools)?;
        Self::with_graph(pipeline, graph, max_shards)
    }

    /// Builds the runtime over an already-constructed graph, which may
    /// contain retired slots (a chain mirror with degenerate pools).
    /// Retired slots keep their component's shard so a later revive stays
    /// shard-local.
    ///
    /// # Errors
    ///
    /// See [`ShardedRuntime::new`].
    pub fn with_graph(
        pipeline: OpportunityPipeline,
        graph: TokenGraph,
        max_shards: usize,
    ) -> Result<Self, EngineError> {
        pipeline.config().validate()?;
        let partition = Partition::new(&graph, max_shards);
        let shards = Self::build_shards(&pipeline, &graph, &partition)?;
        Ok(ShardedRuntime {
            pipeline,
            pool_slots: graph.pool_count(),
            partition,
            max_shards,
            pending_retires: Vec::new(),
            evaluations_before_rebuilds: 0,
            screen_before_rebuilds: ScreenTotals::default(),
            rebalance: RebalanceConfig::default(),
            pool_weights: vec![0; graph.pool_count()],
            shard_window_events: vec![0; shards.len()],
            window_ticks: 0,
            revision: 0,
            shards,
            stats: RuntimeStats::default(),
            obs: None,
            telemetry: RuntimeTelemetry::default(),
            tick_hook: None,
        })
    }

    /// Sets the adaptive-rebalancing policy (builder style; the default
    /// is disabled). Safe to call on a freshly restored runtime too —
    /// rebalance bookkeeping always starts from an empty window.
    pub fn with_rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = config;
        self
    }

    /// Installs (or replaces) the per-shard pre-tick [`TickHook`]. Pass
    /// hooks survive repartitions but not checkpoints — see the trait
    /// docs.
    pub fn set_tick_hook(&mut self, hook: Arc<dyn TickHook>) {
        self.tick_hook = Some(hook);
    }

    /// Removes the installed [`TickHook`].
    pub fn clear_tick_hook(&mut self) {
        self.tick_hook = None;
    }

    fn build_shards(
        pipeline: &OpportunityPipeline,
        graph: &TokenGraph,
        partition: &Partition,
    ) -> Result<Vec<Shard>, EngineError> {
        (0..partition.shard_count())
            .map(|shard| {
                // Full slot array (id alignment with the event stream),
                // with everything the shard does not own retired — the
                // cycle index then enumerates exactly the shard's cycles.
                let mut shard_graph = graph.clone();
                for index in 0..graph.pool_count() {
                    let id = PoolId::new(index as u32);
                    if partition.shard_of_pool(id) != Some(shard) {
                        shard_graph.remove_pool(id)?;
                    }
                }
                let engine = StreamingEngine::with_graph(pipeline.clone(), shard_graph)?;
                let revision = engine.standing_revision();
                Ok(Shard {
                    engine,
                    queue: Vec::new(),
                    ranked: Vec::new(),
                    revision,
                })
            })
            .collect()
    }

    /// Attaches observability: `runtime.*` counters/gauges mirror
    /// [`RuntimeStats`], `runtime.tick_ns`/`runtime.merge_ns` histograms
    /// record every tick, and each shard engine reports its
    /// [`StreamStats`] and refresh/rank spans under `engine.*` (shard
    /// deltas are additive, so the registry shows fleet totals). The
    /// handle survives rebuilds and rebalances — replacement fleets are
    /// re-wired automatically.
    pub fn set_obs(&mut self, obs: &Obs) {
        let mut runtime_obs = RuntimeObs::new(obs);
        runtime_obs.sync(&self.stats, self.shards.len());
        self.obs = Some(runtime_obs);
        self.wire_shards();
    }

    /// Points every current shard engine at the attached registry (on
    /// attach, and again after each rebuild/rebalance replaces the
    /// fleet).
    fn wire_shards(&mut self) {
        if let Some(obs) = &self.obs {
            let handle = obs.handle.clone();
            for shard in &mut self.shards {
                shard.engine.set_obs(&handle);
            }
        }
    }

    /// The last tick-boundary telemetry capture: stats, screen totals,
    /// shard loads, and the standing revision, all snapshotted together
    /// at the end of the same merge (see [`RuntimeTelemetry`]). Default
    /// (tick 0) until the first tick completes.
    pub fn telemetry(&self) -> &RuntimeTelemetry {
        &self.telemetry
    }

    /// Number of shards in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current pool → shard assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Cumulative runtime counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Monotone revision of the merged standing set. Bumped exactly when
    /// a merge pass observed at least one shard whose standing ranking
    /// moved, so two calls returning the same value bracket a window in
    /// which [`ShardedRuntime::apply_events`] rankings were unchanged.
    /// Restored runtimes restart at zero; serving layers that survive a
    /// restore must re-anchor rather than compare across the gap.
    pub fn standing_revision(&self) -> u64 {
        self.revision
    }

    /// Per-shard engine counters, indexed by shard. Counters cover the
    /// *current* fleet — a rebuild replaces every engine, so these reset
    /// at the last repartition ([`ShardedRuntime::cycles_evaluated`]
    /// stays cumulative across rebuilds).
    pub fn shard_stats(&self) -> Vec<&StreamStats> {
        self.shards.iter().map(|s| s.engine.stats()).collect()
    }

    /// Live cycles across all shards (the global cycle universe).
    pub fn live_cycles(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.index().live_cycles())
            .sum()
    }

    /// Dirty cycles evaluated across all shards since construction,
    /// including work done by fleets that rebuilds have since replaced.
    pub fn cycles_evaluated(&self) -> usize {
        self.evaluations_before_rebuilds
            + self
                .shards
                .iter()
                .map(|s| s.engine.stats().cycles_evaluated)
                .sum::<usize>()
    }

    /// Fleet-wide profitability-screen counters since construction,
    /// cumulative across rebuilds (see [`ScreenTotals`]).
    pub fn screen_totals(&self) -> ScreenTotals {
        let mut totals = self.screen_before_rebuilds;
        for shard in &self.shards {
            totals.add_stats(shard.engine.stats());
        }
        totals
    }

    /// Routes a batch of chain events to their owning shards, flushes
    /// every shard on the worker pool, and returns the merged global
    /// ranking. Equivalent — bit for bit — to feeding the same batch to a
    /// single [`StreamingEngine`] over the same universe.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Desync`] — an event references a pool no shard
    ///   owns, or a `PoolCreated` arrived out of slot order; rebuild from
    ///   a fresh snapshot.
    /// * [`EngineError::Graph`] / [`EngineError::Strategy`] — forwarded
    ///   shard failures. The runtime's shards may have partially applied
    ///   the batch; treat the runtime as desynchronized and rebuild.
    pub fn apply_events<F: PriceFeed + Sync>(
        &mut self,
        events: &[Event],
        feed: &F,
    ) -> Result<RuntimeReport, EngineError> {
        let tick_start = Instant::now();
        for event in events {
            self.route(event, feed)?;
        }
        self.flush(feed)?;
        self.maybe_rebalance(feed)?;
        Ok(self.merge(tick_start))
    }

    /// Brings every shard current against `feed` (re-evaluating cycles
    /// whose token prices moved) and returns the merged ranking.
    ///
    /// # Errors
    ///
    /// Forwards shard refresh failures; see
    /// [`ShardedRuntime::apply_events`].
    pub fn refresh<F: PriceFeed + Sync>(&mut self, feed: &F) -> Result<RuntimeReport, EngineError> {
        self.apply_events(&[], feed)
    }

    fn route<F: PriceFeed + Sync>(&mut self, event: &Event, feed: &F) -> Result<(), EngineError> {
        match *event {
            Event::PoolCreated {
                pool,
                token_a,
                token_b,
                ..
            } => {
                if pool.index() != self.pool_slots {
                    return Err(EngineError::Desync("PoolCreated out of slot order"));
                }
                let a = self.partition.shard_of_token(token_a);
                let b = self.partition.shard_of_token(token_b);
                match (a, b) {
                    (Some(x), Some(y)) if x != y => {
                        // The new pool bridges two shards' components:
                        // cycles could now span shards, so settle pending
                        // work and repartition around the merged state.
                        self.stats.rebuilds += 1;
                        self.flush(feed)?;
                        self.rebuild_with(event)?;
                    }
                    _ => {
                        let owner = a.or(b).unwrap_or_else(|| self.least_loaded_shard());
                        self.stats.broadcasts += 1;
                        for shard in &mut self.shards {
                            shard.queue.push(*event);
                        }
                        self.partition.register_pool(pool, token_a, token_b, owner);
                        self.pending_retires.push((pool, owner));
                        self.pool_slots += 1;
                        self.pool_weights.push(1);
                        self.shard_window_events[owner] += 1;
                    }
                }
            }
            Event::Sync { pool, .. }
            | Event::Swap { pool, .. }
            | Event::Mint { pool, .. }
            | Event::Burn { pool, .. } => {
                let Some(shard) = self.partition.shard_of_pool(pool) else {
                    return Err(EngineError::Desync("event for a pool no shard owns"));
                };
                self.stats.events_routed += 1;
                self.pool_weights[pool.index()] += 1;
                self.shard_window_events[shard] += 1;
                self.shards[shard].queue.push(*event);
            }
            // `Event` is non-exhaustive; unknown variants carry no pool
            // deltas this runtime understands (mirroring the single
            // engine, which counts and skips them).
            _ => {}
        }
        Ok(())
    }

    /// Drains every shard's queue through its engine and brings every
    /// standing set current. Three phases: apply events (parallel on the
    /// worker pool — the rayon shim degrades to the serial path on its
    /// own when it has one worker or one shard), retire the slots
    /// non-owners only mirror for id alignment, then re-evaluate. The
    /// retires run *between* application and evaluation so no shard ever
    /// evaluates cycles through a mirrored slot it is about to discard.
    fn flush<F: PriceFeed + Sync>(&mut self, feed: &F) -> Result<(), EngineError> {
        if let Some(hook) = &self.tick_hook {
            // Serial and on the caller's thread: a panicking hook
            // unwinds exactly where a panicking shard worker would.
            let tick = self.stats.ticks as u64;
            for shard in 0..self.shards.len() {
                hook.before_shard_tick(shard, tick);
            }
        }
        let ingested: Vec<Result<(), EngineError>> = self
            .shards
            .par_iter_mut()
            .map(|shard| {
                let queue = std::mem::take(&mut shard.queue);
                shard.engine.ingest(&queue)
            })
            .collect();
        for result in ingested {
            result?;
        }
        for (pool, owner) in std::mem::take(&mut self.pending_retires) {
            for (index, shard) in self.shards.iter_mut().enumerate() {
                if index != owner {
                    shard.engine.retire_pool(pool)?;
                }
            }
        }
        let refreshed: Vec<Result<(), EngineError>> = self
            .shards
            .par_iter_mut()
            .map(|shard| shard.engine.refresh_standing(feed))
            .collect();
        self.stats.shard_refreshes += refreshed.len();
        for result in refreshed {
            result?;
        }
        Ok(())
    }

    /// Repartitions the runtime around the merged live state plus the
    /// bridge pool that triggered the rebuild. Queues are empty (the
    /// caller flushed) and every standing value is reproduced bit-for-bit
    /// by the cold re-evaluation, so equivalence is preserved.
    fn rebuild_with(&mut self, created: &Event) -> Result<(), EngineError> {
        let Event::PoolCreated {
            pool,
            token_a,
            token_b,
            reserve_a,
            reserve_b,
            fee,
        } = *created
        else {
            unreachable!("rebuild_with is only called for PoolCreated");
        };
        debug_assert_eq!(pool.index(), self.pool_slots);
        let mut graph = self.merged_graph()?;
        graph.add_pool(
            Pool::new(
                token_a,
                token_b,
                to_display(reserve_a),
                to_display(reserve_b),
                fee,
            )
            .map_err(arb_graph::GraphError::from)?,
        );
        self.bank_shard_counters();
        self.partition = Partition::new(&graph, self.max_shards);
        self.shards = Self::build_shards(&self.pipeline, &graph, &self.partition)?;
        self.wire_shards();
        self.pool_slots = graph.pool_count();
        self.reset_window();
        Ok(())
    }

    /// Reassembles the single-engine view of the fleet's live state: one
    /// graph holding every slot (owners are authoritative for reserves
    /// and liveness). Queues must be drained first.
    fn merged_graph(&self) -> Result<TokenGraph, EngineError> {
        let mut pools = Vec::with_capacity(self.pool_slots);
        let mut dead = Vec::new();
        for index in 0..self.pool_slots {
            let id = PoolId::new(index as u32);
            let owner = self
                .partition
                .shard_of_pool(id)
                .expect("every slot is owned");
            let graph = self.shards[owner].engine.graph();
            pools.push(graph.pools()[index]);
            if !graph.is_live(id) {
                dead.push(id);
            }
        }
        let mut graph = TokenGraph::new(pools)?;
        for id in dead {
            graph.remove_pool(id)?;
        }
        Ok(graph)
    }

    /// The fleet is about to be replaced wholesale; bank its evaluation
    /// and screen counters so the cumulative totals survive.
    fn bank_shard_counters(&mut self) {
        self.evaluations_before_rebuilds += self
            .shards
            .iter()
            .map(|s| s.engine.stats().cycles_evaluated)
            .sum::<usize>();
        for shard in &self.shards {
            self.screen_before_rebuilds.add_stats(shard.engine.stats());
        }
    }

    /// Clears the rolling load window (after a rebuild, rebalance, or
    /// completed observation interval).
    fn reset_window(&mut self) {
        self.pool_weights.clear();
        self.pool_weights.resize(self.pool_slots, 0);
        self.shard_window_events.clear();
        self.shard_window_events.resize(self.shards.len(), 0);
        self.window_ticks = 0;
    }

    /// End-of-tick adaptive rebalance check. Purely a function of the
    /// journaled event stream — per-pool routed-event counts over the
    /// last `interval_ticks` ticks — so replaying the same events always
    /// yields the same split/steal decisions, and because every shard
    /// re-evaluates from reserves + feed after a repartition the merged
    /// ranking is bit-identical whether or not (and whenever) a
    /// rebalance fires.
    fn maybe_rebalance<F: PriceFeed + Sync>(&mut self, feed: &F) -> Result<(), EngineError> {
        if !self.rebalance.enabled {
            return Ok(());
        }
        self.window_ticks += 1;
        if self.window_ticks < self.rebalance.interval_ticks.max(1) {
            return Ok(());
        }
        let total: u64 = self.shard_window_events.iter().sum();
        let max = self.shard_window_events.iter().copied().max().unwrap_or(0);
        let mean = total as f64 / self.shard_window_events.len().max(1) as f64;
        // One shard hogging the fleet (a dominant component pinned to a
        // single engine) or a measurably skewed spread both trigger; a
        // quiet window never does.
        let saturated = self.shards.len() == 1 && self.max_shards > 1;
        let skewed = self.shards.len() > 1 && max as f64 > self.rebalance.skew_threshold * mean;
        if total >= self.rebalance.min_window_events && (saturated || skewed) {
            self.rebalance_now(feed)?;
        }
        self.reset_window();
        Ok(())
    }

    /// Repartitions around the merged live state using the window's
    /// per-pool event counts as weights and splitting the dominant
    /// component along bridge boundaries. A no-op (and not counted) when
    /// the weighted partition matches the current one.
    fn rebalance_now<F: PriceFeed + Sync>(&mut self, feed: &F) -> Result<(), EngineError> {
        let graph = self.merged_graph()?;
        let candidate = Partition::new_weighted(&graph, self.max_shards, &self.pool_weights, true);
        if candidate == self.partition {
            return Ok(());
        }
        self.bank_shard_counters();
        self.partition = candidate;
        self.shards = Self::build_shards(&self.pipeline, &graph, &self.partition)?;
        self.wire_shards();
        self.stats.rebalances += 1;
        // Cold-refresh the new fleet: queues are empty, so this is pure
        // re-evaluation of standing cycles against current reserves.
        self.flush(feed)
    }

    /// Per-shard load picture for the current observation window:
    /// routed events and cumulative evaluations per shard, plus the
    /// lifetime rebalance count.
    pub fn shard_loads(&self) -> ShardLoads {
        ShardLoads {
            window_events: self.shard_window_events.clone(),
            evaluations: self
                .shards
                .iter()
                .map(|s| s.engine.stats().cycles_evaluated)
                .collect(),
            rebalances: self.stats.rebalances,
        }
    }

    /// Captures the whole fleet's durable state: the per-slot shard
    /// assignment plus one [`crate::EngineCheckpoint`] per shard. Call
    /// between ticks (every public entry point leaves the queues
    /// drained); the capture is pure and cheap relative to a tick.
    pub fn checkpoint(&self) -> RuntimeCheckpoint {
        debug_assert!(
            self.pending_retires.is_empty() && self.shards.iter().all(|s| s.queue.is_empty()),
            "checkpoint between ticks only"
        );
        RuntimeCheckpoint {
            max_shards: self.max_shards,
            owners: (0..self.pool_slots)
                .map(|index| {
                    self.partition
                        .shard_of_pool(PoolId::new(index as u32))
                        .expect("every slot is owned") as u32
                })
                .collect(),
            shards: self.shards.iter().map(|s| s.engine.checkpoint()).collect(),
            feed: Vec::new(),
            source_positions: Vec::new(),
        }
    }

    /// Rebuilds a runtime from a checkpoint: each shard engine is
    /// restored exactly ([`StreamingEngine::restore`]) and the partition
    /// is reconstructed from the recorded assignment, so routing,
    /// rebuild triggers, and future revives behave exactly as they would
    /// have in the checkpointed process. Cumulative [`RuntimeStats`]
    /// restart from zero; the first refresh reproduces the checkpointed
    /// merged ranking bit-for-bit under the same feed.
    ///
    /// # Errors
    ///
    /// * [`EngineError::Config`] — invalid pipeline config, or a
    ///   checkpoint whose shard shapes are inconsistent.
    /// * [`EngineError::Graph`] — a shard checkpoint fails validation
    ///   ([`arb_graph::GraphError::InvalidCheckpoint`]).
    pub fn restore(
        pipeline: OpportunityPipeline,
        checkpoint: &RuntimeCheckpoint,
    ) -> Result<Self, EngineError> {
        pipeline.config().validate()?;
        if checkpoint.shards.is_empty() {
            return Err(EngineError::Config(
                "runtime checkpoint has no shards".to_string(),
            ));
        }
        let pool_slots = checkpoint.owners.len();
        if checkpoint
            .shards
            .iter()
            .any(|shard| shard.slots.len() != pool_slots)
        {
            return Err(EngineError::Config(
                "runtime checkpoint shards disagree on the slot count".to_string(),
            ));
        }
        let shards = checkpoint
            .shards
            .iter()
            .map(|state| {
                let engine = StreamingEngine::restore(pipeline.clone(), state)?;
                let revision = engine.standing_revision();
                Ok(Shard {
                    engine,
                    queue: Vec::new(),
                    ranked: Vec::new(),
                    revision,
                })
            })
            .collect::<Result<Vec<Shard>, EngineError>>()?;
        let owners: Vec<usize> = checkpoint.owners.iter().map(|&o| o as usize).collect();
        let partition = Partition::from_assignments(
            shards[0].engine.graph(),
            &owners,
            checkpoint.shards.len(),
        )?;
        Ok(ShardedRuntime {
            pipeline,
            partition,
            pool_slots,
            max_shards: checkpoint.max_shards,
            pending_retires: Vec::new(),
            evaluations_before_rebuilds: 0,
            screen_before_rebuilds: ScreenTotals::default(),
            rebalance: RebalanceConfig::default(),
            pool_weights: vec![0; pool_slots],
            shard_window_events: vec![0; shards.len()],
            window_ticks: 0,
            revision: 0,
            shards,
            stats: RuntimeStats::default(),
            obs: None,
            telemetry: RuntimeTelemetry::default(),
            tick_hook: None,
        })
    }

    fn least_loaded_shard(&self) -> usize {
        (0..self.shards.len())
            .min_by_key(|&s| (self.partition.members(s).len(), s))
            .expect("at least one shard")
    }

    /// Merges the per-shard rankings into the global execution-priority
    /// order: refresh stale caches, then k-way select under the
    /// pipeline's total order, stopping at `top_k` when configured.
    fn merge(&mut self, tick_start: Instant) -> RuntimeReport {
        let merge_start = Instant::now();
        let mut moved = false;
        for shard in &mut self.shards {
            if shard.refresh_cache() {
                self.stats.merge_cache_hits += 1;
            } else {
                moved = true;
            }
        }
        if moved {
            self.revision += 1;
        }
        let cap = self.pipeline.config().top_k.unwrap_or(usize::MAX);
        let total: usize = self.shards.iter().map(|s| s.ranked.len()).sum();
        let mut merged: Vec<ArbitrageOpportunity> = Vec::with_capacity(total.min(cap));
        let mut cursors = vec![0usize; self.shards.len()];
        while merged.len() < cap {
            let mut best: Option<usize> = None;
            for (index, shard) in self.shards.iter().enumerate() {
                let Some(candidate) = shard.ranked.get(cursors[index]) else {
                    continue;
                };
                best = match best {
                    Some(current)
                        if self
                            .pipeline
                            .compare(candidate, &self.shards[current].ranked[cursors[current]])
                            .is_ge() =>
                    {
                        Some(current)
                    }
                    _ => Some(index),
                };
            }
            let Some(winner) = best else { break };
            merged.push(self.shards[winner].ranked[cursors[winner]].clone());
            cursors[winner] += 1;
        }

        self.stats.ticks += 1;
        self.stats.merged_opportunities = merged.len();
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;
        self.stats.last_merge_nanos = merge_nanos;
        self.stats.total_merge_nanos += merge_nanos;
        let tick_nanos = tick_start.elapsed().as_nanos() as u64;
        self.stats.last_tick_nanos = tick_nanos;
        self.stats.total_tick_nanos += tick_nanos;

        let stats = self.stats;
        let shard_count = self.shards.len();
        if let Some(obs) = &mut self.obs {
            obs.tick_ns.record(tick_nanos);
            obs.merge_ns.record(merge_nanos);
            obs.sync(&stats, shard_count);
        }
        // Captured here — after the merge, before returning — so the
        // stats, screen totals, and load picture all describe the same
        // tick boundary.
        self.telemetry = RuntimeTelemetry {
            tick: self.stats.ticks,
            revision: self.revision,
            stats: self.stats,
            screen: self.screen_totals(),
            loads: self.shard_loads(),
        };

        RuntimeReport {
            opportunities: merged,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use arb_amm::fee::FeeRate;
    use arb_amm::token::TokenId;
    use arb_cex::feed::PriceTable;
    use arb_dexsim::units::to_raw;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn p(i: u32) -> PoolId {
        PoolId::new(i)
    }

    /// Two disjoint triangles (paper + imbalanced) and an isolated pair.
    fn island_pools() -> Vec<Pool> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
            Pool::new(t(3), t(4), 1_000.0, 1_080.0, fee).unwrap(),
            Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap(),
            Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap(),
            Pool::new(t(6), t(7), 500.0, 500.0, fee).unwrap(),
        ]
    }

    fn island_feed() -> PriceTable {
        let mut feed: PriceTable = [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
            .into_iter()
            .collect();
        feed.extend((3..8).map(|i| (t(i), 1.0)));
        feed
    }

    fn sync(pool: u32, a: f64, b: f64) -> Event {
        Event::Sync {
            pool: p(pool),
            reserve_a: to_raw(a),
            reserve_b: to_raw(b),
        }
    }

    /// The oracle shared by every test here: merged output must be
    /// bit-identical to one engine fed the same stream.
    fn assert_matches_single(
        runtime: &ShardedRuntime,
        single: &StreamingEngine,
        merged: &[ArbitrageOpportunity],
    ) {
        let expected = single.ranked();
        assert_eq!(merged.len(), expected.len(), "{}", runtime.stats());
        for (m, e) in merged.iter().zip(&expected) {
            assert_eq!(m.cycle.tokens(), e.cycle.tokens());
            assert_eq!(m.cycle.pools(), e.cycle.pools());
            assert_eq!(m.strategy, e.strategy);
            assert_eq!(
                m.gross_profit.value().to_bits(),
                e.gross_profit.value().to_bits()
            );
            assert_eq!(
                m.net_profit.value().to_bits(),
                e.net_profit.value().to_bits()
            );
        }
    }

    #[test]
    fn cold_start_matches_single_engine() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), island_pools()).unwrap();
        single.refresh(&feed).unwrap();
        let report = runtime.refresh(&feed).unwrap();
        assert_eq!(runtime.shard_count(), 3);
        assert_matches_single(&runtime, &single, &report.opportunities);
        assert_eq!(report.opportunities.len(), 2, "both triangles arb");
    }

    #[test]
    fn routed_syncs_touch_only_their_shard() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        runtime.refresh(&feed).unwrap();
        let evaluated_cold = runtime.cycles_evaluated();

        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), island_pools()).unwrap();
        single.refresh(&feed).unwrap();

        let batch = [sync(3, 1_000.0, 1_060.0)];
        single.apply_events(&batch, &feed).unwrap();
        let report = runtime.apply_events(&batch, &feed).unwrap();
        assert_matches_single(&runtime, &single, &report.opportunities);
        // Only the touched triangle's two directed cycles re-evaluated.
        assert_eq!(runtime.cycles_evaluated() - evaluated_cold, 2);
        // The untouched shards' caches were reused.
        assert!(report.stats.merge_cache_hits >= 2, "{}", report.stats);
    }

    #[test]
    fn pool_created_same_component_stays_put() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), island_pools()).unwrap();
        runtime.refresh(&feed).unwrap();
        single.refresh(&feed).unwrap();

        // A parallel pool inside the paper triangle's component.
        let created = Event::PoolCreated {
            pool: p(7),
            token_a: t(0),
            token_b: t(1),
            reserve_a: to_raw(150.0),
            reserve_b: to_raw(250.0),
            fee: FeeRate::UNISWAP_V2,
        };
        single.apply_events(&[created], &feed).unwrap();
        let report = runtime.apply_events(&[created], &feed).unwrap();
        assert_eq!(report.stats.rebuilds, 0);
        assert_eq!(report.stats.broadcasts, 1);
        assert_matches_single(&runtime, &single, &report.opportunities);
        assert_eq!(
            runtime.partition().shard_of_pool(p(7)),
            runtime.partition().shard_of_pool(p(0))
        );
    }

    #[test]
    fn bridge_pool_triggers_rebuild_and_stays_equivalent() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), island_pools()).unwrap();
        runtime.refresh(&feed).unwrap();
        single.refresh(&feed).unwrap();

        // Token 2 (paper triangle) ↔ token 4 (second triangle): merges two
        // shards' components into one.
        let bridge = Event::PoolCreated {
            pool: p(7),
            token_a: t(2),
            token_b: t(4),
            reserve_a: to_raw(100.0),
            reserve_b: to_raw(2_000.0),
            fee: FeeRate::UNISWAP_V2,
        };
        single.apply_events(&[bridge], &feed).unwrap();
        let report = runtime.apply_events(&[bridge], &feed).unwrap();
        assert_eq!(report.stats.rebuilds, 1, "{}", report.stats);
        assert_matches_single(&runtime, &single, &report.opportunities);

        // Follow-up syncs keep working against the repartitioned runtime.
        let batch = [sync(7, 110.0, 1_900.0), sync(0, 101.0, 199.0)];
        single.apply_events(&batch, &feed).unwrap();
        let report = runtime.apply_events(&batch, &feed).unwrap();
        assert_matches_single(&runtime, &single, &report.opportunities);
    }

    #[test]
    fn retire_and_revive_stay_shard_local() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), island_pools()).unwrap();
        runtime.refresh(&feed).unwrap();
        single.refresh(&feed).unwrap();

        for batch in [
            vec![Event::Sync {
                pool: p(0),
                reserve_a: 0,
                reserve_b: 0,
            }],
            vec![sync(0, 100.0, 200.0)],
        ] {
            single.apply_events(&batch, &feed).unwrap();
            let report = runtime.apply_events(&batch, &feed).unwrap();
            assert_matches_single(&runtime, &single, &report.opportunities);
        }
        assert_eq!(report_rebuilds(&runtime), 0);
    }

    fn report_rebuilds(runtime: &ShardedRuntime) -> usize {
        runtime.stats().rebuilds
    }

    #[test]
    fn telemetry_snapshots_the_tick_boundary() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        assert_eq!(runtime.telemetry().tick, 0, "fresh runtime, no capture");

        runtime.refresh(&feed).unwrap();
        let after_refresh = runtime.telemetry().clone();
        assert_eq!(after_refresh.tick, 1);
        assert_eq!(after_refresh.stats, *runtime.stats());
        assert_eq!(after_refresh.screen, runtime.screen_totals());
        assert_eq!(after_refresh.loads, runtime.shard_loads());
        assert_eq!(after_refresh.revision, runtime.standing_revision());

        let report = runtime
            .apply_events(&[sync(0, 101.0, 199.0)], &feed)
            .unwrap();
        let after_tick = runtime.telemetry();
        assert_eq!(after_tick.tick, 2);
        assert_eq!(after_tick.stats, report.stats);
        assert_eq!(after_tick.screen, runtime.screen_totals());
        assert!(
            after_tick.screen.strategy_evaluations >= after_refresh.screen.strategy_evaluations
        );
    }

    #[test]
    fn set_obs_survives_rebuilds_and_mirrors_stats() {
        let feed = island_feed();
        let obs = arb_obs::Obs::default();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        runtime.set_obs(&obs);
        runtime.refresh(&feed).unwrap();

        // Bridge pool forces a rebuild that replaces every shard engine;
        // the replacement fleet must keep reporting.
        let bridge = Event::PoolCreated {
            pool: p(7),
            token_a: t(2),
            token_b: t(4),
            reserve_a: to_raw(100.0),
            reserve_b: to_raw(2_000.0),
            fee: FeeRate::UNISWAP_V2,
        };
        runtime.apply_events(&[bridge], &feed).unwrap();
        runtime
            .apply_events(&[sync(7, 110.0, 1_900.0)], &feed)
            .unwrap();

        let snapshot = obs.snapshot();
        assert_eq!(
            snapshot.counter("runtime.ticks"),
            Some(runtime.stats().ticks as u64)
        );
        assert_eq!(snapshot.counter("runtime.rebuilds"), Some(1));
        assert_eq!(
            snapshot.counter("runtime.events_routed"),
            Some(runtime.stats().events_routed as u64)
        );
        // Screen counters flow from the shard engines, cumulatively
        // across the rebuild (the banked totals stay in the registry).
        let screen = runtime.screen_totals();
        assert_eq!(
            snapshot.counter("engine.strategy_evaluations"),
            Some(screen.strategy_evaluations as u64)
        );
        let ticks = snapshot
            .histogram("runtime.tick_ns")
            .expect("tick histogram registered");
        assert_eq!(ticks.count, runtime.stats().ticks as u64);
    }

    #[test]
    fn top_k_merge_matches_global_cut() {
        let config = PipelineConfig {
            top_k: Some(1),
            ..PipelineConfig::default()
        };
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::new(config), island_pools(), 3).unwrap();
        let mut single =
            StreamingEngine::new(OpportunityPipeline::new(config), island_pools()).unwrap();
        single.refresh(&feed).unwrap();
        let report = runtime.refresh(&feed).unwrap();
        assert_eq!(report.opportunities.len(), 1);
        assert_matches_single(&runtime, &single, &report.opportunities);
    }

    #[test]
    fn unknown_pool_desyncs() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 2).unwrap();
        let err = runtime
            .apply_events(&[sync(42, 1.0, 1.0)], &feed)
            .unwrap_err();
        assert!(matches!(err, EngineError::Desync(_)), "{err:?}");

        let gap = Event::PoolCreated {
            pool: p(11),
            token_a: t(0),
            token_b: t(9),
            reserve_a: to_raw(1.0),
            reserve_b: to_raw(1.0),
            fee: FeeRate::UNISWAP_V2,
        };
        let err = runtime.apply_events(&[gap], &feed).unwrap_err();
        assert!(matches!(err, EngineError::Desync(_)), "{err:?}");
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let config = PipelineConfig {
            min_cycle_len: 4,
            max_cycle_len: 3,
            ..PipelineConfig::default()
        };
        let err =
            ShardedRuntime::new(OpportunityPipeline::new(config), island_pools(), 2).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err:?}");
    }

    #[test]
    fn checkpoint_restore_reproduces_merged_ranking() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        runtime.refresh(&feed).unwrap();
        // Mutate: routed syncs, a broadcast PoolCreated, a retire.
        runtime
            .apply_events(
                &[
                    sync(3, 1_000.0, 1_060.0),
                    Event::PoolCreated {
                        pool: p(7),
                        token_a: t(0),
                        token_b: t(1),
                        reserve_a: to_raw(150.0),
                        reserve_b: to_raw(250.0),
                        fee: FeeRate::UNISWAP_V2,
                    },
                    Event::Sync {
                        pool: p(6),
                        reserve_a: 0,
                        reserve_b: 0,
                    },
                ],
                &feed,
            )
            .unwrap();
        let live = runtime.refresh(&feed).unwrap();

        let checkpoint = runtime.checkpoint();
        let mut restored =
            ShardedRuntime::restore(OpportunityPipeline::default(), &checkpoint).unwrap();
        assert_eq!(restored.shard_count(), runtime.shard_count());
        assert_eq!(restored.partition(), runtime.partition());
        let back = restored.refresh(&feed).unwrap();
        assert_eq!(back.opportunities.len(), live.opportunities.len());
        assert!(!back.opportunities.is_empty(), "non-vacuous");
        for (a, b) in live.opportunities.iter().zip(&back.opportunities) {
            assert_eq!(a.cycle.tokens(), b.cycle.tokens());
            assert_eq!(a.cycle.pools(), b.cycle.pools());
            assert_eq!(
                a.net_profit.value().to_bits(),
                b.net_profit.value().to_bits()
            );
        }

        // The restored fleet keeps routing and reviving identically.
        let follow_up = [sync(6, 490.0, 510.0), sync(0, 101.0, 199.0)];
        let a = runtime.apply_events(&follow_up, &feed).unwrap();
        let b = restored.apply_events(&follow_up, &feed).unwrap();
        assert_eq!(a.opportunities.len(), b.opportunities.len());
        for (x, y) in a.opportunities.iter().zip(&b.opportunities) {
            assert_eq!(
                x.net_profit.value().to_bits(),
                y.net_profit.value().to_bits()
            );
        }
    }

    #[test]
    fn restore_rejects_inconsistent_checkpoints() {
        let runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        let good = runtime.checkpoint();

        let mut empty = good.clone();
        empty.shards.clear();
        let err = ShardedRuntime::restore(OpportunityPipeline::default(), &empty).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err:?}");

        let mut ragged = good.clone();
        ragged.shards[0].slots.pop();
        let err = ShardedRuntime::restore(OpportunityPipeline::default(), &ragged).unwrap_err();
        assert!(err.to_string().contains("slot count"), "{err}");

        let mut bad_owner = good;
        bad_owner.owners[0] = 99;
        let err = ShardedRuntime::restore(OpportunityPipeline::default(), &bad_owner).unwrap_err();
        assert!(matches!(err, EngineError::Graph(_)), "{err:?}");
    }

    /// Two triangles joined by a bridge pool: one connected component,
    /// so [`Partition::new`] pins everything to a single shard until an
    /// adaptive rebalance splits it at the bridge.
    fn dumbbell_pools() -> Vec<Pool> {
        let fee = FeeRate::UNISWAP_V2;
        vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
            Pool::new(t(2), t(3), 500.0, 500.0, fee).unwrap(),
            Pool::new(t(3), t(4), 1_000.0, 1_080.0, fee).unwrap(),
            Pool::new(t(4), t(5), 1_000.0, 1_000.0, fee).unwrap(),
            Pool::new(t(5), t(3), 1_000.0, 1_000.0, fee).unwrap(),
        ]
    }

    /// A hot stream concentrated on the paper triangle's side of the
    /// dumbbell, enough to trip any window threshold.
    fn dumbbell_hot_stream() -> Vec<Vec<Event>> {
        (0..4)
            .map(|tick| {
                vec![
                    sync(0, 100.0 + tick as f64, 200.0 - tick as f64),
                    sync(1, 300.0 - tick as f64, 200.0 + tick as f64),
                    sync(4, 1_000.0, 1_080.0 + tick as f64),
                ]
            })
            .collect()
    }

    #[test]
    fn rebalance_splits_saturated_component_and_stays_equivalent() {
        let feed = island_feed();
        let config = RebalanceConfig {
            interval_ticks: 1,
            min_window_events: 1,
            ..RebalanceConfig::enabled()
        };
        let mut runtime = ShardedRuntime::new(OpportunityPipeline::default(), dumbbell_pools(), 3)
            .unwrap()
            .with_rebalance(config);
        let mut single =
            StreamingEngine::new(OpportunityPipeline::default(), dumbbell_pools()).unwrap();
        assert_eq!(runtime.shard_count(), 1, "one component pins one shard");

        single.refresh(&feed).unwrap();
        runtime.refresh(&feed).unwrap();
        let mut last = Vec::new();
        for batch in dumbbell_hot_stream() {
            single.apply_events(&batch, &feed).unwrap();
            last = runtime.apply_events(&batch, &feed).unwrap().opportunities;
            assert_matches_single(&runtime, &single, &last);
        }
        assert!(runtime.stats().rebalances >= 1, "{}", runtime.stats());
        assert_eq!(runtime.shard_count(), 2, "split at the bridge pool");
        assert_eq!(
            runtime.partition().shard_of_pool(p(0)),
            runtime.partition().shard_of_pool(p(3)),
            "the bridge rides with its token_a block"
        );
        assert_ne!(
            runtime.partition().shard_of_pool(p(0)),
            runtime.partition().shard_of_pool(p(4))
        );
        assert_eq!(last.len(), 2, "both triangles still arb");
    }

    #[test]
    fn rebalance_disabled_by_default() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), dumbbell_pools(), 3).unwrap();
        runtime.refresh(&feed).unwrap();
        for batch in dumbbell_hot_stream() {
            runtime.apply_events(&batch, &feed).unwrap();
        }
        assert_eq!(runtime.stats().rebalances, 0);
        assert_eq!(runtime.shard_count(), 1);
    }

    #[test]
    fn rebalance_decisions_are_deterministic_across_reruns() {
        let feed = island_feed();
        let config = RebalanceConfig {
            interval_ticks: 2,
            min_window_events: 4,
            ..RebalanceConfig::enabled()
        };
        let run = || {
            let mut runtime =
                ShardedRuntime::new(OpportunityPipeline::default(), dumbbell_pools(), 3)
                    .unwrap()
                    .with_rebalance(config);
            runtime.refresh(&feed).unwrap();
            let mut last = Vec::new();
            for batch in dumbbell_hot_stream() {
                last = runtime.apply_events(&batch, &feed).unwrap().opportunities;
            }
            let owners: Vec<usize> = (0..runtime.pool_slots)
                .map(|i| runtime.partition().shard_of_pool(p(i as u32)).unwrap())
                .collect();
            (runtime.stats().rebalances, owners, last)
        };
        let (rebalances_a, owners_a, ranked_a) = run();
        let (rebalances_b, owners_b, ranked_b) = run();
        assert_eq!(rebalances_a, rebalances_b);
        assert_eq!(owners_a, owners_b);
        assert_eq!(ranked_a.len(), ranked_b.len());
        for (x, y) in ranked_a.iter().zip(&ranked_b) {
            assert_eq!(
                x.net_profit.value().to_bits(),
                y.net_profit.value().to_bits()
            );
        }
    }

    #[test]
    fn shard_loads_reports_window_and_display_one_liner() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 3).unwrap();
        runtime.refresh(&feed).unwrap();
        runtime
            .apply_events(&[sync(0, 101.0, 199.0), sync(1, 299.0, 201.0)], &feed)
            .unwrap();
        let loads = runtime.shard_loads();
        assert_eq!(loads.window_events.len(), 3);
        assert_eq!(loads.window_events.iter().sum::<u64>(), 2);
        assert_eq!(loads.rebalances, 0);
        assert!(loads.evaluations.iter().sum::<usize>() > 0);
        assert!(loads.skew() >= 1.0);
        let line = loads.to_string();
        assert!(line.contains("shards"), "{line}");
        assert!(line.contains("skew"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn runtime_stats_display_one_liner() {
        let feed = island_feed();
        let mut runtime =
            ShardedRuntime::new(OpportunityPipeline::default(), island_pools(), 2).unwrap();
        runtime
            .apply_events(&[sync(0, 101.0, 199.0)], &feed)
            .unwrap();
        let line = runtime.stats().to_string();
        assert!(line.contains("ticks"), "{line}");
        assert!(line.contains("merge"), "{line}");
        assert!(!line.contains('\n'));
    }
}
