//! The unified arbitrage engine: discovery → evaluation → ranking.
//!
//! Every consumer of arbitrage opportunities in this workspace — the bot,
//! the examples, the benches — used to hand-roll the same loop: build a
//! [`arb_graph::TokenGraph`], enumerate cycles, assemble
//! [`arb_core::ArbLoop`]s, resolve prices, evaluate strategies, pick the
//! best. This crate is that loop, once:
//!
//! ```text
//! pools/snapshot ──▶ TokenGraph ──▶ bounded cycle enumeration
//!        │                                   │
//!   price feed ──────▶ per-cycle Strategy evaluation (parallel)
//!                                            │
//!                        ranking policy ──▶ Vec<ArbitrageOpportunity>
//! ```
//!
//! * [`pipeline::OpportunityPipeline`] — the batch engine: configured once
//!   with a strategy set ([`arb_core::Strategy`] trait objects), a
//!   [`ranking::RankingPolicy`], and a [`pipeline::PipelineConfig`]; each
//!   run is a pure function of the market state passed in.
//! * [`streaming::StreamingEngine`] — the incremental engine: owns a
//!   graph + persistent cycle index, consumes chain event batches, and
//!   re-evaluates only the cycles the events touched while keeping a
//!   standing ranked opportunity set identical to a fresh batch run.
//! * [`runtime::ShardedRuntime`] — the scale-out layer: partitions the
//!   universe along connected components, runs one streaming engine per
//!   shard on a worker pool, routes events to their owning shard, and
//!   k-way merges the per-shard rankings into one global set that is
//!   bit-identical to a single engine over the same stream.
//! * [`opportunity::ArbitrageOpportunity`] — the uniform result: cycle,
//!   winning strategy, per-hop optimal inputs, gross/net monetized profit.
//! * [`ranking`] — pluggable execution-priority policies.
//!
//! # Quickstart
//!
//! ```
//! use arb_amm::{fee::FeeRate, pool::Pool, token::TokenId};
//! use arb_cex::feed::PriceTable;
//! use arb_engine::{OpportunityPipeline, PipelineConfig};
//!
//! # fn main() -> Result<(), arb_engine::EngineError> {
//! let t = TokenId::new;
//! let fee = FeeRate::UNISWAP_V2;
//! let pools = vec![
//!     Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
//!     Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
//!     Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
//! ];
//! let feed: PriceTable = [(t(0), 2.0), (t(1), 10.2), (t(2), 20.0)]
//!     .into_iter()
//!     .collect();
//! let report = OpportunityPipeline::new(PipelineConfig::default()).run(pools, &feed)?;
//! let best = report.best().expect("the paper's triangle is profitable");
//! assert!(best.gross_profit.value() > 200.0);
//! # Ok(())
//! # }
//! ```

mod bounds;
pub mod checkpoint;
mod dirty;
pub mod error;
pub mod opportunity;
pub mod pipeline;
pub mod ranking;
pub mod runtime;
mod scratch;
pub mod streaming;

pub use checkpoint::{EngineCheckpoint, PoolSlot, RuntimeCheckpoint};
pub use error::EngineError;
pub use opportunity::ArbitrageOpportunity;
pub use pipeline::{
    OpportunityPipeline, PipelineConfig, PipelineReport, PipelineStats, SharedStrategy,
    SnapshotPrices,
};
pub use ranking::{RankByGrossProfit, RankByNetProfit, RankByProfitPerHop, RankingPolicy};
pub use runtime::{
    RebalanceConfig, RuntimeReport, RuntimeStats, RuntimeTelemetry, ScreenTotals, ShardLoads,
    ShardedRuntime, TickHook,
};
pub use streaming::{StreamReport, StreamStats, StreamingEngine};
