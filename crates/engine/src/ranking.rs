//! Pluggable ranking of evaluated opportunities.

use crate::opportunity::ArbitrageOpportunity;

/// Orders opportunities for execution priority.
///
/// Policies are score-based: higher scores execute first. Ties are broken
/// deterministically by the pipeline (shorter loops, then token order), so
/// a given snapshot always ranks identically.
pub trait RankingPolicy: Send + Sync {
    /// Short policy name (for reports).
    fn name(&self) -> &'static str;

    /// The descending sort key.
    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64;
}

/// Rank by monetized profit net of execution costs (the default — what a
/// profit-maximizing searcher submits first).
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByNetProfit;

impl RankingPolicy for RankByNetProfit {
    fn name(&self) -> &'static str {
        "net-profit"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.net_profit.value()
    }
}

/// Rank by gross monetized profit, ignoring execution costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByGrossProfit;

impl RankingPolicy for RankByGrossProfit {
    fn name(&self) -> &'static str {
        "gross-profit"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.gross_profit.value()
    }
}

/// Rank by net profit per hop — a gas-aware prior that prefers short
/// loops when profits are comparable.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByProfitPerHop;

impl RankingPolicy for RankByProfitPerHop {
    fn name(&self) -> &'static str {
        "profit-per-hop"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.net_profit.value() / opportunity.hops() as f64
    }
}
