//! Pluggable ranking of evaluated opportunities.

use crate::opportunity::ArbitrageOpportunity;

/// Orders opportunities for execution priority.
///
/// Policies are score-based: higher scores execute first. Ties are broken
/// deterministically by the pipeline (shorter loops, then token order), so
/// a given snapshot always ranks identically.
pub trait RankingPolicy: Send + Sync {
    /// Short policy name (for reports).
    fn name(&self) -> &'static str;

    /// The descending sort key.
    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64;

    /// Clones the policy behind the trait object, so pipelines (and the
    /// sharded runtime's per-shard engine fleet) can be duplicated.
    fn clone_box(&self) -> Box<dyn RankingPolicy>;
}

impl Clone for Box<dyn RankingPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Rank by monetized profit net of execution costs (the default — what a
/// profit-maximizing searcher submits first).
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByNetProfit;

impl RankingPolicy for RankByNetProfit {
    fn name(&self) -> &'static str {
        "net-profit"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.net_profit.value()
    }

    fn clone_box(&self) -> Box<dyn RankingPolicy> {
        Box::new(*self)
    }
}

/// Rank by gross monetized profit, ignoring execution costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByGrossProfit;

impl RankingPolicy for RankByGrossProfit {
    fn name(&self) -> &'static str {
        "gross-profit"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.gross_profit.value()
    }

    fn clone_box(&self) -> Box<dyn RankingPolicy> {
        Box::new(*self)
    }
}

/// Rank by net profit per hop — a gas-aware prior that prefers short
/// loops when profits are comparable.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankByProfitPerHop;

impl RankingPolicy for RankByProfitPerHop {
    fn name(&self) -> &'static str {
        "profit-per-hop"
    }

    fn score(&self, opportunity: &ArbitrageOpportunity) -> f64 {
        opportunity.net_profit.value() / opportunity.hops() as f64
    }

    fn clone_box(&self) -> Box<dyn RankingPolicy> {
        Box::new(*self)
    }
}
