//! Engine error type.

use std::error::Error;
use std::fmt;

/// Errors from pipeline discovery and evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// Graph construction or cycle enumeration failed.
    Graph(arb_graph::GraphError),
    /// A loop could not be assembled from a discovered cycle.
    Strategy(arb_core::StrategyError),
    /// The pipeline configuration is invalid (see
    /// [`crate::PipelineConfig::validate`]).
    Config(String),
    /// A streaming engine's event feed is out of sync with its graph
    /// (e.g. an event references a pool the engine never saw created).
    /// The caller should rebuild from a fresh snapshot of the source.
    Desync(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Strategy(e) => write!(f, "strategy error: {e}"),
            EngineError::Config(reason) => write!(f, "invalid pipeline config: {reason}"),
            EngineError::Desync(reason) => write!(f, "event stream desynchronized: {reason}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            EngineError::Strategy(e) => Some(e),
            EngineError::Config(_) | EngineError::Desync(_) => None,
        }
    }
}

impl From<arb_graph::GraphError> for EngineError {
    fn from(e: arb_graph::GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<arb_core::StrategyError> for EngineError {
    fn from(e: arb_core::StrategyError) -> Self {
        EngineError::Strategy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::Graph(arb_graph::GraphError::EmptyGraph);
        assert!(e.to_string().contains("graph"));
        assert!(e.source().is_some());
    }
}
