//! 10k-pool soak: batch cold-start screening + adaptive sharded streaming.
//!
//! The workload is the catalog's `whale-bursts` entry sized to 10,000
//! pools through the shared [`ScenarioConfig::sized`] knob — the 10k–100k
//! operating range the roadmap's scale item targets. Two passes:
//!
//! * **cold start**: one `OpportunityPipeline::run_graph` over the whole
//!   universe, screened vs unscreened under the same gross floor. The
//!   pass asserts the rankings are **bit-identical** and that batch
//!   screening (log-sum + pool/per-hop floor bounds) classifies **≥ 50%
//!   fewer cycles** than the unscreened path.
//! * **stream**: the full tick stream through one `StreamingEngine` and
//!   through a `ShardedRuntime` with adaptive rebalancing enabled
//!   (hot-shard splitting at bridge boundaries + weighted component
//!   placement). Final rankings must be bit-identical regardless of how
//!   many rebalances fired; per-tick latencies feed the `tick_p99_ns`
//!   counter CI's trend gate watches (> 20% regression fails the build).
//!
//! The JSON line goes to `BENCH_soak.json` via the workflow's tee+grep.

use arb_bench::json::JsonLine;
use arb_engine::{
    ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, RebalanceConfig, ShardedRuntime,
    StreamingEngine,
};
use arb_graph::TokenGraph;
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

const POOLS: usize = 10_000;
const TICKS: usize = 24;
/// More shards than the universe's 4 execution domains, so adaptive
/// splitting has headroom to peel hot blocks off the dominant component.
const MAX_SHARDS: usize = 6;

fn scenario() -> Scenario {
    find("whale-bursts")
        .expect("whale-bursts in catalog")
        .scenario(&ScenarioConfig {
            seed: 10_001,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("soak scenario generates")
}

/// The shared configuration: a realistic gross floor so the bound
/// screens have something to discharge against, `top_k` execution
/// sizing, and the screen toggled per path.
fn config(screen: bool) -> PipelineConfig {
    PipelineConfig {
        execution_cost_usd: 50.0,
        min_net_profit_usd: 10.0,
        top_k: Some(16),
        screen,
        ..PipelineConfig::default()
    }
}

fn assert_identical(label: &str, a: &[ArbitrageOpportunity], b: &[ArbitrageOpportunity]) {
    assert_eq!(a.len(), b.len(), "{label}: ranking sizes diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cycle.tokens(), y.cycle.tokens());
        assert_eq!(x.cycle.pools(), y.cycle.pools());
        assert_eq!(x.strategy, y.strategy);
        assert_eq!(
            x.net_profit.value().to_bits(),
            y.net_profit.value().to_bits()
        );
    }
}

fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn soak(_c: &mut Criterion) {
    let scenario = scenario();

    // --- Cold start: batch screening vs the unscreened pipeline. ---
    let graph = TokenGraph::new(scenario.pools.clone()).expect("graph");
    let cold_start = Instant::now();
    let screened = OpportunityPipeline::new(config(true))
        .run_graph(&graph, &scenario.feed)
        .expect("screened cold start");
    let cold_screened_ns = cold_start.elapsed().as_nanos() as u64;
    let cold_start = Instant::now();
    let unscreened = OpportunityPipeline::new(config(false))
        .run_graph(&graph, &scenario.feed)
        .expect("unscreened cold start");
    let cold_unscreened_ns = cold_start.elapsed().as_nanos() as u64;
    assert_identical(
        "cold start",
        &screened.opportunities,
        &unscreened.opportunities,
    );
    let classification_reduction = 1.0
        - screened.stats.cycles_classified as f64
            / unscreened.stats.cycles_classified.max(1) as f64;

    // --- Stream: single engine vs adaptively rebalanced sharded fleet. ---
    let mut feed = scenario.feed.clone();
    let mut single = StreamingEngine::new(
        OpportunityPipeline::new(config(true)),
        scenario.pools.clone(),
    )
    .expect("engine");
    single.refresh(&feed).expect("cold start");
    let single_start = Instant::now();
    let mut last_single = Vec::new();
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        last_single = single
            .apply_events(&batch.events, &feed)
            .expect("single tick")
            .opportunities;
    }
    let single_total_ns = single_start.elapsed().as_nanos() as u64;

    let mut feed = scenario.feed.clone();
    let mut runtime = ShardedRuntime::new(
        OpportunityPipeline::new(config(true)),
        scenario.pools.clone(),
        MAX_SHARDS,
    )
    .expect("runtime")
    .with_rebalance(RebalanceConfig {
        interval_ticks: 2,
        // Whale bursts spread across all 4 domains, so inter-domain skew
        // is mild; a tight threshold keeps the adaptive path hot enough
        // to measure (bit-identity holds at any setting).
        skew_threshold: 1.05,
        min_window_events: 64,
        ..RebalanceConfig::enabled()
    });
    runtime.refresh(&feed).expect("cold start");
    let mut tick_ns = Vec::with_capacity(TICKS);
    let mut last_sharded = Vec::new();
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        let start = Instant::now();
        last_sharded = runtime
            .apply_events(&batch.events, &feed)
            .expect("sharded tick")
            .opportunities;
        tick_ns.push(start.elapsed().as_nanos() as u64);
    }
    assert_identical("stream", &last_sharded, &last_single);

    let stats = *runtime.stats();
    let loads = runtime.shard_loads();
    let screen = runtime.screen_totals();
    let tick_p99_ns = percentile_ns(&tick_ns, 0.99);
    let tick_median_ns = percentile_ns(&tick_ns, 0.50);
    JsonLine::bench("soak_10k")
        .count("pools", POOLS)
        .count("ticks", TICKS)
        .count("max_shards", MAX_SHARDS)
        .int("tick_p99_ns", tick_p99_ns)
        .int("tick_median_ns", tick_median_ns)
        .int("single_total_ns", single_total_ns)
        .int("sharded_total_ns", tick_ns.iter().sum::<u64>())
        .int("cold_start_ns_screened", cold_screened_ns)
        .int("cold_start_ns_unscreened", cold_unscreened_ns)
        .count("cold_classified_screened", screened.stats.cycles_classified)
        .count(
            "cold_classified_unscreened",
            unscreened.stats.cycles_classified,
        )
        .fixed("classification_reduction", classification_reduction, 4)
        .count("cold_screened_out", screened.stats.cycles_screened_out)
        .count("cold_floor_screened", screened.stats.cycles_floor_screened)
        .count("cold_hop_screened", screened.stats.cycles_hop_screened)
        .count("stream_screened_out", screen.cycles_screened_out)
        .count("stream_floor_screened", screen.cycles_floor_screened)
        .count("stream_hop_screened", screen.cycles_hop_screened)
        .count("rebalances", stats.rebalances)
        .count("shards_final", runtime.shard_count())
        .fixed("load_skew", loads.skew(), 3)
        .emit();

    assert!(
        classification_reduction >= 0.50,
        "batch screening must discharge >=50% of cold-start cycle \
         classifications at 10k pools, measured {:.1}% ({} vs {})",
        classification_reduction * 100.0,
        screened.stats.cycles_classified,
        unscreened.stats.cycles_classified
    );
    assert!(
        screened.stats.cycles_floor_screened > 0,
        "the floor bounds never fired on the 10k cold start"
    );
}

criterion_group!(benches, soak);
criterion_main!(benches);
