//! End-to-end engine throughput: opportunities/second for the full
//! snapshot → graph → cycles → strategies → ranking pipeline on a
//! 100-pool snapshot. The baseline every future scaling PR compares
//! against.

use arb_engine::{OpportunityPipeline, PipelineConfig};
use arb_snapshot::{Generator, Snapshot, SnapshotConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn snapshot_with_pools(num_pools: usize) -> Snapshot {
    let config = SnapshotConfig {
        num_tokens: (num_pools / 2).max(8),
        num_pools,
        ..SnapshotConfig::default()
    };
    Generator::new(config).generate().expect("snapshot")
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pipeline");
    group.sample_size(20);
    let snapshot = snapshot_with_pools(100);
    for parallel in [false, true] {
        let pipeline = OpportunityPipeline::new(PipelineConfig {
            parallel,
            ..PipelineConfig::default()
        });
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_with_input(
            BenchmarkId::new("100_pools_len3", label),
            &snapshot,
            |b, snap| {
                b.iter(|| black_box(pipeline.run_snapshot(snap).unwrap().opportunities.len()))
            },
        );
    }
    group.finish();
}

fn bench_pipeline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scaling");
    group.sample_size(10);
    let pipeline = OpportunityPipeline::new(PipelineConfig::default());
    for num_pools in [50usize, 100, 200] {
        let snapshot = snapshot_with_pools(num_pools);
        group.bench_with_input(
            BenchmarkId::new("pools", num_pools),
            &snapshot,
            |b, snap| {
                b.iter(|| black_box(pipeline.run_snapshot(snap).unwrap().opportunities.len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline, bench_pipeline_scaling);
criterion_main!(benches);
