//! Screen effectiveness: the incremental log-space profitability screen
//! against the unscreened (PR-4 behavior) dirty-refresh path.
//!
//! Two engines replay identical seeded tick streams at 600 pools — the
//! roadmap's scale operating point — over the two bursty catalog entries
//! (`whale-bursts`, and `fee-regime-shift` per Milionis et al.):
//!
//! * **screened** (`PipelineConfig::screen = true`): dirty cycles whose
//!   maintained `Σ log p` is provably ≤ 0 are dropped in O(1); survivors
//!   whose pool-potential profit bound cannot clear the gross floor
//!   (execution cost + net-profit floor) skip strategy work too.
//! * **unscreened** (`screen = false`): every dirty cycle is fully
//!   prepared and strategy-evaluated, exactly as before this screen
//!   existed.
//!
//! Both run serial per-engine evaluation so the comparison isolates the
//! screen (work *avoided*, not parallelism), and both use the same
//! scratch-arena fan-out. The harness asserts, on `fee-regime-shift`:
//!
//! * final rankings **bit-identical** (the per-tick oracle lives in
//!   `tests/screen_equivalence.rs`);
//! * ≥ 2× median dirty-refresh (per-tick) speedup;
//! * ≥ 80% fewer strategy evaluations;
//! * zero scratch-arena growth after warmup (the fan-out scratch path
//!   allocates nothing in the steady state).
//!
//! `whale-bursts` is replayed with the same harness but reported only:
//! its arbitrage population is dominated by genuinely profitable
//! whale-displaced loops (gross profits in the thousands), and a *sound*
//! screen must evaluate every loop the full path would rank — no correct
//! screen can skip them. The log-sum screen still discharges the
//! log-negative majority there; the eval-heavy regime where the floor
//! screen shines is exactly the Milionis et al. fee-regime sweep, whose
//! low-fee phase floods the engine with barely-positive marginal loops.
//!
//! The JSON counter lines feed `BENCH_screen.json`; CI's trend gate
//! fails the build when the screened median dirty-refresh latency
//! regresses more than 20% against the committed baseline speedup.

use arb_bench::json::JsonLine;
use arb_engine::{ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, StreamingEngine};
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

const POOLS: usize = 600;
const TICKS: usize = 48;
/// Ticks treated as warmup before the scratch arena must stop growing.
const WARMUP_TICKS: usize = 8;

fn scenario(workload: &str, seed: u64) -> Scenario {
    find(workload)
        .expect("workload in catalog")
        .scenario(&ScenarioConfig {
            seed,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("scenario generates")
}

/// The shared engine configuration: a realistic gas cost + profit floor
/// (so the feed-priced profit-bound screen has a floor to discharge
/// against — baseline ~1-2% mispricings bound out around $5-20 per
/// cycle, whale-displaced cycles in the hundreds), serial evaluation to
/// isolate work reduction, and the screen toggled per path.
fn config(screen: bool) -> PipelineConfig {
    PipelineConfig {
        execution_cost_usd: 50.0,
        min_net_profit_usd: 10.0,
        parallel: false,
        top_k: Some(16),
        screen,
        ..PipelineConfig::default()
    }
}

fn assert_identical(workload: &str, a: &[ArbitrageOpportunity], b: &[ArbitrageOpportunity]) {
    assert_eq!(a.len(), b.len(), "{workload}: ranking sizes diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cycle.tokens(), y.cycle.tokens());
        assert_eq!(x.cycle.pools(), y.cycle.pools());
        assert_eq!(x.strategy, y.strategy);
        assert_eq!(
            x.net_profit.value().to_bits(),
            y.net_profit.value().to_bits()
        );
    }
}

struct Replay {
    per_tick_ns: Vec<u64>,
    final_ranking: Vec<ArbitrageOpportunity>,
    strategy_evaluations: usize,
    screened_out: usize,
    floor_screened: usize,
    screen_delta_updates: usize,
    screen_resummations: usize,
    scratch_grows_warm: usize,
}

/// Replays the full stream through one engine, timing each
/// `apply_events` (the dirty-refresh reaction) individually.
fn replay(scenario: &Scenario, screen: bool) -> Replay {
    let mut feed = scenario.feed.clone();
    let mut engine = StreamingEngine::new(
        OpportunityPipeline::new(config(screen)),
        scenario.pools.clone(),
    )
    .expect("engine");
    engine.refresh(&feed).expect("cold start");
    let mut per_tick_ns = Vec::with_capacity(scenario.ticks.len());
    let mut final_ranking = Vec::new();
    let mut grows_at_warmup = 0usize;
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut feed);
        let start = Instant::now();
        final_ranking = engine
            .apply_events(&batch.events, &feed)
            .expect("tick")
            .opportunities;
        per_tick_ns.push(start.elapsed().as_nanos() as u64);
        if tick + 1 == WARMUP_TICKS {
            grows_at_warmup = engine.stats().scratch_grow_events;
        }
    }
    let stats = *engine.stats();
    Replay {
        per_tick_ns,
        final_ranking,
        strategy_evaluations: stats.strategy_evaluations,
        screened_out: stats.cycles_screened_out,
        floor_screened: stats.cycles_floor_screened,
        screen_delta_updates: stats.screen_delta_updates,
        screen_resummations: stats.screen_resummations,
        scratch_grows_warm: stats.scratch_grow_events - grows_at_warmup,
    }
}

fn median_ns(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// The asserted effectiveness pass for one workload. The speedup and
/// eval-reduction gates apply to `fee-regime-shift` (whale-bursts is
/// reported for the trend artifact — see the module docs for why its
/// monsters are unskippable); the zero-allocation gate applies to
/// `whale-bursts`, whose fixed universe and recurring burst shape *is* a
/// steady state (fee-regime-shift changes regime mid-run, so later
/// phases legitimately set new scratch high-water marks).
fn effectiveness(workload: &'static str, seed: u64, gate: bool) {
    let scenario = scenario(workload, seed);
    let screened = replay(&scenario, true);
    let unscreened = replay(&scenario, false);
    assert_identical(workload, &screened.final_ranking, &unscreened.final_ranking);

    let median_screened = median_ns(&screened.per_tick_ns);
    let median_unscreened = median_ns(&unscreened.per_tick_ns);
    let speedup = median_unscreened as f64 / median_screened.max(1) as f64;
    let evals_avoided = screened.screened_out + screened.floor_screened;
    let eval_reduction =
        1.0 - screened.strategy_evaluations as f64 / unscreened.strategy_evaluations.max(1) as f64;

    JsonLine::bench("screen_effectiveness")
        .text("workload", workload)
        .count("pools", POOLS)
        .count("ticks", TICKS)
        .int("median_dirty_refresh_ns_screened", median_screened)
        .int("median_dirty_refresh_ns_unscreened", median_unscreened)
        .fixed("speedup", speedup, 3)
        .count("evals_avoided", evals_avoided)
        .count("screened_out", screened.screened_out)
        .count("floor_screened", screened.floor_screened)
        .count("screen_updates", screened.screen_delta_updates)
        .count("screen_resummations", screened.screen_resummations)
        .count("strategy_evals_screened", screened.strategy_evaluations)
        .count("strategy_evals_unscreened", unscreened.strategy_evaluations)
        .fixed("eval_reduction", eval_reduction, 4)
        .count("scratch_grows_after_warmup", screened.scratch_grows_warm)
        .emit();

    if !gate {
        assert_eq!(
            screened.scratch_grows_warm, 0,
            "{workload}: the refresh fan-out scratch path must not \
             allocate after warmup"
        );
    }
    assert!(
        evals_avoided > 0,
        "{workload}: the screen never fired — effectiveness is vacuous"
    );
    if gate {
        assert!(
            speedup >= 2.0,
            "{workload}: screened median dirty-refresh must be >=2x \
             faster, measured {speedup:.3}x \
             ({median_screened}ns vs {median_unscreened}ns)"
        );
        assert!(
            eval_reduction >= 0.80,
            "{workload}: the screen must avoid >=80% of strategy \
             evaluations, measured {:.1}% ({} vs {})",
            eval_reduction * 100.0,
            screened.strategy_evaluations,
            unscreened.strategy_evaluations
        );
    }
}

fn screen_effectiveness_pass(_c: &mut Criterion) {
    effectiveness("fee-regime-shift", 77_002, true);
    effectiveness("whale-bursts", 77_001, false);
}

/// Wall-clock criterion group for the per-tick reaction, cycling the
/// whale-bursts stream (it emits only absolute syncs + feed moves, so
/// replaying is state-safe; fee-regime-shift deploys pools and cannot be
/// cycled).
fn bench_dirty_refresh(c: &mut Criterion) {
    let scenario = scenario("whale-bursts", 77_001);
    let mut group = c.benchmark_group("screen_effectiveness/dirty_refresh");
    group.sample_size(10);
    for (label, screen) in [("screened", true), ("unscreened", false)] {
        let mut feed = scenario.feed.clone();
        let mut engine = StreamingEngine::new(
            OpportunityPipeline::new(config(screen)),
            scenario.pools.clone(),
        )
        .expect("engine");
        engine.refresh(&feed).expect("cold start");
        let mut tick = 0usize;
        group.bench_with_input(BenchmarkId::new(label, POOLS), &(), |b, ()| {
            b.iter(|| {
                let batch = &scenario.ticks[tick % TICKS];
                tick += 1;
                batch.apply_feed(&mut feed);
                black_box(
                    engine
                        .apply_events(&batch.events, &feed)
                        .unwrap()
                        .opportunities
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dirty_refresh, screen_effectiveness_pass);
criterion_main!(benches);
