//! Serve storm: lock-free snapshot serving under whale-burst write load.
//!
//! The workload is the catalog's `whale-bursts` entry at 600 pools — the
//! same operating point as `sharded_soak` — streamed through a
//! [`ServeRuntime`] while governed reader threads hammer the published
//! [`RankedSnapshot`]s with the deterministic query plans from
//! [`ReadStormProfile`]. Two measured phases replay the identical tick
//! stream (whale-bursts emits only absolute syncs + feed moves, so
//! cycling epochs is state-safe):
//!
//! * **quiet**: the serving runtime ticks with zero readers — the
//!   baseline per-tick latency including publication;
//! * **storm**: four reader threads run their query cycles flat out,
//!   throttled only by the admission governor (64k admissions/s per
//!   class, 192k/s aggregate); denied readers sleep on the retry hint.
//!
//! The read path never takes a lock — readers pin an epoch slot, load
//! the snapshot pointer, and query frozen indexes — so the storm must
//! not disturb the event path. The pass **asserts**:
//!
//! * sustained admitted reads ≥ 100k/s across ≥ 4 reader threads (the
//!   governed rate is wall-clock anchored, so this holds on any host
//!   that schedules the readers at all);
//! * storm-phase tick p99 within **+20%** of the quiet-phase tick p99
//!   (readers must not contend with the writer);
//! * the governor actually throttled (otherwise the storm measured an
//!   open door, not admission control).
//!
//! The JSON line feeds `BENCH_serve.json`; CI's trend gate fails the
//! build when `reads_per_sec` drops or `read_p99_ns` grows more than
//! 20% against the committed baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arb_bench::json::JsonLine;
use arb_engine::{OpportunityPipeline, PipelineConfig, ShardedRuntime};
use arb_serve::{
    ClassLimit, ClientClass, GovernorConfig, RankedSnapshot, ServeError, ServeHandle, ServeRuntime,
};
use arb_workloads::{find, QueryOp, ReadStormProfile, ReaderPlan, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const POOLS: usize = 600;
const SHARDS: usize = 4;
const TICKS: usize = 48;
const READERS: usize = 4;
/// Full tick-stream replays per measured phase.
const EPOCHS: usize = 2;
/// The storm keeps cycling epochs until this much wall clock has
/// elapsed, so reads/s is measured over a scheduler-stable window.
const MIN_STORM: Duration = Duration::from_millis(1500);
/// Per-class sustained admission rate: 3 classes × 64k = 192k/s
/// aggregate, comfortably above the 100k/s acceptance floor.
const CLASS_RATE: f64 = 64_000.0;

fn scenario() -> Scenario {
    find("whale-bursts")
        .expect("whale-bursts in catalog")
        .scenario(&ScenarioConfig {
            seed: 11_001,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("storm scenario generates")
}

fn governor() -> GovernorConfig {
    GovernorConfig {
        limits: [ClassLimit {
            rate_per_sec: CLASS_RATE,
            // Thousands of tokens of burst headroom amortize the coarse
            // reader sleeps (~2ms) without letting a reader run far
            // ahead of its sustained rate.
            burst: 8_192.0,
        }; 3],
        max_concurrent: 64,
    }
}

fn serve_runtime(scenario: &Scenario, governor: GovernorConfig) -> ServeRuntime {
    let pipeline = OpportunityPipeline::new(PipelineConfig {
        top_k: Some(16),
        ..PipelineConfig::default()
    });
    let runtime =
        ShardedRuntime::new(pipeline, scenario.pools.clone(), SHARDS).expect("sharded runtime");
    let mut serve = ServeRuntime::new(runtime, governor);
    serve.refresh(&scenario.feed).expect("cold start");
    serve
}

/// One governed reader's tally after the storm.
struct ReaderReport {
    reads: u64,
    rate_limited: u64,
    saturated: u64,
    read_ns: Vec<u64>,
}

/// Answers one query against a loaded snapshot, returning a size the
/// optimizer cannot discard.
fn touch(snapshot: &RankedSnapshot, op: QueryOp) -> usize {
    match op {
        QueryOp::TopK(k) => snapshot.top_k(k).len(),
        QueryOp::ByToken(token) => snapshot.by_token(token).count(),
        QueryOp::ByPool(pool) => snapshot.by_pool(pool).count(),
        QueryOp::MinNetProfit(floor) => snapshot.min_net_profit(floor).count(),
    }
}

/// The reader loop: governed query, execute the plan's next op, sleep
/// out rate denials. Read latency covers admission + load + query —
/// the full client-visible path.
fn run_reader(handle: ServeHandle, plan: ReaderPlan, done: Arc<AtomicBool>) -> ReaderReport {
    let mut report = ReaderReport {
        reads: 0,
        rate_limited: 0,
        saturated: 0,
        read_ns: Vec::with_capacity(1 << 16),
    };
    let mut cursor = 0usize;
    while !done.load(Ordering::Relaxed) {
        let start = Instant::now();
        match handle.query() {
            Ok(guard) => {
                black_box(touch(&guard, plan.ops[cursor % plan.ops.len()]));
                report.read_ns.push(start.elapsed().as_nanos() as u64);
                report.reads += 1;
                cursor += 1;
            }
            Err(ServeError::RateLimited { retry_nanos, .. }) => {
                report.rate_limited += 1;
                // Sleeping well past the hint batches the next burst of
                // admissions, keeping reader wakeups rare enough that
                // they cannot perturb the writer's tick latency.
                std::thread::sleep(Duration::from_nanos(retry_nanos.max(2_000_000)));
            }
            Err(ServeError::Saturated { .. }) => {
                report.saturated += 1;
                std::thread::yield_now();
            }
        }
    }
    report
}

/// Replays one full tick-stream epoch, pushing per-tick latencies.
fn replay_epoch(serve: &mut ServeRuntime, scenario: &Scenario, tick_ns: &mut Vec<u64>) {
    let mut feed = scenario.feed.clone();
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        let start = Instant::now();
        black_box(
            serve
                .apply_events(&batch.events, &feed)
                .expect("storm tick")
                .opportunities
                .len(),
        );
        tick_ns.push(start.elapsed().as_nanos() as u64);
    }
}

fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The asserted storm pass: quiet baseline, then the governed read
/// storm, then the reads/s, tick-overhead, and throttling gates.
fn storm_pass(_c: &mut Criterion) {
    let scenario = scenario();
    let mut serve = serve_runtime(&scenario, governor());

    // --- Quiet phase: the event path with zero readers attached. ---
    let mut quiet_tick_ns = Vec::with_capacity(EPOCHS * TICKS);
    for _ in 0..EPOCHS {
        replay_epoch(&mut serve, &scenario, &mut quiet_tick_ns);
    }

    // --- Storm phase: governed readers race the same tick stream. ---
    let profile = ReadStormProfile {
        readers: READERS,
        ..ReadStormProfile::default()
    };
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<std::thread::JoinHandle<ReaderReport>> = profile
        .plans(scenario.feed.len(), scenario.pools.len())
        .into_iter()
        .map(|plan| {
            let handle = serve.handle(ClientClass::ALL[plan.class_index]);
            let done = Arc::clone(&done);
            std::thread::spawn(move || run_reader(handle, plan, done))
        })
        .collect();

    let mut storm_tick_ns = Vec::with_capacity(EPOCHS * TICKS);
    let storm_start = Instant::now();
    while storm_tick_ns.len() < EPOCHS * TICKS || storm_start.elapsed() < MIN_STORM {
        replay_epoch(&mut serve, &scenario, &mut storm_tick_ns);
    }
    let storm_elapsed = storm_start.elapsed();
    done.store(true, Ordering::Relaxed);

    let mut reads_total = 0u64;
    let mut rate_limited = 0u64;
    let mut saturated = 0u64;
    let mut read_ns = Vec::new();
    for reader in readers {
        let report = reader.join().expect("reader panicked");
        assert!(report.reads > 0, "a reader never completed a read");
        reads_total += report.reads;
        rate_limited += report.rate_limited;
        saturated += report.saturated;
        read_ns.extend(report.read_ns);
    }

    let reads_per_sec = reads_total as f64 / storm_elapsed.as_secs_f64();
    let read_p99_ns = percentile_ns(&read_ns, 0.99);
    let read_median_ns = percentile_ns(&read_ns, 0.50);
    let quiet_p99 = percentile_ns(&quiet_tick_ns, 0.99);
    let storm_p99 = percentile_ns(&storm_tick_ns, 0.99);
    let tick_overhead = storm_p99 as f64 / quiet_p99.max(1) as f64;
    let publish = serve.publish_stats();
    let admission = serve.governor_stats();

    JsonLine::bench("serve_storm")
        .count("pools", POOLS)
        .count("shards", SHARDS)
        .count("readers", READERS)
        .count("quiet_ticks", quiet_tick_ns.len())
        .count("storm_ticks", storm_tick_ns.len())
        .int("storm_elapsed_ms", storm_elapsed.as_millis() as u64)
        .int("reads_total", reads_total)
        .int("reads_per_sec", reads_per_sec as u64)
        .int("read_p99_ns", read_p99_ns)
        .int("read_median_ns", read_median_ns)
        .int("tick_p99_quiet_ns", quiet_p99)
        .int("tick_p99_storm_ns", storm_p99)
        .fixed("tick_overhead_ratio", tick_overhead, 3)
        .int("rate_limited", rate_limited)
        .int("saturated", saturated)
        .int("admitted", admission.total_admitted())
        .int("publishes", publish.publishes)
        .int("noop_deltas", publish.noop_deltas)
        .int("revision_final", serve.published_revision())
        .emit();

    assert!(
        reads_per_sec >= 100_000.0,
        "the storm must sustain >=100k admitted reads/s across \
         {READERS} readers, measured {reads_per_sec:.0}/s"
    );
    assert!(
        tick_overhead <= 1.20,
        "the read storm must not add more than 20% to tick p99: \
         quiet {quiet_p99}ns vs storm {storm_p99}ns ({tick_overhead:.3}x)"
    );
    assert!(
        rate_limited > 0,
        "the governor never throttled — the storm ran an open door, \
         not admission control"
    );
    assert!(
        publish.publishes > 1,
        "the tick stream never republished; readers raced a static snapshot"
    );
}

/// Wall-clock criterion group for the raw read path: the ungoverned
/// wait-free load (pin, pointer load, refcount bump) and one governed
/// query end to end.
fn bench_read_path(c: &mut Criterion) {
    let scenario = scenario();
    // Criterion iterates far past any storm envelope; open the governor
    // so the governed sample times admission + load, not the deny path.
    let serve = serve_runtime(
        &scenario,
        GovernorConfig {
            limits: [ClassLimit {
                rate_per_sec: 1e9,
                burst: 1e9,
            }; 3],
            max_concurrent: 64,
        },
    );
    let mut group = c.benchmark_group("serve_storm/read");
    let handle = serve.handle(ClientClass::Interactive);
    group.bench_function("ungoverned_load", |b| {
        b.iter(|| black_box(handle.load().revision()))
    });
    group.bench_function("governed_top_k", |b| {
        b.iter(|| match handle.query() {
            Ok(guard) => black_box(guard.top_k(8).len()),
            Err(_) => 0,
        })
    });
    group.finish();
}

criterion_group!(benches, bench_read_path, storm_pass);
criterion_main!(benches);
