//! Journal durability costs at the roadmap's 600-pool operating point.
//!
//! Two numbers matter for running the journal on the hot path:
//!
//! * **append throughput** — events/s through `append_batch` + `commit`
//!   (one fsync-equivalent flush per tick batch; `sync_on_commit` is
//!   off so the bench measures the journal's own framing + write cost,
//!   not the device's fsync latency);
//! * **recovery time** — wall clock for `Recovery` to restore the
//!   mid-stream snapshot and replay the journal suffix back to a
//!   standing ranking, versus replaying the whole stream from genesis.
//!
//! The harness replays the `whale-bursts` workload at 600 pools / 4
//! shards, snapshots halfway, crashes, and recovers — asserting the
//! recovered ranking is bit-identical to the uninterrupted run and that
//! the snapshot path replays strictly fewer events than genesis. The
//! JSON counter line feeds the `BENCH_journal.json` trend artifact.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use arb_engine::{ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, ShardedRuntime};
use arb_journal::{JournalConfig, JournalWriter, Recovery, SnapshotStore};
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const POOLS: usize = 600;
const TOKENS: usize = 240;
const DOMAINS: usize = 4;
const SHARDS: usize = 4;
const TICKS: usize = 48;

fn scenario() -> Scenario {
    find("whale-bursts")
        .expect("whale-bursts in catalog")
        .scenario(&ScenarioConfig {
            seed: 71_002,
            domains: DOMAINS,
            num_tokens: TOKENS,
            num_pools: POOLS,
            ticks: TICKS,
            intensity: 2.0,
        })
        .expect("journal scenario generates")
}

fn pipeline() -> OpportunityPipeline {
    OpportunityPipeline::new(PipelineConfig {
        top_k: Some(16),
        parallel: false,
        ..PipelineConfig::default()
    })
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "arbloops-journal-bench-{}-{name}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn journal_config() -> JournalConfig {
    JournalConfig {
        sync_on_commit: false,
        ..JournalConfig::default()
    }
}

/// Criterion wall-clock for appending + committing one tick batch.
fn bench_append(c: &mut Criterion) {
    let scenario = scenario();
    let dir = scratch("append");
    let mut writer = JournalWriter::open(&dir, journal_config()).expect("writer");
    let mut group = c.benchmark_group("journal/append");
    group.sample_size(20);
    let mut tick = 0usize;
    group.bench_with_input(BenchmarkId::new("tick_batch", POOLS), &(), |b, ()| {
        b.iter(|| {
            let batch = &scenario.ticks[tick % TICKS];
            tick += 1;
            writer.append_batch(&batch.events);
            black_box(writer.commit().expect("commit"));
        })
    });
    group.finish();
    let _ = fs::remove_dir_all(&dir);
}

fn assert_identical(recovered: &[ArbitrageOpportunity], expected: &[ArbitrageOpportunity]) {
    assert_eq!(recovered.len(), expected.len(), "ranking sizes diverged");
    for (r, e) in recovered.iter().zip(expected) {
        assert_eq!(r.cycle.tokens(), e.cycle.tokens());
        assert_eq!(r.cycle.pools(), e.cycle.pools());
        assert_eq!(
            r.net_profit.value().to_bits(),
            e.net_profit.value().to_bits()
        );
    }
}

/// The asserted pass: journal the full stream (snapshot at half), crash,
/// recover, compare; print the JSON counter line.
fn journal_counters(_c: &mut Criterion) {
    let scenario = scenario();
    let total_events = scenario.total_events();
    let dir = scratch("counters");

    // Live run: journal everything, checkpoint at the halfway tick.
    let mut writer = JournalWriter::open(&dir, journal_config()).expect("writer");
    let store = SnapshotStore::new(&dir).expect("store");
    let mut runtime =
        ShardedRuntime::new(pipeline(), scenario.pools.clone(), SHARDS).expect("runtime");
    let mut feed = scenario.feed.clone();
    let mut last_live = Vec::new();
    let mut snapshot_offset = 0u64;
    let append_start = Instant::now();
    let mut append_ns = 0u64;
    for (index, batch) in scenario.ticks.iter().enumerate() {
        batch.apply_feed(&mut feed);
        let t0 = Instant::now();
        writer.append_batch(&batch.events);
        writer.commit().expect("commit");
        append_ns += t0.elapsed().as_nanos() as u64;
        last_live = runtime
            .apply_events(&batch.events, &feed)
            .expect("live tick")
            .opportunities;
        if index == TICKS / 2 {
            snapshot_offset = writer.durable_offset();
            store
                .write(snapshot_offset, &runtime.checkpoint())
                .expect("snapshot");
        }
    }
    let wall_ns = append_start.elapsed().as_nanos() as u64;
    drop(runtime); // 💥 crash

    // Snapshot recovery.
    let recovery_start = Instant::now();
    let recovered = Recovery::new(&dir, pipeline(), SHARDS)
        .with_genesis_pools(scenario.pools.clone())
        .recover(&feed)
        .expect("recover");
    let recovery_ns = recovery_start.elapsed().as_nanos() as u64;
    let stats = recovered.stats;
    assert_eq!(stats.snapshot_offset, Some(snapshot_offset));
    assert!(
        stats.events_replayed < total_events,
        "snapshot replay must beat genesis: {stats}"
    );
    let mut recovered_runtime = recovered.runtime;
    let restored = recovered_runtime.refresh(&feed).expect("refresh");
    assert_identical(&restored.opportunities, &last_live);

    // Genesis recovery for comparison (snapshots removed).
    for (_, path) in store.list().expect("list") {
        fs::remove_file(path).expect("remove snapshot");
    }
    let genesis_start = Instant::now();
    let genesis = Recovery::new(&dir, pipeline(), SHARDS)
        .with_genesis_pools(scenario.pools.clone())
        .recover(&feed)
        .expect("genesis recover");
    let genesis_ns = genesis_start.elapsed().as_nanos() as u64;
    assert_eq!(genesis.stats.snapshot_offset, None);
    assert_eq!(genesis.stats.events_replayed, total_events);
    let mut genesis_runtime = genesis.runtime;
    let genesis_report = genesis_runtime.refresh(&feed).expect("refresh");
    assert_identical(&genesis_report.opportunities, &last_live);

    let append_events_per_s = total_events as f64 / (append_ns.max(1) as f64 / 1e9);
    println!(
        "{{\"bench\":\"journal\",\"pools\":{},\"shards\":{},\"ticks\":{},\
         \"events\":{},\"append_ns\":{},\"append_events_per_s\":{:.0},\
         \"wall_ns\":{},\"snapshot_offset\":{},\"events_replayed\":{},\
         \"recovery_ns\":{},\"genesis_events_replayed\":{},\"genesis_ns\":{}}}",
        POOLS,
        SHARDS,
        TICKS,
        total_events,
        append_ns,
        append_events_per_s,
        wall_ns,
        snapshot_offset,
        stats.events_replayed,
        recovery_ns,
        genesis.stats.events_replayed,
        genesis_ns,
    );
    let _ = fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_append, journal_counters);
criterion_main!(benches);
