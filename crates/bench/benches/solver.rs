//! Interior-point solver benchmarks: the paper's eq. 8 program at several
//! sizes, plus raw linear-algebra kernels.

use arb_bench::paper::synthetic_loop;
use arb_convex::{LoopProblem, SolverOptions};
use arb_numerics::linalg::Matrix;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_loop_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/loop_program");
    group.sample_size(30);
    for length in [3usize, 6, 10, 16] {
        let loop_ = synthetic_loop(length, 10_000.0, 1.2);
        let prices: Vec<f64> = (0..length).map(|i| 1.0 + i as f64 * 0.5).collect();
        let problem = LoopProblem::new(loop_.hops().to_vec(), prices).unwrap();
        group.bench_with_input(BenchmarkId::new("reduced", length), &problem, |b, p| {
            b.iter(|| black_box(p.solve(&SolverOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/linalg");
    for n in [4usize, 8, 16, 32] {
        // SPD system A = I + 0.1·(i==j±1) tridiagonal-ish.
        let mut a = Matrix::identity(n);
        for i in 0..n.saturating_sub(1) {
            a[(i, i + 1)] = 0.1;
            a[(i + 1, i)] = 0.1;
        }
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        group.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| black_box(a.cholesky_solve(black_box(&rhs)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lu_solve", n), &n, |b, _| {
            b.iter(|| black_box(a.lu_solve(black_box(&rhs)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loop_program, bench_linalg);
criterion_main!(benches);
