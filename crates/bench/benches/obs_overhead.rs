//! What does observability *cost* on the hot path?
//!
//! The `arb-obs` design claim is that instrumentation is cheap enough
//! to leave on in production: counters are single relaxed RMWs, span
//! timers are two `Instant` reads plus three histogram RMWs, and the
//! flight recorder is a fixed ring with no allocation on the record
//! path. This bench measures the claim end to end on the whale-bursts
//! workload at the soak operating point (600 pools, 4 shards,
//! intensity 2.0): the identical tick stream is replayed through the
//! ingest front-end + sharded fleet twice per round — once bare, once
//! with the full observability layer wired (`Ingestor::set_obs` +
//! `IngestDriver::set_obs`, which cascades into every shard engine) —
//! and the per-tick seal→rankings-updated latency is sampled.
//!
//! Legs alternate within each round so thermal drift and cache state
//! cannot systematically favor one side, and round 0 is a discarded
//! warm-up. Because both legs replay the *identical* tick stream, the
//! quantiles are computed over per-tick minima across rounds: the min
//! filters scheduler and allocator noise (which is one-sided) while
//! any real instrumentation cost persists in every round, so it
//! survives the filter. The pass **asserts** bit-identical final
//! rankings between the legs (instrumentation is a pure observer) and
//! that the instrumented registry agrees with the legacy
//! `IngestStats` display.
//! The JSON line feeds `BENCH_obs.json`; CI gates `overhead_ratio`
//! (instrumented p99 / bare p99) at 5% over the committed baseline of
//! 1.00, and uploads a sample flight-recorder dump (written when
//! `OBS_FLIGHT_SAMPLE` names a path) as a build artifact.

use std::time::Instant;

use arb_bench::json::JsonLine;
use arb_engine::{OpportunityPipeline, PipelineConfig, RuntimeReport, ShardedRuntime};
use arb_ingest::{IngestConfig, IngestDriver, Ingestor};
use arb_obs::{Obs, ObsOptions};
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const POOLS: usize = 600;
const SHARDS: usize = 4;
const TICKS: usize = 48;
/// Rounds per leg; round 0 is warm-up and contributes no samples.
const ROUNDS: usize = 6;

fn scenario(seed: u64) -> Scenario {
    find("whale-bursts")
        .expect("workload in catalog")
        .scenario(&ScenarioConfig {
            seed,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("scenario generates")
}

fn runtime(scenario: &Scenario) -> ShardedRuntime {
    ShardedRuntime::new(
        OpportunityPipeline::new(PipelineConfig::default()),
        scenario.pools.clone(),
        SHARDS,
    )
    .expect("sharded runtime")
}

struct Leg {
    tick_ns: Vec<u64>,
    report: RuntimeReport,
    stats: arb_ingest::IngestStats,
    batches: u64,
}

/// One replay of the full tick stream through the front-end, with or
/// without the observability layer attached. No journal: the disk is
/// the one component whose jitter would drown the signal this bench
/// exists to measure.
fn run_leg(scenario: &Scenario, obs: Option<&Obs>) -> Leg {
    let mut ingestor = Ingestor::new(IngestConfig::default());
    let feed_source = ingestor.register_source("cex-feed");
    let chain_source = ingestor.register_source("dexsim");
    let mut driver = IngestDriver::new(runtime(scenario), scenario.feed.clone(), ingestor.handle());
    if let Some(obs) = obs {
        ingestor.set_obs(obs);
        driver.set_obs(obs);
    }

    ingestor.seal_block().expect("cold seal");
    let mut report = driver
        .try_step()
        .expect("cold apply")
        .expect("cold batch queued");

    let mut tick_ns = Vec::with_capacity(scenario.ticks.len());
    for batch in &scenario.ticks {
        ingestor
            .offer_feed_moves(feed_source, &batch.feed_moves)
            .expect("feed staged");
        ingestor
            .offer(chain_source, batch.events.iter().copied())
            .expect("chain staged");
        let start = Instant::now();
        ingestor.seal_block().expect("seal");
        report = driver
            .try_step()
            .expect("tick applies")
            .expect("one batch per tick");
        tick_ns.push(start.elapsed().as_nanos() as u64);
        black_box(report.opportunities.len());
    }
    Leg {
        tick_ns,
        report,
        stats: ingestor.stats(),
        batches: driver.batches_applied(),
    }
}

fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-tick minimum across rounds: `rounds[r][i]` is tick `i`'s
/// latency in round `r`; the result has one (noise-filtered) sample
/// per tick.
fn per_tick_min(rounds: &[Vec<u64>]) -> Vec<u64> {
    let ticks = rounds.first().map_or(0, Vec::len);
    (0..ticks)
        .map(|i| rounds.iter().map(|round| round[i]).min().expect("rounds"))
        .collect()
}

fn assert_final_identical(got: &RuntimeReport, expected: &RuntimeReport) {
    assert_eq!(
        got.opportunities.len(),
        expected.opportunities.len(),
        "instrumented leg: opportunity counts diverged"
    );
    for (position, (g, e)) in got
        .opportunities
        .iter()
        .zip(&expected.opportunities)
        .enumerate()
    {
        assert_eq!(g.cycle.pools(), e.cycle.pools(), "#{position}: pools");
        assert_eq!(g.strategy, e.strategy, "#{position}: strategy");
        assert_eq!(
            g.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "#{position}: net profit"
        );
    }
}

fn obs_pass(_c: &mut Criterion) {
    let scenario = scenario(17_001);
    let mut bare_rounds: Vec<Vec<u64>> = Vec::new();
    let mut instrumented_rounds: Vec<Vec<u64>> = Vec::new();
    let mut last_bare = None;
    let mut last_instrumented = None;
    let mut last_obs = None;

    for round in 0..ROUNDS {
        // Alternate which leg goes first so neither systematically
        // inherits the other's warmed caches.
        let instrumented_first = round % 2 == 1;
        for leg_index in 0..2 {
            let instrumented = (leg_index == 1) != instrumented_first;
            if instrumented {
                let obs = Obs::new(ObsOptions::default());
                let leg = run_leg(&scenario, Some(&obs));
                if round > 0 {
                    instrumented_rounds.push(leg.tick_ns.clone());
                }
                last_instrumented = Some(leg);
                last_obs = Some(obs);
            } else {
                let leg = run_leg(&scenario, None);
                if round > 0 {
                    bare_rounds.push(leg.tick_ns.clone());
                }
                last_bare = Some(leg);
            }
        }
    }

    let bare = last_bare.expect("bare leg ran");
    let instrumented = last_instrumented.expect("instrumented leg ran");
    let obs = last_obs.expect("instrumented leg kept its handle");

    // Instrumentation is a pure observer: identical rankings, identical
    // front-end behavior.
    assert_final_identical(&instrumented.report, &bare.report);
    assert_eq!(instrumented.stats, bare.stats, "stats diverged");
    assert_eq!(instrumented.batches, bare.batches);

    // The registry mirrors the legacy display, and every applied batch
    // timed its spans.
    let snapshot = obs.snapshot();
    assert_eq!(
        snapshot.counter("ingest.events_in"),
        Some(instrumented.stats.events_in)
    );
    assert_eq!(
        snapshot.counter("ingest.batches_delivered"),
        Some(instrumented.stats.batches_delivered)
    );
    assert_eq!(
        snapshot
            .histogram("ingest.apply_ns")
            .expect("apply span")
            .count,
        instrumented.batches
    );
    assert_eq!(
        snapshot
            .histogram("ingest.e2e_ns")
            .expect("e2e histogram")
            .count,
        instrumented.batches
    );

    // A sample post-mortem for the CI artifact: the flight ring after a
    // full replay, dumped as JSON-lines.
    if let Ok(path) = std::env::var("OBS_FLIGHT_SAMPLE") {
        obs.dump_flight_to(std::path::Path::new(&path))
            .expect("flight sample written");
    }

    let bare_ns = per_tick_min(&bare_rounds);
    let instrumented_ns = per_tick_min(&instrumented_rounds);
    let bare_p50 = percentile_ns(&bare_ns, 0.50);
    let bare_p99 = percentile_ns(&bare_ns, 0.99);
    let on_p50 = percentile_ns(&instrumented_ns, 0.50);
    let on_p99 = percentile_ns(&instrumented_ns, 0.99);
    let overhead_ratio = on_p99 as f64 / bare_p99.max(1) as f64;

    JsonLine::bench("obs_overhead")
        .text("workload", "whale-bursts")
        .count("pools", POOLS)
        .count("shards", SHARDS)
        .count("ticks", TICKS)
        .count("rounds", ROUNDS - 1)
        .int("bare_p50_ns", bare_p50)
        .int("bare_p99_ns", bare_p99)
        .int("instrumented_p50_ns", on_p50)
        .int("instrumented_p99_ns", on_p99)
        .fixed("overhead_ratio", overhead_ratio, 3)
        .emit();

    // The CI gate holds the ratio to 5% over the committed baseline;
    // in-bench, only rule out a catastrophic regression so local runs
    // on noisy boxes don't flake.
    assert!(
        overhead_ratio < 1.5,
        "instrumentation overhead blew up: instrumented p99 {on_p99}ns \
         vs bare p99 {bare_p99}ns ({overhead_ratio:.3}x)"
    );
}

criterion_group!(benches, obs_pass);
criterion_main!(benches);
