//! Sharded-runtime soak: multi-domain scale-out vs the single engine.
//!
//! The workload is the catalog's `whale-bursts` entry at 600 pools across
//! 4 execution domains — the ≥600-pool / 4-shard operating point the
//! roadmap's scale work targets. Two consumers replay the identical
//! seeded tick stream:
//!
//! * **single**: one `StreamingEngine` owning the whole universe (the
//!   PR-2 path);
//! * **sharded**: a `ShardedRuntime` with one engine per domain on the
//!   worker pool, merged per tick.
//!
//! Besides wall-clock numbers, the harness runs a soak pass that replays
//! the full stream through both paths, asserts the final rankings are
//! bit-identical, and prints a JSON line with per-shard evaluation
//! counts, merge latency, and end-to-end tick times for the
//! `BENCH_sharded.json` trend artifact. On machines with ≥ 4 cores the
//! pass **asserts** the sharded path clears 2× the single-engine tick
//! throughput; on smaller machines (where a 4-shard worker pool cannot
//! physically beat one core) the speedup is reported but not gated.

use arb_bench::json::JsonLine;
use arb_engine::{
    ArbitrageOpportunity, OpportunityPipeline, PipelineConfig, ShardedRuntime, StreamingEngine,
};
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

const POOLS: usize = 600;
const SHARDS: usize = 4;
const TICKS: usize = 48;

fn scenario() -> Scenario {
    find("whale-bursts")
        .expect("whale-bursts in catalog")
        .scenario(&ScenarioConfig {
            seed: 9_001,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("soak scenario generates")
}

/// The per-engine configuration both paths share: execute the best
/// handful per tick (`top_k` is also where the runtime's cached per-shard
/// rankings pay off — unchanged shards re-rank nothing), and **serial**
/// per-engine evaluation so the comparison isolates the sharding
/// architecture: the sharded path's parallelism comes from one worker per
/// shard, not from nested fan-out inside each engine. The single engine's
/// own intra-engine parallel fan-out is reported separately as
/// `single_parallel_*` for reference (it parallelizes only the strategy
/// evaluations; candidate preparation, standing-set maintenance, and
/// ranking stay serial, which is exactly the work sharding distributes).
fn config(parallel: bool) -> PipelineConfig {
    PipelineConfig {
        top_k: Some(16),
        parallel,
        ..PipelineConfig::default()
    }
}

fn pipeline() -> OpportunityPipeline {
    OpportunityPipeline::new(config(false))
}

/// Wall-clock timing for one tick reaction, cycling through the scenario
/// (whale-bursts emits only absolute `Sync`s and absolute feed moves, so
/// replaying the stream is state-safe).
fn bench_tick_reaction(c: &mut Criterion) {
    let scenario = scenario();
    let mut group = c.benchmark_group("sharded_soak/tick");
    group.sample_size(10);

    let mut feed = scenario.feed.clone();
    let mut single = StreamingEngine::new(pipeline(), scenario.pools.clone()).expect("engine");
    single.refresh(&feed).expect("cold start");
    let mut tick = 0usize;
    group.bench_with_input(BenchmarkId::new("single_engine", POOLS), &(), |b, ()| {
        b.iter(|| {
            let batch = &scenario.ticks[tick % TICKS];
            tick += 1;
            batch.apply_feed(&mut feed);
            black_box(
                single
                    .apply_events(&batch.events, &feed)
                    .unwrap()
                    .opportunities
                    .len(),
            )
        })
    });

    let mut feed = scenario.feed.clone();
    let mut runtime =
        ShardedRuntime::new(pipeline(), scenario.pools.clone(), SHARDS).expect("runtime");
    runtime.refresh(&feed).expect("cold start");
    let mut tick = 0usize;
    group.bench_with_input(BenchmarkId::new("sharded_runtime", POOLS), &(), |b, ()| {
        b.iter(|| {
            let batch = &scenario.ticks[tick % TICKS];
            tick += 1;
            batch.apply_feed(&mut feed);
            black_box(
                runtime
                    .apply_events(&batch.events, &feed)
                    .unwrap()
                    .opportunities
                    .len(),
            )
        })
    });
    group.finish();
}

fn assert_identical(merged: &[ArbitrageOpportunity], expected: &[ArbitrageOpportunity]) {
    assert_eq!(merged.len(), expected.len(), "ranking sizes diverged");
    for (m, e) in merged.iter().zip(expected) {
        assert_eq!(m.cycle.tokens(), e.cycle.tokens());
        assert_eq!(m.cycle.pools(), e.cycle.pools());
        assert_eq!(m.strategy, e.strategy);
        assert_eq!(
            m.net_profit.value().to_bits(),
            e.net_profit.value().to_bits()
        );
    }
}

/// The asserted soak pass: full replay through both paths, equivalence
/// check, JSON counters, and the ≥2× throughput gate on ≥4-core hosts.
/// Replays the full stream through one `StreamingEngine` under `config`,
/// returning (total ns, final ranking).
fn replay_single(scenario: &Scenario, config: PipelineConfig) -> (u64, Vec<ArbitrageOpportunity>) {
    let mut feed = scenario.feed.clone();
    let mut single = StreamingEngine::new(OpportunityPipeline::new(config), scenario.pools.clone())
        .expect("engine");
    single.refresh(&feed).expect("cold start");
    let start = Instant::now();
    let mut last = Vec::new();
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        last = single
            .apply_events(&batch.events, &feed)
            .expect("single tick")
            .opportunities;
    }
    (start.elapsed().as_nanos() as u64, last)
}

fn soak_replay_and_counters(_c: &mut Criterion) {
    let scenario = scenario();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let (single_total_ns, last_single) = replay_single(&scenario, config(false));
    let (single_parallel_ns, last_parallel) = replay_single(&scenario, config(true));
    assert_identical(&last_parallel, &last_single);

    let mut feed = scenario.feed.clone();
    let mut runtime =
        ShardedRuntime::new(pipeline(), scenario.pools.clone(), SHARDS).expect("runtime");
    assert_eq!(runtime.shard_count(), SHARDS, "4 domains must shard 4-way");
    runtime.refresh(&feed).expect("cold start");
    let sharded_start = Instant::now();
    let mut last_sharded = Vec::new();
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        last_sharded = runtime
            .apply_events(&batch.events, &feed)
            .expect("sharded tick")
            .opportunities;
    }
    let sharded_total_ns = sharded_start.elapsed().as_nanos() as u64;

    assert_identical(&last_sharded, &last_single);

    let stats = *runtime.stats();
    let per_shard_evaluations: Vec<usize> = runtime
        .shard_stats()
        .iter()
        .map(|s| s.cycles_evaluated)
        .collect();
    let speedup = single_total_ns as f64 / sharded_total_ns.max(1) as f64;
    let merge_ns_avg = stats.total_merge_nanos / stats.ticks.max(1) as u64;
    JsonLine::bench("sharded_soak")
        .count("pools", POOLS)
        .count("shards", SHARDS)
        .count("cores", cores)
        .count("ticks", TICKS)
        .count("live_cycles", runtime.live_cycles())
        .int("single_total_ns", single_total_ns)
        .int("single_parallel_total_ns", single_parallel_ns)
        .int("sharded_total_ns", sharded_total_ns)
        .int("single_tick_ns", single_total_ns / TICKS as u64)
        .int("sharded_tick_ns", sharded_total_ns / TICKS as u64)
        .fixed("speedup", speedup, 3)
        .counts("per_shard_evaluations", &per_shard_evaluations)
        .int("merge_ns_avg", merge_ns_avg)
        .count("merge_cache_hits", stats.merge_cache_hits)
        .count("rebuilds", stats.rebuilds)
        .text(
            "throughput_gate",
            if cores >= 4 {
                "asserted>=2x"
            } else {
                "reported-only(<4 cores)"
            },
        )
        .emit();

    assert!(
        per_shard_evaluations.iter().all(|&n| n > 0),
        "every shard must have done real evaluation work: {per_shard_evaluations:?}"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "sharded runtime must clear 2x single-engine tick throughput \
             on a >=4-core host, measured {speedup:.3}x"
        );
    }
}

criterion_group!(benches, bench_tick_reaction, soak_replay_and_counters);
criterion_main!(benches);
