//! The §VII timing comparison as a rigorous Criterion benchmark:
//! MaxMax (closed form and the paper's bisection) vs ConvexOptimization
//! (reduced and full formulations) across loop lengths.
//!
//! The paper's claim to reproduce in *shape*: MaxMax stays trivially fast
//! as loops grow; the convex solve costs a large and growing multiple
//! (their cvxpy-class solver took seconds at length 10 against a 10 s
//! block time).

use arb_bench::paper::{paper_loop, paper_prices, synthetic_loop};
use arb_convex::{Formulation, SolverOptions};
use arb_core::traditional::Method;
use arb_core::{convexopt, maxmax, maxprice};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_paper_example(c: &mut Criterion) {
    let loop_ = paper_loop();
    let prices = paper_prices();
    c.bench_function("strategies/paper/maxmax", |b| {
        b.iter(|| maxmax::evaluate(black_box(&loop_), black_box(&prices)).unwrap())
    });
    c.bench_function("strategies/paper/maxprice", |b| {
        b.iter(|| maxprice::evaluate(black_box(&loop_), black_box(&prices)).unwrap())
    });
    c.bench_function("strategies/paper/convex", |b| {
        b.iter(|| convexopt::evaluate(black_box(&loop_), black_box(&prices)).unwrap())
    });
}

fn bench_by_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategies/by_length");
    group.sample_size(30);
    for length in [3usize, 4, 6, 8, 10, 12] {
        let loop_ = synthetic_loop(length, 10_000.0, 1.15);
        let prices: Vec<f64> = (0..length).map(|i| 1.0 + i as f64).collect();
        group.bench_with_input(
            BenchmarkId::new("maxmax_closed", length),
            &length,
            |b, _| {
                b.iter(|| {
                    maxmax::evaluate_with(black_box(&loop_), &prices, Method::ClosedForm).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("maxmax_bisection", length),
            &length,
            |b, _| {
                b.iter(|| {
                    maxmax::evaluate_with(black_box(&loop_), &prices, Method::Bisection).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("convex_reduced", length),
            &length,
            |b, _| b.iter(|| convexopt::evaluate(black_box(&loop_), &prices).unwrap()),
        );
        if length <= 6 {
            let full = SolverOptions {
                formulation: Formulation::Full,
                ..SolverOptions::default()
            };
            group.bench_with_input(BenchmarkId::new("convex_full", length), &length, |b, _| {
                b.iter(|| convexopt::evaluate_with(black_box(&loop_), &prices, &full).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_paper_example, bench_by_length);
criterion_main!(benches);
