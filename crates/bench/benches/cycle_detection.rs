//! Cycle-discovery benchmarks on the paper-calibrated token graph
//! (51 tokens / 208 pools): the paper's fixed-length enumeration against
//! the related work's detectors (Bellman–Ford–Moore, Johnson).

use arb_graph::{bellman_ford, johnson, tarjan, TokenGraph};
use arb_snapshot::{Generator, SnapshotConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn paper_graph() -> TokenGraph {
    let config = SnapshotConfig::default();
    let snapshot = Generator::new(config)
        .generate()
        .expect("snapshot")
        .filtered(&config);
    TokenGraph::new(snapshot.pools().to_vec()).expect("graph")
}

fn bench_detection(c: &mut Criterion) {
    let graph = paper_graph();
    let mut group = c.benchmark_group("graph/paper_census");
    group.sample_size(20);
    group.bench_function("enumerate_len3", |b| {
        b.iter(|| black_box(graph.cycles(3).unwrap().len()))
    });
    group.bench_function("enumerate_len4", |b| {
        b.iter(|| black_box(graph.cycles(4).unwrap().len()))
    });
    group.bench_function("arbitrage_loops_len3", |b| {
        b.iter(|| black_box(graph.arbitrage_loops(3).unwrap().len()))
    });
    group.bench_function("bellman_ford_negative_cycle", |b| {
        b.iter(|| black_box(bellman_ford::find_negative_cycle(&graph).unwrap()))
    });
    group.bench_function("johnson_capped_5000", |b| {
        b.iter(|| black_box(johnson::elementary_token_cycles(&graph, 5_000).len()))
    });
    group.bench_function("tarjan_scc", |b| {
        b.iter(|| black_box(tarjan::strongly_connected_components(&graph).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
