//! Streaming vs. full-rescan reaction cost on a sparse-delta workload.
//!
//! The workload models a live market tick: a universe of hundreds of
//! pools where each block moves the reserves of only a handful. The
//! batch path pays graph construction + full cycle enumeration + full
//! re-evaluation every tick; the streaming path applies the deltas to a
//! persistent graph and re-evaluates only the cycles the touched pools
//! participate in.
//!
//! Besides wall-clock numbers, the harness runs a smoke pass that
//! *asserts* the streaming path evaluates strictly fewer cycles than a
//! full rescan would and prints the evaluations-saved counter as a JSON
//! line, so CI bench logs (`BENCH_*.json`) record the perf trajectory.

use arb_cex::feed::PriceTable;
use arb_dexsim::events::Event;
use arb_dexsim::units::to_raw;
use arb_engine::{OpportunityPipeline, PipelineConfig, StreamingEngine};
use arb_snapshot::{Generator, Snapshot, SnapshotConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Pools touched per simulated tick — sparse relative to the universe.
const DELTA_POOLS: usize = 4;
/// Distinct precomputed tick batches the benches cycle through.
const TICKS: usize = 64;

fn universe(num_pools: usize) -> (Snapshot, PriceTable) {
    let config = SnapshotConfig {
        seed: 77,
        num_tokens: (num_pools / 3).max(12),
        num_pools,
        ..SnapshotConfig::default()
    };
    let snapshot = Generator::new(config).generate().expect("snapshot");
    let mut feed = PriceTable::new();
    for (i, meta) in snapshot.tokens().iter().enumerate() {
        feed.set(arb_amm::token::TokenId::new(i as u32), meta.usd_price);
    }
    (snapshot, feed)
}

/// Deterministic sparse tick batches: each tick nudges `DELTA_POOLS`
/// pools around their base reserves (absolute `Sync` values, so state
/// oscillates instead of drifting as benches loop).
fn tick_batches(snapshot: &Snapshot) -> Vec<Vec<Event>> {
    let pools = snapshot.pools();
    (0..TICKS)
        .map(|tick| {
            (0..DELTA_POOLS)
                .map(|k| {
                    let index = (tick * 7919 + k * 104_729) % pools.len();
                    let pool = &pools[index];
                    let wobble = 1.0 + 0.015 * (((tick + k) % 5) as f64 - 2.0);
                    Event::Sync {
                        pool: arb_amm::pool::PoolId::new(index as u32),
                        reserve_a: to_raw(pool.reserve_a() * wobble),
                        reserve_b: to_raw(pool.reserve_b() / wobble),
                    }
                })
                .collect()
        })
        .collect()
}

fn pipeline() -> OpportunityPipeline {
    OpportunityPipeline::new(PipelineConfig::default())
}

fn bench_tick_reaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_vs_rescan/tick");
    group.sample_size(10);
    for num_pools in [100usize, 300] {
        let (snapshot, feed) = universe(num_pools);
        let batches = tick_batches(&snapshot);

        // Full rescan: every tick rebuilds graph + cycles + evaluations
        // (the snapshot itself is the tick's market state — rebuild cost
        // is identical whichever few pools moved).
        let rescan_pipeline = pipeline();
        group.bench_with_input(
            BenchmarkId::new("rescan_full", num_pools),
            &snapshot,
            |b, snap| {
                b.iter(|| {
                    black_box(
                        rescan_pipeline
                            .run(snap.pools().to_vec(), &feed)
                            .unwrap()
                            .opportunities
                            .len(),
                    )
                })
            },
        );

        // Streaming: one cold build outside the timed region, then each
        // iteration reacts to one sparse tick.
        let mut engine =
            StreamingEngine::new(pipeline(), snapshot.pools().to_vec()).expect("engine");
        engine.refresh(&feed).expect("cold start");
        let mut tick = 0usize;
        group.bench_with_input(
            BenchmarkId::new("streaming_delta", num_pools),
            &snapshot,
            |b, _| {
                b.iter(|| {
                    let batch = &batches[tick % TICKS];
                    tick += 1;
                    black_box(
                        engine
                            .apply_events(batch, &feed)
                            .unwrap()
                            .opportunities
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The asserted smoke pass: on a sparse-delta workload the streaming
/// engine must evaluate strictly fewer cycles than a rescan-per-tick
/// would, and the counters land in the bench output for trend tracking.
fn smoke_assert_evaluations_saved(_c: &mut Criterion) {
    let (snapshot, feed) = universe(300);
    let batches = tick_batches(&snapshot);
    let mut engine = StreamingEngine::new(pipeline(), snapshot.pools().to_vec()).expect("engine");
    engine.refresh(&feed).expect("cold start");
    let cold = *engine.stats();

    for batch in &batches {
        engine.apply_events(batch, &feed).expect("tick");
    }
    let stats = *engine.stats();
    let live_cycles = engine.index().live_cycles();
    let streamed = stats.cycles_evaluated - cold.cycles_evaluated;
    let rescan_equivalent = live_cycles * TICKS;
    assert!(
        streamed < rescan_equivalent,
        "streaming must evaluate strictly fewer cycles than {TICKS} full \
         rescans: {streamed} vs {rescan_equivalent}"
    );
    let saved = stats.evaluations_saved - cold.evaluations_saved;
    println!(
        "{{\"bench\":\"streaming_vs_rescan\",\"pools\":{},\"live_cycles\":{},\
         \"ticks\":{},\"rescan_evaluations\":{},\"streaming_evaluations\":{},\
         \"evaluations_saved\":{},\"reduction\":{:.4}}}",
        snapshot.pools().len(),
        live_cycles,
        TICKS,
        rescan_equivalent,
        streamed,
        saved,
        1.0 - streamed as f64 / rescan_equivalent as f64,
    );
}

criterion_group!(benches, bench_tick_reaction, smoke_assert_evaluations_saved);
criterion_main!(benches);
