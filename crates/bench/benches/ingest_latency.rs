//! Ingest latency: events-in → ranking-updated through the front-end.
//!
//! The question this bench answers: what does putting the `arb-ingest`
//! stage pipeline (stage → seal → journal → coalesce → bounded queue →
//! apply) between the event sources and the sharded engine *cost*, and
//! what does coalescing *buy*? Two catalog workloads at the soak
//! operating point (600 pools, intensity 2.0):
//!
//! * `degenerate-flood` — the coalescer's best case: floods of per-pool
//!   `Sync` rewrites where last-write-wins discharges most of the tick
//!   before the engine sees it;
//! * `whale-bursts` — the general case: bursty but low-redundancy
//!   traffic where coalescing is nearly a no-op and the measured number
//!   is pure pipeline overhead.
//!
//! Each workload runs three legs over the identical tick stream:
//!
//! 1. **direct** — `ShardedRuntime::apply_events` with no front-end;
//!    the correctness oracle for the final rankings;
//! 2. **live ingest** — journaled (`sync_on_commit: false`), coalescing,
//!    drained every tick. The measured latency spans `seal_block` (which
//!    journals the raw batch) through the driver's applied report — the
//!    full events-in → ranking-updated path;
//! 3. **lagged ingest** — capacity-1 queue, `CoalesceHarder`, drained
//!    every fourth tick: the degraded mode, where cross-tick merging
//!    must bound both queue depth and the engine's applied-event count.
//!
//! The pass **asserts** final-ranking bit-identity for both ingest legs
//! against the direct leg, and that the lagged leg on `degenerate-flood`
//! applies **≥2× fewer** events than arrived raw. The JSON lines feed
//! `BENCH_ingest.json`; CI's trend gate fails the build when
//! `e2e_p99_ns` grows or `coalesce_ratio` drops more than 20% against
//! the committed baseline on the flood workload.

use std::time::Instant;

use arb_bench::json::JsonLine;
use arb_engine::{OpportunityPipeline, PipelineConfig, RuntimeReport, ShardedRuntime};
use arb_ingest::{IngestConfig, IngestDriver, Ingestor, LagPolicy};
use arb_journal::{JournalConfig, JournalWriter};
use arb_workloads::{find, Scenario, ScenarioConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const POOLS: usize = 600;
const SHARDS: usize = 4;
const TICKS: usize = 48;
/// The lagged leg drains once per this many sealed blocks. Eight ticks
/// spans several of the flood's drain→revive cycles (two ticks apart),
/// so most park/revive pairs coalesce inside one merge window instead
/// of straddling a drain boundary.
const DRAIN_EVERY: usize = 8;

fn scenario(workload: &str, seed: u64) -> Scenario {
    find(workload)
        .expect("workload in catalog")
        .scenario(&ScenarioConfig {
            seed,
            ticks: TICKS,
            intensity: 2.0,
            ..ScenarioConfig::sized(POOLS)
        })
        .expect("scenario generates")
}

fn runtime(scenario: &Scenario) -> ShardedRuntime {
    ShardedRuntime::new(
        OpportunityPipeline::new(PipelineConfig::default()),
        scenario.pools.clone(),
        SHARDS,
    )
    .expect("sharded runtime")
}

/// A scratch journal directory, removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("arbloops-ingest-bench-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The direct-path oracle: final report after replaying every tick.
fn direct_final(scenario: &Scenario) -> RuntimeReport {
    let mut feed = scenario.feed.clone();
    let mut runtime = runtime(scenario);
    let mut report = runtime.refresh(&feed).expect("cold start");
    for batch in &scenario.ticks {
        batch.apply_feed(&mut feed);
        report = runtime.apply_events(&batch.events, &feed).expect("tick");
    }
    report
}

/// Bit-exact final-ranking comparison (the same oracle shape as
/// `tests/ingest_equivalence.rs`, condensed to the final tick).
fn assert_final_identical(leg: &str, got: &RuntimeReport, expected: &RuntimeReport) {
    assert_eq!(
        got.opportunities.len(),
        expected.opportunities.len(),
        "{leg}: opportunity counts diverged"
    );
    for (position, (g, e)) in got
        .opportunities
        .iter()
        .zip(&expected.opportunities)
        .enumerate()
    {
        assert_eq!(g.cycle.pools(), e.cycle.pools(), "{leg} #{position}: pools");
        assert_eq!(g.strategy, e.strategy, "{leg} #{position}: strategy");
        assert_eq!(
            g.net_profit.value().to_bits(),
            e.net_profit.value().to_bits(),
            "{leg} #{position}: net profit"
        );
    }
}

fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct LiveLeg {
    e2e_ns: Vec<u64>,
    report: RuntimeReport,
    stats: arb_ingest::IngestStats,
    raw_applied: u64,
    engine_applied: u64,
}

/// The live leg: journaled, coalescing, drained every tick. Latency is
/// measured from the instant the tick's events are fully staged to the
/// driver returning the updated rankings — seal, journal append+commit,
/// coalesce, queue hop, and engine apply all inside the window.
fn run_live(scenario: &Scenario, tag: &str) -> LiveLeg {
    let scratch = Scratch::new(tag);
    let writer = JournalWriter::open(
        &scratch.0,
        JournalConfig {
            sync_on_commit: false,
            ..JournalConfig::default()
        },
    )
    .expect("journal opens");
    let mut ingestor = Ingestor::new(IngestConfig::default())
        .with_journal(std::sync::Arc::new(std::sync::Mutex::new(writer)));
    let feed_source = ingestor.register_source("cex-feed");
    let chain_source = ingestor.register_source("dexsim");
    let mut driver = IngestDriver::new(runtime(scenario), scenario.feed.clone(), ingestor.handle());

    ingestor.seal_block().expect("cold seal");
    let mut report = driver
        .try_step()
        .expect("cold apply")
        .expect("cold batch queued");

    let mut e2e_ns = Vec::with_capacity(scenario.ticks.len());
    for batch in &scenario.ticks {
        ingestor
            .offer_feed_moves(feed_source, &batch.feed_moves)
            .expect("feed staged");
        ingestor
            .offer(chain_source, batch.events.iter().copied())
            .expect("chain staged");
        let start = Instant::now();
        ingestor.seal_block().expect("seal");
        report = driver
            .try_step()
            .expect("tick applies")
            .expect("one batch per tick");
        e2e_ns.push(start.elapsed().as_nanos() as u64);
        black_box(report.opportunities.len());
    }
    LiveLeg {
        e2e_ns,
        report,
        stats: ingestor.stats(),
        raw_applied: driver.raw_events_applied(),
        engine_applied: driver.chain_events_applied() + driver.feed_updates_applied(),
    }
}

struct LaggedLeg {
    report: RuntimeReport,
    stats: arb_ingest::IngestStats,
    raw_applied: u64,
    engine_applied: u64,
}

/// The degraded-mode leg: capacity 1 + `CoalesceHarder`, consumer four
/// ticks behind. No journal — this leg isolates what cross-tick merging
/// saves the engine.
fn run_lagged(scenario: &Scenario) -> LaggedLeg {
    let mut ingestor = Ingestor::new(IngestConfig {
        queue_capacity: 1,
        lag_policy: LagPolicy::CoalesceHarder,
        coalesce: true,
        ..IngestConfig::default()
    });
    let feed_source = ingestor.register_source("cex-feed");
    let chain_source = ingestor.register_source("dexsim");
    let mut driver = IngestDriver::new(runtime(scenario), scenario.feed.clone(), ingestor.handle());

    ingestor.seal_block().expect("cold seal");
    let mut report = driver.drain().expect("cold apply");
    for (tick, batch) in scenario.ticks.iter().enumerate() {
        ingestor
            .offer_feed_moves(feed_source, &batch.feed_moves)
            .expect("feed staged");
        ingestor
            .offer(chain_source, batch.events.iter().copied())
            .expect("chain staged");
        ingestor.seal_block().expect("degraded seal never blocks");
        if tick % DRAIN_EVERY == DRAIN_EVERY - 1 {
            if let Some(r) = driver.drain().expect("merged batches apply") {
                report = Some(r);
            }
        }
    }
    ingestor.close();
    if let Some(r) = driver.drain().expect("tail applies") {
        report = Some(r);
    }
    LaggedLeg {
        report: report.expect("at least one applied batch"),
        stats: ingestor.stats(),
        raw_applied: driver.raw_events_applied(),
        engine_applied: driver.chain_events_applied() + driver.feed_updates_applied(),
    }
}

fn run_workload(workload: &'static str, seed: u64) {
    let scenario = scenario(workload, seed);
    let expected = direct_final(&scenario);
    let live = run_live(&scenario, workload);
    let lagged = run_lagged(&scenario);

    assert_final_identical(&format!("{workload}/live"), &live.report, &expected);
    assert_final_identical(&format!("{workload}/lagged"), &lagged.report, &expected);

    // Flow conservation on both legs: nothing dropped, only coalesced.
    for (leg, stats) in [("live", &live.stats), ("lagged", &lagged.stats)] {
        assert_eq!(
            stats.events_in,
            stats.events_out + stats.coalesced_away,
            "{workload}/{leg}: flow conservation: {stats}"
        );
    }

    let e2e_p50 = percentile_ns(&live.e2e_ns, 0.50);
    let e2e_p99 = percentile_ns(&live.e2e_ns, 0.99);
    // What degraded-mode coalescing saves the engine: raw events that
    // arrived vs events the engine actually applied.
    let coalesce_ratio = lagged.raw_applied as f64 / lagged.engine_applied.max(1) as f64;
    let live_ratio = live.raw_applied as f64 / live.engine_applied.max(1) as f64;

    JsonLine::bench("ingest_latency")
        .text("workload", workload)
        .count("pools", POOLS)
        .count("shards", SHARDS)
        .count("ticks", TICKS)
        .int("e2e_p50_ns", e2e_p50)
        .int("e2e_p99_ns", e2e_p99)
        .int("events_in", live.stats.events_in)
        .int("events_applied_live", live.engine_applied)
        .int("events_applied_lagged", lagged.engine_applied)
        .fixed("live_coalesce_ratio", live_ratio, 2)
        .fixed("coalesce_ratio", coalesce_ratio, 2)
        .count("depth_high_water", lagged.stats.depth_high_water)
        .int("degraded_merges", lagged.stats.degraded_merges)
        .emit();

    if workload == "degenerate-flood" {
        assert!(
            coalesce_ratio >= 2.0,
            "{workload}: degraded-mode coalescing must apply >=2x fewer \
             events than arrived raw, measured {coalesce_ratio:.2}x \
             ({} raw vs {} applied)",
            lagged.raw_applied,
            lagged.engine_applied
        );
    }
}

/// The asserted pass over both workloads (JSON lines + gates).
fn ingest_pass(_c: &mut Criterion) {
    run_workload("degenerate-flood", 13_001);
    run_workload("whale-bursts", 13_002);
}

/// Wall-clock criterion group for the seal hot path alone (stage +
/// coalesce + enqueue, no journal, no engine) on a flood-shaped tick.
fn bench_seal_path(c: &mut Criterion) {
    let scenario = scenario("degenerate-flood", 13_003);
    let batch = &scenario.ticks[0];
    let mut group = c.benchmark_group("ingest_latency/seal");
    group.bench_function("stage_seal_pop", |b| {
        let mut ingestor = Ingestor::new(IngestConfig::default());
        let feed_source = ingestor.register_source("cex-feed");
        let chain_source = ingestor.register_source("dexsim");
        let handle = ingestor.handle();
        b.iter(|| {
            ingestor
                .offer_feed_moves(feed_source, &batch.feed_moves)
                .expect("feed staged");
            ingestor
                .offer(chain_source, batch.events.iter().copied())
                .expect("chain staged");
            ingestor.seal_block().expect("seal");
            black_box(handle.try_pop().expect("sealed batch").events.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_seal_path, ingest_pass);
criterion_main!(benches);
