//! Chain-simulator throughput: swap execution, flash bundles, block
//! mining, and the event-log codec.

use arb_amm::fee::FeeRate;
use arb_amm::token::TokenId;
use arb_dexsim::chain::Chain;
use arb_dexsim::events::{Event, EventLog};
use arb_dexsim::tx::{BundleStep, Transaction};
use arb_dexsim::units::to_raw;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn t(i: u32) -> TokenId {
    TokenId::new(i)
}

fn bench_swaps(c: &mut Criterion) {
    c.bench_function("chain/mine_block_100_swaps", |b| {
        b.iter_with_setup(
            || {
                let mut chain = Chain::new();
                let pool = chain
                    .add_pool(
                        t(0),
                        t(1),
                        to_raw(1_000_000.0),
                        to_raw(1_000_000.0),
                        FeeRate::UNISWAP_V2,
                    )
                    .unwrap();
                let alice = chain.create_account();
                chain.mint(alice, t(0), to_raw(1_000_000.0));
                for _ in 0..100 {
                    chain.submit(Transaction::Swap {
                        account: alice,
                        pool,
                        token_in: t(0),
                        amount_in: to_raw(10.0),
                        min_out: 0,
                    });
                }
                chain
            },
            |mut chain| {
                black_box(chain.mine_block().gas_used);
            },
        )
    });
}

fn bench_flash_bundle(c: &mut Criterion) {
    c.bench_function("chain/flash_bundle_3hop", |b| {
        b.iter_with_setup(
            || {
                let mut chain = Chain::new();
                let fee = FeeRate::UNISWAP_V2;
                let p0 = chain
                    .add_pool(t(0), t(1), to_raw(100.0), to_raw(200.0), fee)
                    .unwrap();
                let p1 = chain
                    .add_pool(t(1), t(2), to_raw(300.0), to_raw(200.0), fee)
                    .unwrap();
                let p2 = chain
                    .add_pool(t(2), t(0), to_raw(200.0), to_raw(400.0), fee)
                    .unwrap();
                let bot = chain.create_account();
                let in0 = to_raw(27.0);
                let out0 = chain
                    .state()
                    .pool(p0)
                    .unwrap()
                    .raw()
                    .quote(true, in0)
                    .unwrap();
                let out1 = chain
                    .state()
                    .pool(p1)
                    .unwrap()
                    .raw()
                    .quote(true, out0)
                    .unwrap();
                chain.submit(Transaction::FlashBundle {
                    account: bot,
                    steps: vec![
                        BundleStep {
                            pool: p0,
                            token_in: t(0),
                            amount_in: in0,
                        },
                        BundleStep {
                            pool: p1,
                            token_in: t(1),
                            amount_in: out0,
                        },
                        BundleStep {
                            pool: p2,
                            token_in: t(2),
                            amount_in: out1,
                        },
                    ],
                });
                chain
            },
            |mut chain| {
                let block = chain.mine_block();
                assert!(block.receipts[0].success);
                black_box(block.gas_used);
            },
        )
    });
}

fn bench_event_codec(c: &mut Criterion) {
    let events: Vec<Event> = (0..1_000)
        .map(|i| Event::Sync {
            pool: arb_amm::pool::PoolId::new(i % 50),
            reserve_a: 1_000_000 + i as u128,
            reserve_b: 2_000_000 - i as u128,
        })
        .collect();
    c.bench_function("chain/event_log_encode_1000", |b| {
        b.iter(|| {
            let mut log = EventLog::new();
            for e in &events {
                log.push(*e);
            }
            black_box(log.encoded_size())
        })
    });
    let mut log = EventLog::new();
    for e in &events {
        log.push(*e);
    }
    c.bench_function("chain/event_log_decode_1000", |b| {
        b.iter(|| black_box(log.decode_all().len()))
    });
}

criterion_group!(benches, bench_swaps, bench_flash_bundle, bench_event_codec);
criterion_main!(benches);
