//! Chaos-soak pass: the five catalog workloads driven through the full
//! journaled ingest pipeline under the standard all-sites fault plan
//! (source outages, garbage feed data, journal write/fsync/torn/ENOSPC
//! failures, a slow shard, one mid-tick panic per run).
//!
//! The pass **asserts** that every workload reconverges — the post-fault
//! final ranking is bit-identical to a never-faulted oracle's — and
//! that the quiet tail drains the journal backlog to zero. What it
//! *measures* is the cost of a supervised recovery: the wall time from
//! catching a shard panic to the rebuilt pipeline being live again
//! (journal backlog flush + snapshot restore + replay + rewire).
//!
//! The JSON lines feed `BENCH_chaos.json`; CI's trend gate fails the
//! build when the aggregate `recovery_p99_ns` on the `workload=all` row
//! grows more than 50% over the committed baseline.

use std::path::PathBuf;

use arb_bench::json::JsonLine;
use arb_chaos::{percentile, run_soak, standard_plan, SoakConfig, SoakOutcome};
use arb_workloads::{find, ScenarioConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const POOLS: usize = 40;
const TOKENS: usize = 20;
const DOMAINS: usize = 4;
const TICKS: usize = 32;
/// Seeds per workload: more supervised recoveries per run means a less
/// noisy p99 for the trend gate.
const SEEDS_PER_WORKLOAD: u64 = 3;

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("arbloops-chaos-bench-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn soak(workload: &str, seed: u64) -> SoakOutcome {
    let spec = find(workload).expect("workload in catalog");
    let scratch = Scratch::new(&format!("{workload}-{seed}"));
    let config = SoakConfig {
        scenario: ScenarioConfig {
            seed,
            domains: DOMAINS,
            num_tokens: TOKENS,
            num_pools: POOLS,
            ticks: TICKS,
            intensity: 1.0,
        },
        ..SoakConfig::new(&scratch.0)
    };
    let plan = standard_plan(seed, TICKS as u64);
    run_soak(spec, &config, plan, None).expect("soak completes")
}

/// The asserted pass over the whole catalog (JSON lines + gates).
fn chaos_pass(_c: &mut Criterion) {
    let workloads = [
        ("steady-sparse", 21_001u64),
        ("whale-bursts", 21_002),
        ("fee-regime-shift", 21_003),
        ("pool-churn", 21_004),
        ("degenerate-flood", 21_005),
    ];

    let mut all_recovery_ns: Vec<u64> = Vec::new();
    let mut total_faults = 0usize;
    let mut total_recoveries = 0u64;

    for (workload, seed_base) in workloads {
        let mut workload_recovery_ns: Vec<u64> = Vec::new();
        let mut faults = 0usize;
        let mut recoveries = 0u64;
        for run in 0..SEEDS_PER_WORKLOAD {
            let outcome = soak(workload, seed_base + run);
            assert!(
                outcome.reconverged(),
                "{workload} seed {}: post-fault ranking diverged from the \
                 never-faulted oracle ({:#018x} vs {:#018x})",
                seed_base + run,
                outcome.fingerprint,
                outcome.oracle_fingerprint,
            );
            assert!(
                outcome.recoveries >= 1,
                "{workload} seed {}: the panic window must force a recovery",
                seed_base + run,
            );
            assert_eq!(
                outcome.journal_pending_at_end,
                0,
                "{workload} seed {}: the quiet tail must drain the journal",
                seed_base + run,
            );
            faults += outcome.faults.len();
            recoveries += u64::from(outcome.recoveries);
            workload_recovery_ns.extend(&outcome.recovery_wall_ns);
        }

        JsonLine::bench("chaos_soak")
            .text("workload", workload)
            .count("pools", POOLS)
            .count("ticks", TICKS)
            .count("runs", SEEDS_PER_WORKLOAD as usize)
            .count("faults", faults)
            .int("recoveries", recoveries)
            .int("recovery_p50_ns", percentile(&workload_recovery_ns, 50))
            .int("recovery_p99_ns", percentile(&workload_recovery_ns, 99))
            .text("reconverged", "true")
            .emit();

        total_faults += faults;
        total_recoveries += recoveries;
        all_recovery_ns.extend(workload_recovery_ns);
    }

    // The aggregate row CI gates on: recovery p99 across the catalog.
    JsonLine::bench("chaos_soak")
        .text("workload", "all")
        .count("pools", POOLS)
        .count("ticks", TICKS)
        .count("runs", workloads.len() * SEEDS_PER_WORKLOAD as usize)
        .count("faults", total_faults)
        .int("recoveries", total_recoveries)
        .int("recovery_p50_ns", percentile(&all_recovery_ns, 50))
        .int("recovery_p99_ns", percentile(&all_recovery_ns, 99))
        .text("reconverged", "true")
        .emit();
}

criterion_group!(benches, chaos_pass);
criterion_main!(benches);
