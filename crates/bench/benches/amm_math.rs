//! Micro-benchmarks of the CPMM math layer: quotes, exact integer swaps,
//! and Möbius chain composition (the closed-form machinery every strategy
//! rests on).

use arb_amm::curve::SwapCurve;
use arb_amm::exact;
use arb_amm::fee::FeeRate;
use arb_amm::mobius::Mobius;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_quotes(c: &mut Criterion) {
    let curve = SwapCurve::new(1_000_000.0, 2_000_000.0, FeeRate::UNISWAP_V2).unwrap();
    c.bench_function("amm/float_quote", |b| {
        b.iter(|| black_box(curve.amount_out(black_box(1234.5))))
    });
    c.bench_function("amm/exact_quote", |b| {
        b.iter(|| {
            exact::get_amount_out(
                black_box(1_234_500_000),
                1_000_000_000_000,
                2_000_000_000_000,
                FeeRate::UNISWAP_V2,
            )
            .unwrap()
        })
    });
    c.bench_function("amm/derivative", |b| {
        b.iter(|| black_box(curve.derivative(black_box(1234.5))))
    });
}

fn bench_mobius(c: &mut Criterion) {
    let mut group = c.benchmark_group("amm/mobius_chain");
    for n in [3usize, 6, 10, 16] {
        let hops: Vec<Mobius> = (0..n)
            .map(|i| {
                SwapCurve::new(1_000.0 + i as f64, 2_000.0 - i as f64, FeeRate::UNISWAP_V2)
                    .unwrap()
                    .to_mobius()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("compose", n), &hops, |b, hops| {
            b.iter(|| black_box(Mobius::chain(black_box(hops))))
        });
        let chain = Mobius::chain(&hops);
        group.bench_with_input(BenchmarkId::new("optimal_input", n), &chain, |b, chain| {
            b.iter(|| black_box(chain.optimal_input()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quotes_entry, bench_mobius);
criterion_main!(benches);

fn bench_quotes_entry(c: &mut Criterion) {
    bench_quotes(c);
}
