//! Regeneration of every figure in the paper.
//!
//! Each `figN` function computes the figure's data, writes `results/figN.csv`
//! (and `.txt` with an ASCII rendering), and returns a human-readable
//! summary. The `run_all` binary calls everything; individual binaries wrap
//! single functions.

use std::io;
use std::path::PathBuf;

use arb_convex::SolverOptions;
use arb_core::report::{CompareOptions, LoopComparison};
use arb_core::traditional::{self, Method};
use arb_core::{convexopt, maxmax};
use arb_snapshot::SnapshotConfig;

use crate::ascii::{Chart, Series};
use crate::csvout::{write_csv, write_text};
use crate::empirical::{summarize, EmpiricalStudy};
use crate::paper::{paper_loop, paper_prices};
use crate::results_dir;
use crate::timing;

fn out_path(name: &str) -> PathBuf {
    results_dir().join(name)
}

/// Fig. 1 — the profit curve `Δx_out − Δx_in` vs `Δx_in` for the §V loop
/// entered at token X; the maximum sits where `dΔx_out/dΔx_in = 1`.
pub fn fig1() -> io::Result<String> {
    let loop_ = paper_loop();
    let hops = loop_.hops();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut x = 0.0;
    while x <= 30.0 {
        let profit = traditional::chain_output(hops, x) - x;
        let derivative = traditional::chain_derivative(hops, x);
        rows.push(vec![x, profit, derivative]);
        points.push((x, profit));
        x += 0.25;
    }
    let (opt_input, opt_profit) =
        traditional::optimal_input(hops, Method::ClosedForm).expect("closed form");
    write_csv(
        &out_path("fig1_profit_curve.csv"),
        &["input_x", "profit_x", "derivative"],
        &rows,
    )?;
    let chart = Chart {
        title: "Fig.1: profit vs input (X rotation); optimum at dOut/dIn = 1".into(),
        x_label: "Δx_in".into(),
        y_label: "Δx_out − Δx_in".into(),
        ..Chart::default()
    }
    .render(&[
        Series {
            label: "profit",
            marker: '*',
            points,
        },
        Series {
            label: "optimum",
            marker: 'O',
            points: vec![(opt_input, opt_profit)],
        },
    ]);
    write_text(&out_path("fig1_profit_curve.txt"), &chart)?;
    Ok(format!(
        "FIG1: optimum at Δx_in = {opt_input:.2} (paper: 27.0), profit {opt_profit:.2} X (paper: ~16.8)\n{chart}"
    ))
}

/// §V worked example — every strategy's numbers side by side with the
/// paper's reported values.
pub fn exv() -> io::Result<String> {
    let loop_ = paper_loop();
    let prices = paper_prices();
    let mm = maxmax::evaluate(&loop_, &prices).expect("maxmax");
    let cv = convexopt::evaluate(&loop_, &prices).expect("convex");
    let mut out = String::from("EX-V: the paper's worked example\n");
    let paper_vals = [(27.0, 16.8, 33.7), (31.5, 19.7, 201.1), (16.4, 10.3, 205.6)];
    let names = ["X", "Y", "Z"];
    let mut rows = Vec::new();
    for (rot, (p_in, p_prof, p_usd)) in mm.rotations.iter().zip(paper_vals) {
        out.push_str(&format!(
            "  start {}: input {:>7.2} (paper {:>5.1})  profit {:>7.2} {} (paper {:>5.1})  monetized {:>8.2}$ (paper {:>6.1}$)\n",
            names[rot.start], rot.optimal_input, p_in, rot.token_profit,
            names[rot.start], p_prof, rot.monetized.value(), p_usd
        ));
        rows.push(vec![
            rot.start as f64,
            rot.optimal_input,
            rot.token_profit,
            rot.monetized.value(),
        ]);
    }
    out.push_str(&format!(
        "  MaxMax:  {:.2}$ (paper 205.6$)   ConvexOpt: {:.2}$ (paper 206.1$)\n",
        mm.best.monetized.value(),
        cv.monetized.value()
    ));
    out.push_str("  Convex plan flows (paper: 31.3 X→47.6 Y, 42.6 Y→24.8 Z, 17.1 Z→31.3 X):\n");
    for (j, f) in cv.plan.flows().iter().enumerate() {
        out.push_str(&format!(
            "    hop {j}: in {:>7.2} → out {:>7.2}\n",
            f.amount_in, f.amount_out
        ));
        rows.push(vec![10.0 + j as f64, f.amount_in, f.amount_out, 0.0]);
    }
    out.push_str(&format!(
        "  Convex profit by token: X {:.2}, Y {:.2} (paper ~5), Z {:.2} (paper ~7.7)\n",
        cv.plan.token_profits()[0],
        cv.plan.token_profits()[1],
        cv.plan.token_profits()[2]
    ));
    write_csv(
        &out_path("exv_worked_example.csv"),
        &["row_kind", "a", "b", "c"],
        &rows,
    )?;
    write_text(&out_path("exv_worked_example.txt"), &out)?;
    Ok(out)
}

/// The Px sweep shared by Figs. 2–4: Px ∈ [0, 20] with step 0.2.
fn px_sweep() -> Vec<f64> {
    (0..=100).map(|i| i as f64 * 0.2).collect()
}

/// Fig. 2 — monetized profit per rotation + the MaxMax envelope as Px
/// varies.
pub fn fig2() -> io::Result<String> {
    let loop_ = paper_loop();
    let mut rows = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    let mut crossovers = 0usize;
    let mut last_winner = usize::MAX;
    for px in px_sweep() {
        let prices = [px, 10.2, 20.0];
        let mm = maxmax::evaluate(&loop_, &prices).expect("maxmax");
        let vals: Vec<f64> = mm.rotations.iter().map(|r| r.monetized.value()).collect();
        rows.push(vec![
            px,
            vals[0],
            vals[1],
            vals[2],
            mm.best.monetized.value(),
        ]);
        for (i, v) in vals.iter().enumerate() {
            series[i].push((px, *v));
        }
        series[3].push((px, mm.best.monetized.value()));
        if mm.best.start != last_winner {
            if last_winner != usize::MAX {
                crossovers += 1;
            }
            last_winner = mm.best.start;
        }
    }
    write_csv(
        &out_path("fig2_rotations_vs_px.csv"),
        &["px", "start_x", "start_y", "start_z", "maxmax"],
        &rows,
    )?;
    let chart = Chart {
        title: "Fig.2: monetized profit vs Px (rotations + MaxMax envelope)".into(),
        x_label: "Px ($)".into(),
        y_label: "monetized profit ($)".into(),
        ..Chart::default()
    }
    .render(&[
        Series {
            label: "start X",
            marker: 'x',
            points: series[0].clone(),
        },
        Series {
            label: "start Y",
            marker: 'y',
            points: series[1].clone(),
        },
        Series {
            label: "start Z",
            marker: 'z',
            points: series[2].clone(),
        },
        Series {
            label: "MaxMax envelope",
            marker: '#',
            points: series[3].clone(),
        },
    ]);
    write_text(&out_path("fig2_rotations_vs_px.txt"), &chart)?;
    Ok(format!(
        "FIG2: MaxMax is the pointwise max of all rotations across the sweep; \
         winning rotation changes {crossovers} time(s) (paper: X overtakes Z at high Px)\n{chart}"
    ))
}

/// Fig. 3 — MaxMax vs ConvexOptimization across the Px sweep.
pub fn fig3() -> io::Result<String> {
    let loop_ = paper_loop();
    let mut rows = Vec::new();
    let mut mm_pts = Vec::new();
    let mut cv_pts = Vec::new();
    let mut max_gap = 0.0f64;
    for px in px_sweep() {
        let prices = [px, 10.2, 20.0];
        let mm = maxmax::evaluate(&loop_, &prices).expect("maxmax");
        let cv = convexopt::evaluate(&loop_, &prices).expect("convex");
        rows.push(vec![px, mm.best.monetized.value(), cv.monetized.value()]);
        mm_pts.push((px, mm.best.monetized.value()));
        cv_pts.push((px, cv.monetized.value()));
        max_gap = max_gap.max(cv.monetized.value() - mm.best.monetized.value());
    }
    write_csv(
        &out_path("fig3_convex_vs_maxmax.csv"),
        &["px", "maxmax", "convex"],
        &rows,
    )?;
    let chart = Chart {
        title: "Fig.3: ConvexOpt (upper) vs MaxMax (lower) across Px".into(),
        x_label: "Px ($)".into(),
        y_label: "monetized profit ($)".into(),
        ..Chart::default()
    }
    .render(&[
        Series {
            label: "MaxMax",
            marker: 'm',
            points: mm_pts,
        },
        Series {
            label: "ConvexOpt",
            marker: 'C',
            points: cv_pts,
        },
    ]);
    write_text(&out_path("fig3_convex_vs_maxmax.txt"), &chart)?;
    Ok(format!(
        "FIG3: ConvexOpt ≥ MaxMax at every Px; largest gap {max_gap:.2}$ (paper: small but positive)\n{chart}"
    ))
}

/// Fig. 4 — ConvexOpt profit in *token units* (X, Y, Z) across the sweep;
/// solutions cluster at a handful of vertices.
pub fn fig4() -> io::Result<String> {
    let loop_ = paper_loop();
    let mut rows = Vec::new();
    let mut xy = Vec::new();
    let mut xz = Vec::new();
    let mut clusters = std::collections::HashSet::new();
    for px in px_sweep() {
        let prices = [px, 10.2, 20.0];
        let cv = convexopt::evaluate(&loop_, &prices).expect("convex");
        let p = cv.plan.token_profits();
        rows.push(vec![px, p[0], p[1], p[2]]);
        xy.push((p[0], p[1]));
        xz.push((p[0], p[2]));
        clusters.insert((
            (p[0] * 2.0).round() as i64,
            (p[1] * 2.0).round() as i64,
            (p[2] * 2.0).round() as i64,
        ));
    }
    write_csv(
        &out_path("fig4_token_profit_scatter.csv"),
        &["px", "profit_x", "profit_y", "profit_z"],
        &rows,
    )?;
    let chart = Chart {
        title: "Fig.4 (projection): convex profit in token units".into(),
        x_label: "profit in X".into(),
        y_label: "profit in Y (marker y) / Z (marker z)".into(),
        ..Chart::default()
    }
    .render(&[
        Series {
            label: "(X,Y)",
            marker: 'y',
            points: xy,
        },
        Series {
            label: "(X,Z)",
            marker: 'z',
            points: xz,
        },
    ]);
    write_text(&out_path("fig4_token_profit_scatter.txt"), &chart)?;
    Ok(format!(
        "FIG4: optimal token-profit vectors cluster at {} distinct half-unit positions (paper: ~6 positions)\n{chart}",
        clusters.len()
    ))
}

/// Shared empirical dominance scatter: extracts `(x, y)` pairs from rows.
fn dominance_scatter(
    name: &str,
    title: &str,
    rows: &[LoopComparison],
    extract: impl Fn(&LoopComparison) -> Vec<(f64, f64)>,
    x_label: &str,
    y_label: &str,
) -> io::Result<(String, usize, usize)> {
    let mut pts = Vec::new();
    let mut below = 0usize;
    for row in rows {
        for (x, y) in extract(row) {
            if y < x - 1e-9 * (1.0 + x) {
                below += 1;
            }
            pts.push((x, y));
        }
    }
    let csv_rows: Vec<Vec<f64>> = pts.iter().map(|(x, y)| vec![*x, *y]).collect();
    write_csv(
        &out_path(&format!("{name}.csv")),
        &[x_label, y_label],
        &csv_rows,
    )?;
    let total = pts.len();
    let chart = Chart {
        title: title.into(),
        x_label: x_label.into(),
        y_label: y_label.into(),
        diagonal: true,
        ..Chart::default()
    }
    .render(&[Series {
        label: "loops",
        marker: 'o',
        points: pts,
    }]);
    write_text(&out_path(&format!("{name}.txt")), &chart)?;
    Ok((chart, below, total))
}

/// Fig. 5 — Traditional (every rotation) vs MaxMax on the empirical census.
pub fn fig5(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(3, 8);
    let (chart, below, total) = dominance_scatter(
        "fig5_trad_vs_maxmax",
        "Fig.5: Traditional rotations vs MaxMax (all on/below the 45° line)",
        &rows,
        |row| {
            row.traditional
                .iter()
                .map(|t| (row.maxmax.value(), t.value()))
                .collect()
        },
        "maxmax_usd",
        "traditional_usd",
    )?;
    Ok(format!(
        "FIG5: {total} rotation points over {} loops; {below} strictly below the diagonal, none above (paper: all under 45° line)\n{chart}",
        rows.len()
    ))
}

/// Fig. 6 — MaxPrice vs MaxMax on the empirical census.
pub fn fig6(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(3, 8);
    let (chart, below, total) = dominance_scatter(
        "fig6_maxprice_vs_maxmax",
        "Fig.6: MaxPrice vs MaxMax (points below the line = heuristic failures)",
        &rows,
        |row| vec![(row.maxmax.value(), row.maxprice.value())],
        "maxmax_usd",
        "maxprice_usd",
    )?;
    Ok(format!(
        "FIG6: {below}/{total} loops have MaxPrice strictly below MaxMax — the heuristic is unreliable (paper's conclusion)\n{chart}"
    ))
}

/// Fig. 7 — ConvexOpt vs MaxMax on the empirical census (≈ the diagonal).
pub fn fig7(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(3, 8);
    let (chart, below, total) = dominance_scatter(
        "fig7_convex_vs_maxmax_empirical",
        "Fig.7: MaxMax vs ConvexOpt (all points on/above the 45° line)",
        &rows,
        |row| vec![(row.convex.value(), row.maxmax.value())],
        "convex_usd",
        "maxmax_usd",
    )?;
    let summary = summarize(&rows);
    Ok(format!(
        "FIG7: {total} loops; maxmax exceeds convex on {below} (tolerance-level only); \
         mean relative convex gain {:+.3e} (paper: nearly identical)\n{chart}",
        summary.mean_convex_gain
    ))
}

/// Fig. 8 — per-token net profits: MaxMax vs ConvexOpt points overlap.
pub fn fig8(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(3, 8);
    let mut csv_rows = Vec::new();
    let mut pts = Vec::new();
    let mut mean_abs_diff = 0.0;
    let mut count = 0usize;
    for (loop_id, row) in rows.iter().enumerate() {
        for pos in 0..row.maxmax_token_profits.len() {
            let mm = row.maxmax_token_profits[pos];
            let cv = row.convex_token_profits[pos];
            csv_rows.push(vec![loop_id as f64, pos as f64, mm, cv]);
            pts.push((mm, cv));
            mean_abs_diff += (mm - cv).abs();
            count += 1;
        }
    }
    if count > 0 {
        mean_abs_diff /= count as f64;
    }
    write_csv(
        &out_path("fig8_token_overlap.csv"),
        &["loop", "token_pos", "maxmax_profit", "convex_profit"],
        &csv_rows,
    )?;
    let chart = Chart {
        title: "Fig.8: per-token profit, MaxMax (x) vs ConvexOpt (y)".into(),
        x_label: "maxmax token profit".into(),
        y_label: "convex token profit".into(),
        diagonal: true,
        ..Chart::default()
    }
    .render(&[Series {
        label: "token positions",
        marker: '+',
        points: pts,
    }]);
    write_text(&out_path("fig8_token_overlap.txt"), &chart)?;
    Ok(format!(
        "FIG8: mean |convex − maxmax| per token = {mean_abs_diff:.4} units over {count} positions (paper: overlapping points)\n{chart}"
    ))
}

/// Fig. 9 — length-4 loops: Traditional rotations vs ConvexOpt.
pub fn fig9(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(4, 8);
    let (chart, below, total) = dominance_scatter(
        "fig9_len4_trad",
        "Fig.9: length-4 loops — Traditional vs ConvexOpt",
        &rows,
        |row| {
            row.traditional
                .iter()
                .map(|t| (row.convex.value(), t.value()))
                .collect()
        },
        "convex_usd",
        "traditional_usd",
    )?;
    Ok(format!(
        "FIG9: {total} rotation points over {} length-4 loops; {below} strictly below the diagonal, none above\n{chart}",
        rows.len()
    ))
}

/// Fig. 10 — length-4 loops: MaxMax vs ConvexOpt.
pub fn fig10(study: &EmpiricalStudy) -> io::Result<String> {
    let rows = study.comparisons(4, 8);
    let (chart, below, total) = dominance_scatter(
        "fig10_len4_maxmax",
        "Fig.10: length-4 loops — MaxMax vs ConvexOpt (≈ diagonal)",
        &rows,
        |row| vec![(row.convex.value(), row.maxmax.value())],
        "convex_usd",
        "maxmax_usd",
    )?;
    let summary = summarize(&rows);
    Ok(format!(
        "FIG10: {total} length-4 loops; maxmax above convex on {below} (tolerance only); mean relative gain {:+.3e}\n{chart}",
        summary.mean_convex_gain
    ))
}

/// §VII timing table.
pub fn ttime() -> io::Result<String> {
    let rows = timing::measure(&[3, 4, 5, 6, 8, 10, 12], 25);
    let csv_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.length as f64,
                r.maxmax_closed_ns,
                r.maxmax_bisect_ns,
                r.convex_reduced_ns,
                r.convex_full_ns,
            ]
        })
        .collect();
    write_csv(
        &out_path("ttime_timing_table.csv"),
        &[
            "length",
            "maxmax_closed_ns",
            "maxmax_bisect_ns",
            "convex_reduced_ns",
            "convex_full_ns",
        ],
        &csv_rows,
    )?;
    let table = timing::render_table(&rows);
    write_text(&out_path("ttime_timing_table.txt"), &table)?;
    Ok(format!(
        "T-TIME: ConvexOpt costs a growing multiple of MaxMax with loop length \
         (paper: ms vs seconds at length 10 — ordering reproduced, absolute times far faster in compiled Rust)\n{table}"
    ))
}

/// The default empirical study used by Figs. 5–10 (paper-calibrated
/// snapshot).
pub fn default_study() -> EmpiricalStudy {
    EmpiricalStudy::build(&SnapshotConfig::default())
}

/// Extra context printed by `run_all`: the census itself.
pub fn census_summary(study: &EmpiricalStudy) -> String {
    let arb3 = study.graph.arbitrage_loops(3).expect("cycles").len();
    let arb4 = study.graph.arbitrage_loops(4).expect("cycles").len();
    format!(
        "CENSUS: {} tokens, {} pools after filters (paper: 51/208); \
         {} length-3 arbitrage loops (paper: 123); {} length-4 loops\n",
        study.snapshot.token_count(),
        study.graph.pool_count(),
        arb3,
        arb4
    )
}

/// Options snapshot used for §VI comparisons (kept here so binaries and
/// tests agree).
pub fn compare_options() -> CompareOptions {
    CompareOptions {
        method: Method::Bisection, // the paper's own optimizer
        convex: SolverOptions::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reports_paper_optimum() {
        let summary = fig1().unwrap();
        assert!(summary.contains("FIG1"));
        assert!(summary.contains("27."), "{summary}");
    }

    #[test]
    fn exv_matches_paper_numbers() {
        let summary = exv().unwrap();
        assert!(summary.contains("205.6"));
        assert!(summary.contains("206.1"));
    }
}
