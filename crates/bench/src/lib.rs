//! Benchmark and figure-regeneration harness.
//!
//! Every evaluation artifact of the paper has a regenerating binary in
//! `src/bin/` (see `DESIGN.md` §4 for the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_profit_curve` | Fig. 1 — profit vs input, optimum at `F' = 1` |
//! | `exv_worked_example` | §V worked example (all strategy numbers) |
//! | `fig2_rotations_vs_px` | Fig. 2 — rotations + MaxMax envelope vs Px |
//! | `fig3_convex_vs_maxmax` | Fig. 3 — ConvexOpt vs MaxMax vs Px |
//! | `fig4_token_profit_scatter` | Fig. 4 — profit in token units vs Px |
//! | `fig5_trad_vs_maxmax` | Fig. 5 — empirical Traditional vs MaxMax |
//! | `fig6_maxprice_vs_maxmax` | Fig. 6 — empirical MaxPrice vs MaxMax |
//! | `fig7_convex_vs_maxmax_empirical` | Fig. 7 — empirical ConvexOpt vs MaxMax |
//! | `fig8_token_overlap` | Fig. 8 — per-token profits, both strategies |
//! | `fig9_len4_trad` | Fig. 9 — length-4 Traditional vs ConvexOpt |
//! | `fig10_len4_maxmax` | Fig. 10 — length-4 MaxMax vs ConvexOpt |
//! | `ttime_timing_table` | §VII timing discussion (ms vs s at length 10) |
//! | `run_all` | regenerates everything into `results/` |
//!
//! Each binary writes CSV series plus an ASCII rendering into `results/`
//! and prints a summary. Criterion benches live in `benches/`.

pub mod ascii;
pub mod csvout;
pub mod empirical;
pub mod figures;
pub mod gap;
pub mod json;
pub mod paper;
pub mod timing;

/// The workspace-level results directory.
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(|root| root.join("results"))
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_repo_level() {
        let dir = super::results_dir();
        assert!(dir.ends_with("results"));
    }
}
