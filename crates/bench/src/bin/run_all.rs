//! Regenerates every figure and table of the paper into `results/`.

fn main() -> std::io::Result<()> {
    use arb_bench::figures;
    println!("{}", figures::fig1()?);
    println!("{}", figures::exv()?);
    println!("{}", figures::fig2()?);
    println!("{}", figures::fig3()?);
    println!("{}", figures::fig4()?);
    let study = figures::default_study();
    print!("{}", figures::census_summary(&study));
    println!("{}", figures::fig5(&study)?);
    println!("{}", figures::fig6(&study)?);
    println!("{}", figures::fig7(&study)?);
    println!("{}", figures::fig8(&study)?);
    println!("{}", figures::fig9(&study)?);
    println!("{}", figures::fig10(&study)?);
    println!("{}", figures::ttime()?);
    println!(
        "all artifacts written to {}",
        arb_bench::results_dir().display()
    );
    Ok(())
}
