//! Ablation: the MaxMax ↔ ConvexOptimization discrepancy (the paper's
//! open research question) swept over mispricing edge and CEX price
//! dispersion. See `arb_bench::gap` for the structural analysis.

use arb_bench::csvout::write_csv;
use arb_bench::gap::{gap_is_zero_iff_single_rotation, sweep, GapSample};

fn main() -> std::io::Result<()> {
    let edges = [1.02, 1.05, 1.1, 1.2, 1.4];
    let dispersions = [1.0, 2.0, 5.0, 10.0, 50.0];
    let samples = sweep(&edges, &dispersions, 40, 20240624);

    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| {
            vec![
                s.edge,
                s.dispersion,
                s.maxmax,
                s.convex,
                s.relative_gap(),
                s.convex_profit_tokens as f64,
            ]
        })
        .collect();
    write_csv(
        &arb_bench::results_dir().join("ablation_gap.csv"),
        &[
            "edge",
            "dispersion",
            "maxmax",
            "convex",
            "relative_gap",
            "profit_tokens",
        ],
        &rows,
    )?;

    println!("GAP ABLATION: {} samples", samples.len());
    println!("edge  | dispersion | mean rel gap | max rel gap | multi-token share");
    println!("------+------------+--------------+-------------+------------------");
    for &edge in &edges {
        for &dispersion in &dispersions {
            let cell: Vec<&GapSample> = samples
                .iter()
                .filter(|s| s.edge == edge && s.dispersion == dispersion)
                .collect();
            if cell.is_empty() {
                continue;
            }
            let mean = cell.iter().map(|s| s.relative_gap()).sum::<f64>() / cell.len() as f64;
            let max = cell.iter().map(|s| s.relative_gap()).fold(0.0f64, f64::max);
            let multi = cell.iter().filter(|s| s.convex_profit_tokens > 1).count();
            println!(
                "{edge:<5.2} | {dispersion:<10.1} | {mean:>12.3e} | {max:>11.3e} | {:>5.1}%",
                100.0 * multi as f64 / cell.len() as f64
            );
        }
    }
    let consistency = gap_is_zero_iff_single_rotation(&samples, 1e-4);
    println!(
        "\nstructural claim (gap > 0 ⇒ multi-token convex profit): {:.1}% of samples consistent",
        consistency * 100.0
    );
    println!("(paper §VII lists characterizing this discrepancy as future work)");
    Ok(())
}
