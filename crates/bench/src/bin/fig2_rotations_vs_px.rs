//! Regenerates the paper's fig2 artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::fig2()?);
    Ok(())
}
