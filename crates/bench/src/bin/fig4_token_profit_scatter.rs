//! Regenerates the paper's fig4 artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::fig4()?);
    Ok(())
}
