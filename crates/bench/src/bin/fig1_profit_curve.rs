//! Regenerates the paper's fig1 artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::fig1()?);
    Ok(())
}
