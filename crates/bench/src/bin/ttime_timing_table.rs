//! Regenerates the paper's ttime artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::ttime()?);
    Ok(())
}
