//! Regenerates the paper's fig3 artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::fig3()?);
    Ok(())
}
