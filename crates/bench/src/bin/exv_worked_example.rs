//! Regenerates the paper's exv artifact. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    println!("{}", arb_bench::figures::exv()?);
    Ok(())
}
