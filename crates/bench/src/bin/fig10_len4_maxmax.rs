//! Regenerates the paper's fig10 artifact on the synthetic empirical
//! census. See `arb_bench::figures`.

fn main() -> std::io::Result<()> {
    let study = arb_bench::figures::default_study();
    print!("{}", arb_bench::figures::census_summary(&study));
    println!("{}", arb_bench::figures::fig10(&study)?);
    Ok(())
}
