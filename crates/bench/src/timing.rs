//! Wall-clock timing of the strategies vs loop length (§VII).
//!
//! The paper reports: MaxMax with bisection is milliseconds even at loop
//! length 10, while its (interpreted, cvxpy-class) convex solver takes
//! seconds. Our compiled solver is far faster in absolute terms; the
//! *shape* to reproduce is the ordering and growth: ConvexOpt costs a
//! large multiple of MaxMax and the multiple grows with loop length.

use std::time::Instant;

use arb_convex::{Formulation, SolverOptions};
use arb_core::traditional::Method;
use arb_core::{convexopt, maxmax};

use crate::paper::synthetic_loop;

/// One row of the timing table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingRow {
    /// Loop length (hops).
    pub length: usize,
    /// MaxMax with the closed form, nanoseconds per evaluation.
    pub maxmax_closed_ns: f64,
    /// MaxMax with bisection (the paper's method), ns per evaluation.
    pub maxmax_bisect_ns: f64,
    /// ConvexOptimization (reduced formulation), ns per evaluation.
    pub convex_reduced_ns: f64,
    /// ConvexOptimization (full 2n formulation), ns per evaluation.
    pub convex_full_ns: f64,
}

/// Measures all strategies at the given lengths, `iters` evaluations each.
pub fn measure(lengths: &[usize], iters: usize) -> Vec<TimingRow> {
    lengths
        .iter()
        .map(|&length| {
            let loop_ = synthetic_loop(length, 10_000.0, 1.15);
            let prices: Vec<f64> = (0..length).map(|i| 1.0 + i as f64).collect();
            let time = |f: &dyn Fn()| {
                // One warm-up evaluation, then the timed batch.
                f();
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            };
            let full = SolverOptions {
                formulation: Formulation::Full,
                ..SolverOptions::default()
            };
            TimingRow {
                length,
                maxmax_closed_ns: time(&|| {
                    maxmax::evaluate_with(&loop_, &prices, Method::ClosedForm).unwrap();
                }),
                maxmax_bisect_ns: time(&|| {
                    maxmax::evaluate_with(&loop_, &prices, Method::Bisection).unwrap();
                }),
                convex_reduced_ns: time(&|| {
                    convexopt::evaluate(&loop_, &prices).unwrap();
                }),
                convex_full_ns: time(&|| {
                    convexopt::evaluate_with(&loop_, &prices, &full).unwrap();
                }),
            }
        })
        .collect()
}

/// Renders the timing table as text.
pub fn render_table(rows: &[TimingRow]) -> String {
    let mut out = String::from(
        "length | maxmax-closed | maxmax-bisect | convex-reduced | convex-full | convex/maxmax\n",
    );
    out.push_str(
        "-------+---------------+---------------+----------------+-------------+--------------\n",
    );
    for row in rows {
        let ratio = row.convex_reduced_ns / row.maxmax_bisect_ns.max(1.0);
        out.push_str(&format!(
            "{:>6} | {:>11.1}us | {:>11.1}us | {:>12.1}us | {:>9.1}us | {:>12.1}x\n",
            row.length,
            row.maxmax_closed_ns / 1e3,
            row.maxmax_bisect_ns / 1e3,
            row.convex_reduced_ns / 1e3,
            row.convex_full_ns / 1e3,
            ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_costs_more_than_maxmax() {
        let rows = measure(&[3, 6], 3);
        for row in &rows {
            assert!(
                row.convex_reduced_ns > row.maxmax_closed_ns,
                "convex should be slower: {row:?}"
            );
        }
        let table = render_table(&rows);
        assert!(table.contains("length"));
        assert!(table.lines().count() >= 4);
    }
}
