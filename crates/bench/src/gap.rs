//! The MaxMax ↔ ConvexOptimization gap — the paper's open question.
//!
//! §VII: *"we didn't give the discrepancy between these two kinds of
//! strategies in theory, which can be a research direction in the
//! future."* This module studies that discrepancy empirically with
//! controlled sweeps.
//!
//! Structural observation implemented in [`gap_is_zero_iff_single_rotation`]:
//! MaxMax is exactly the best *single-rotation* (chained-flow) solution of
//! eq. 8, so the gap is positive only when the convex optimum keeps a
//! positive net position in more than one token. Sweeping price dispersion
//! modulates *how often* that happens — and in the direction one might not
//! guess: extreme dispersion makes the cheap tokens' profit worthless, so
//! the optimum concentrates everything into the expensive token (a single
//! rotation ⇒ zero gap), while comparable prices reward splitting profit
//! across tokens (multi-token optima, where the strictly positive gaps
//! live). The `ablation_gap` binary tabulates this.

use arb_core::loop_def::ArbLoop;
use arb_core::{convexopt, maxmax};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arb_amm::curve::SwapCurve;
use arb_amm::fee::FeeRate;
use arb_amm::token::TokenId;

/// One sweep observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// Loop mispricing edge (the round-trip rate is ≈ `edge` before fees).
    pub edge: f64,
    /// Price dispersion parameter (ratio between extreme prices).
    pub dispersion: f64,
    /// MaxMax monetized profit.
    pub maxmax: f64,
    /// ConvexOpt monetized profit.
    pub convex: f64,
    /// Number of tokens with positive net profit in the convex plan.
    pub convex_profit_tokens: usize,
}

impl GapSample {
    /// Relative gap `(convex − maxmax)/maxmax` (0 for dead loops).
    pub fn relative_gap(&self) -> f64 {
        if self.maxmax <= 0.0 {
            0.0
        } else {
            (self.convex - self.maxmax) / self.maxmax
        }
    }
}

/// Builds a random 3-loop with round-trip edge ≈ `edge` and price vector
/// with max/min ratio `dispersion`.
fn random_case(rng: &mut StdRng, edge: f64, dispersion: f64) -> (ArbLoop, Vec<f64>) {
    let fee = FeeRate::UNISWAP_V2;
    let depth = rng.gen_range(500.0..5_000.0);
    // Spread the edge across hops with random tilts that cancel.
    let tilt = rng.gen_range(0.7..1.4);
    let hops = vec![
        SwapCurve::new(depth, depth * tilt * edge, fee).expect("valid"),
        SwapCurve::new(depth * tilt, depth * rng.gen_range(0.8..1.2), fee).expect("valid"),
        SwapCurve::new(depth * rng.gen_range(0.8..1.2), depth / 1.0, fee).expect("valid"),
    ];
    let tokens = vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)];
    let base = rng.gen_range(1.0..10.0);
    let prices = vec![
        base,
        base * dispersion.powf(rng.gen_range(0.0..1.0)),
        base * dispersion,
    ];
    (ArbLoop::new(hops, tokens).expect("valid loop"), prices)
}

/// Sweeps mispricing edge × price dispersion, sampling `per_cell` random
/// loops per grid cell.
pub fn sweep(edges: &[f64], dispersions: &[f64], per_cell: usize, seed: u64) -> Vec<GapSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for &edge in edges {
        for &dispersion in dispersions {
            for _ in 0..per_cell {
                let (loop_, prices) = random_case(&mut rng, edge, dispersion);
                if loop_.round_trip_rate() <= 1.0 {
                    continue;
                }
                let Ok(mm) = maxmax::evaluate(&loop_, &prices) else {
                    continue;
                };
                let Ok(cv) = convexopt::evaluate(&loop_, &prices) else {
                    continue;
                };
                let profit_tokens = cv
                    .plan
                    .token_profits()
                    .iter()
                    .filter(|p| **p > 1e-9)
                    .count();
                out.push(GapSample {
                    edge,
                    dispersion,
                    maxmax: mm.best.monetized.value(),
                    convex: cv.monetized.value(),
                    convex_profit_tokens: profit_tokens,
                });
            }
        }
    }
    out
}

/// The structural claim: the gap is ~zero exactly when the convex optimum
/// banks profit in a single token (then it coincides with the best
/// rotation, which MaxMax finds too). Returns the fraction of samples
/// consistent with the claim.
pub fn gap_is_zero_iff_single_rotation(samples: &[GapSample], tol: f64) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let consistent = samples
        .iter()
        .filter(|s| {
            let gap_positive = s.relative_gap() > tol;
            let multi_token = s.convex_profit_tokens > 1;
            // gap > 0 ⇒ multi-token profit (contrapositive: single-token
            // optimum ⇒ gap ≈ 0).
            !gap_positive || multi_token
        })
        .count();
    consistent as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_samples_and_dominance() {
        let samples = sweep(&[1.05, 1.2], &[1.0, 10.0], 10, 7);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(
                s.convex >= s.maxmax - 1e-4 * (1.0 + s.maxmax),
                "dominance violated: {s:?}"
            );
        }
    }

    #[test]
    fn structural_claim_holds() {
        let samples = sweep(&[1.1, 1.3], &[1.0, 5.0, 20.0], 20, 11);
        let fraction = gap_is_zero_iff_single_rotation(&samples, 1e-4);
        assert!(
            fraction > 0.95,
            "gap>0 without multi-token profit in {:.0}% of cases",
            (1.0 - fraction) * 100.0
        );
    }

    #[test]
    fn dispersion_concentrates_convex_profit() {
        // Measured finding (see module docs): with extreme price
        // dispersion the cheap tokens' profit is worthless, so the convex
        // optimum banks everything in the expensive token — the
        // multi-token share drops and with it the chance of a positive
        // gap. With comparable prices the optimum splits profit.
        let low = sweep(&[1.2], &[1.0], 60, 13);
        let high = sweep(&[1.2], &[50.0], 60, 13);
        let multi_share = |s: &[GapSample]| {
            s.iter().filter(|g| g.convex_profit_tokens > 1).count() as f64 / s.len().max(1) as f64
        };
        assert!(
            multi_share(&low) > multi_share(&high),
            "low-dispersion multi-token share {} ≤ high-dispersion {}",
            multi_share(&low),
            multi_share(&high)
        );
    }
}
