//! The §VI empirical pipeline: snapshot → graph → loop census → strategy
//! comparison rows.

use arb_core::batch::{self, LoopCase};
use arb_core::loop_def::ArbLoop;
use arb_core::report::{CompareOptions, LoopComparison};
use arb_graph::{Cycle, TokenGraph};
use arb_snapshot::{Generator, Snapshot, SnapshotConfig};

/// The assembled empirical study for one snapshot.
pub struct EmpiricalStudy {
    /// The filtered snapshot (the paper's 51-token / 208-pool census).
    pub snapshot: Snapshot,
    /// The token graph over the filtered pools.
    pub graph: TokenGraph,
}

impl EmpiricalStudy {
    /// Generates the study from a snapshot config (defaults reproduce the
    /// paper's census).
    ///
    /// # Panics
    ///
    /// Panics on snapshot/graph construction failure — the binaries using
    /// this are reproduction scripts where failing loudly is correct.
    pub fn build(config: &SnapshotConfig) -> Self {
        let snapshot = Generator::new(*config)
            .generate()
            .expect("snapshot generation")
            .filtered(config);
        let graph = TokenGraph::new(snapshot.pools().to_vec()).expect("non-empty graph");
        EmpiricalStudy { snapshot, graph }
    }

    /// All arbitrage loops of the given length, as strategy-ready cases.
    pub fn loop_cases(&self, length: usize) -> Vec<LoopCase> {
        let prices = self.snapshot.price_vector();
        self.graph
            .arbitrage_loops(length)
            .expect("cycle enumeration")
            .into_iter()
            .map(|cycle| self.case_for(&cycle, &prices))
            .collect()
    }

    fn case_for(&self, cycle: &Cycle, prices: &[f64]) -> LoopCase {
        let hops = self.graph.curves_for(cycle).expect("validated cycle");
        let loop_ = ArbLoop::new(hops, cycle.tokens().to_vec()).expect("valid loop");
        let case_prices = cycle.tokens().iter().map(|t| prices[t.index()]).collect();
        LoopCase {
            loop_,
            prices: case_prices,
        }
    }

    /// Strategy comparisons for every arbitrage loop of a length,
    /// evaluated in parallel.
    pub fn comparisons(&self, length: usize, workers: usize) -> Vec<LoopComparison> {
        let cases = self.loop_cases(length);
        batch::compare_all_parallel(&cases, &CompareOptions::default(), workers)
            .expect("strategy evaluation")
    }
}

/// Loops below this monetized profit are excluded from *relative* convex
/// statistics: the convex solver works to an absolute duality-gap
/// tolerance (micro-dollars), so relative numbers on nano-dollar loops are
/// numerically meaningless noise.
pub const RELATIVE_STATS_FLOOR_USD: f64 = 1e-3;

/// Summary statistics over comparison rows (reported in EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct DominanceSummary {
    /// Number of loops.
    pub loops: usize,
    /// Fraction of traditional-rotation points strictly below MaxMax
    /// (the rest tie — the winning rotation itself).
    pub traditional_strictly_below: f64,
    /// Fraction of loops where MaxPrice is strictly below MaxMax
    /// ("unreliability" of the MaxPrice heuristic).
    pub maxprice_strictly_below: f64,
    /// Largest absolute gap `maxmax − convex` in dollars (bounded by the
    /// solver's duality-gap tolerance; convex dominates in theory).
    pub worst_convex_shortfall_usd: f64,
    /// Largest relative gap `(maxmax − convex)/maxmax` over loops above
    /// the profit floor.
    pub worst_convex_shortfall: f64,
    /// Mean relative gap `(convex − maxmax)/maxmax` over loops above the
    /// profit floor (paper: tiny but non-negative).
    pub mean_convex_gain: f64,
}

/// Computes the dominance summary for a set of rows.
pub fn summarize(rows: &[LoopComparison]) -> DominanceSummary {
    let mut trad_total = 0usize;
    let mut trad_below = 0usize;
    let mut maxprice_below = 0usize;
    let mut worst_abs = 0.0f64;
    let mut worst_shortfall = f64::NEG_INFINITY;
    let mut gain_sum = 0.0;
    let mut gain_count = 0usize;
    for row in rows {
        let mm = row.maxmax.value();
        for t in &row.traditional {
            trad_total += 1;
            if t.value() < mm - 1e-9 * (1.0 + mm) {
                trad_below += 1;
            }
        }
        if row.maxprice.value() < mm - 1e-9 * (1.0 + mm) {
            maxprice_below += 1;
        }
        worst_abs = worst_abs.max(mm - row.convex.value());
        if mm >= RELATIVE_STATS_FLOOR_USD {
            worst_shortfall = worst_shortfall.max((mm - row.convex.value()) / mm);
            gain_sum += (row.convex.value() - mm) / mm;
            gain_count += 1;
        }
    }
    DominanceSummary {
        loops: rows.len(),
        traditional_strictly_below: ratio(trad_below, trad_total),
        maxprice_strictly_below: ratio(maxprice_below, rows.len()),
        worst_convex_shortfall_usd: worst_abs,
        worst_convex_shortfall: if worst_shortfall.is_finite() {
            worst_shortfall
        } else {
            0.0
        },
        mean_convex_gain: if gain_count > 0 {
            gain_sum / gain_count as f64
        } else {
            0.0
        },
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SnapshotConfig {
        SnapshotConfig {
            num_tokens: 12,
            num_pools: 26,
            ..SnapshotConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_dominant_rows() {
        let study = EmpiricalStudy::build(&small_config());
        let rows = study.comparisons(3, 4);
        assert!(!rows.is_empty(), "small market should have some loops");
        for row in &rows {
            assert!(
                row.satisfies_dominance(1e-4 * (1.0 + row.maxmax.value())),
                "{row:?}"
            );
        }
        let summary = summarize(&rows);
        assert_eq!(summary.loops, rows.len());
        // Convex never falls materially below MaxMax.
        assert!(summary.worst_convex_shortfall < 1e-4);
        // Exactly one rotation per loop ties with MaxMax, so the strictly-
        // below fraction is (n−1)/n per loop = 2/3 for triangles.
        assert!(summary.traditional_strictly_below > 0.5);
    }

    #[test]
    fn summary_on_empty_rows() {
        let s = summarize(&[]);
        assert_eq!(s.loops, 0);
        assert_eq!(s.maxprice_strictly_below, 0.0);
    }
}
