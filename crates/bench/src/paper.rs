//! The paper's §V worked example as a shared fixture.

use arb_amm::curve::SwapCurve;
use arb_amm::fee::FeeRate;
use arb_amm::token::TokenId;
use arb_core::loop_def::ArbLoop;

/// The §V pools: `(x,y) = (100,200)`, `(y,z) = (300,200)`,
/// `(z,x) = (200,400)` with the Uniswap V2 fee.
pub fn paper_hops() -> Vec<SwapCurve> {
    let fee = FeeRate::UNISWAP_V2;
    vec![
        SwapCurve::new(100.0, 200.0, fee).expect("valid reserves"),
        SwapCurve::new(300.0, 200.0, fee).expect("valid reserves"),
        SwapCurve::new(200.0, 400.0, fee).expect("valid reserves"),
    ]
}

/// The §V loop `X → Y → Z → X` with token ids 0, 1, 2.
pub fn paper_loop() -> ArbLoop {
    ArbLoop::new(
        paper_hops(),
        vec![TokenId::new(0), TokenId::new(1), TokenId::new(2)],
    )
    .expect("valid loop")
}

/// The §V CEX prices `(Px, Py, Pz) = ($2, $10.2, $20)`.
pub fn paper_prices() -> [f64; 3] {
    [2.0, 10.2, 20.0]
}

/// A synthetic profitable loop of arbitrary length for timing studies:
/// balanced 1:1 pools with one mispriced hop so the round-trip rate
/// modestly exceeds 1 regardless of length.
pub fn synthetic_loop(length: usize, depth: f64, edge: f64) -> ArbLoop {
    assert!(length >= 2);
    let fee = FeeRate::UNISWAP_V2;
    let mut hops = Vec::with_capacity(length);
    for i in 0..length {
        let out = if i == 0 { depth * edge } else { depth };
        hops.push(SwapCurve::new(depth, out, fee).expect("valid reserves"));
    }
    let tokens = (0..length as u32).map(TokenId::new).collect();
    ArbLoop::new(hops, tokens).expect("valid loop")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_loop_rate() {
        let expected = 0.997f64.powi(3) * 8.0 / 3.0;
        assert!((paper_loop().round_trip_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn synthetic_loop_profitable_at_all_lengths() {
        for n in 2..=12 {
            let l = synthetic_loop(n, 10_000.0, 1.1);
            // rate = γ^n · 1.1 must stay above 1 for n ≤ 12 (γ^12 ≈ 0.965).
            assert!(
                l.round_trip_rate() > 1.0,
                "length {n}: rate {}",
                l.round_trip_rate()
            );
        }
    }
}
