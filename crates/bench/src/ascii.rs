//! Terminal-friendly scatter/line rendering for the figure binaries.

/// A named point series with a marker character.
#[derive(Debug, Clone)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// Marker drawn at each point.
    pub marker: char,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Configuration for an ASCII chart.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Plot width in characters.
    pub width: usize,
    /// Plot height in characters.
    pub height: usize,
    /// Title printed above.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Draw the 45° identity line (for dominance scatter plots).
    pub diagonal: bool,
}

impl Default for Chart {
    fn default() -> Self {
        Chart {
            width: 72,
            height: 24,
            title: String::new(),
            x_label: "x".into(),
            y_label: "y".into(),
            diagonal: false,
        }
    }
}

impl Chart {
    /// Renders the series into a multi-line string.
    ///
    /// Returns a placeholder message when every series is empty.
    pub fn render(&self, series: &[Series<'_>]) -> String {
        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{}\n  (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = bounds(all.iter().map(|p| p.0));
        let (mut y_min, mut y_max) = bounds(all.iter().map(|p| p.1));
        if self.diagonal {
            // The identity line needs a shared square-ish domain.
            x_min = x_min.min(y_min);
            y_min = x_min;
            x_max = x_max.max(y_max);
            y_max = x_max;
        }
        pad(&mut x_min, &mut x_max);
        pad(&mut y_min, &mut y_max);

        let mut grid = vec![vec![' '; self.width]; self.height];
        if self.diagonal {
            let cols: Vec<Option<usize>> = (0..self.width)
                .map(|col| {
                    let x = x_min + (x_max - x_min) * col as f64 / (self.width - 1) as f64;
                    self.to_row(x, y_min, y_max)
                })
                .collect();
            for (col, row) in cols.into_iter().enumerate() {
                if let Some(row) = row {
                    grid[row][col] = '·';
                }
            }
        }
        for s in series {
            for &(x, y) in &s.points {
                if !(x.is_finite() && y.is_finite()) {
                    continue;
                }
                let col = self.to_col(x, x_min, x_max);
                let row = self.to_row(y, y_min, y_max);
                if let (Some(col), Some(row)) = (col, row) {
                    grid[row][col] = s.marker;
                }
            }
        }

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("  {}\n", self.title));
        }
        out.push_str(&format!("  {:>10.3} ┤", y_max));
        out.push_str(&grid[0].iter().collect::<String>());
        out.push('\n');
        for row in grid.iter().take(self.height - 1).skip(1) {
            out.push_str("             │");
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&format!("  {:>10.3} ┤", y_min));
        out.push_str(&grid[self.height - 1].iter().collect::<String>());
        out.push('\n');
        out.push_str(&format!("             └{}\n", "─".repeat(self.width)));
        out.push_str(&format!(
            "              {:<12.4}{:>width$.4}\n",
            x_min,
            x_max,
            width = self.width.saturating_sub(12)
        ));
        out.push_str(&format!(
            "              x: {} | y: {}\n",
            self.x_label, self.y_label
        ));
        for s in series {
            out.push_str(&format!("              {} {}\n", s.marker, s.label));
        }
        out
    }

    fn to_col(&self, x: f64, min: f64, max: f64) -> Option<usize> {
        let frac = (x - min) / (max - min);
        if !(0.0..=1.0).contains(&frac) {
            return None;
        }
        Some(((frac * (self.width - 1) as f64).round() as usize).min(self.width - 1))
    }

    fn to_row(&self, y: f64, min: f64, max: f64) -> Option<usize> {
        let frac = (y - min) / (max - min);
        if !(0.0..=1.0).contains(&frac) {
            return None;
        }
        let inv = 1.0 - frac;
        Some(((inv * (self.height - 1) as f64).round() as usize).min(self.height - 1))
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

fn pad(min: &mut f64, max: &mut f64) {
    if *min == *max {
        *min -= 0.5;
        *max += 0.5;
    } else {
        let span = *max - *min;
        *min -= span * 0.03;
        *max += span * 0.03;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let chart = Chart {
            title: "test".into(),
            ..Chart::default()
        };
        let s = Series {
            label: "data",
            marker: 'o',
            points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)],
        };
        let rendered = chart.render(&[s]);
        assert!(rendered.contains("test"));
        assert!(rendered.contains('o'));
        assert!(rendered.contains("data"));
    }

    #[test]
    fn empty_series_handled() {
        let chart = Chart::default();
        let rendered = chart.render(&[]);
        assert!(rendered.contains("no data"));
    }

    #[test]
    fn diagonal_draws_identity() {
        let chart = Chart {
            diagonal: true,
            ..Chart::default()
        };
        let s = Series {
            label: "pts",
            marker: '*',
            points: vec![(1.0, 1.0), (5.0, 2.0)],
        };
        let rendered = chart.render(&[s]);
        assert!(rendered.contains('·'), "identity line missing");
    }

    #[test]
    fn degenerate_single_point() {
        let chart = Chart::default();
        let s = Series {
            label: "one",
            marker: 'x',
            points: vec![(3.0, 3.0)],
        };
        let rendered = chart.render(&[s]);
        assert!(rendered.contains('x'));
    }
}
