//! One-line JSON emission for the soak/bench trend artifacts.
//!
//! Every asserted bench pass prints exactly one `{"bench":...}` line
//! that CI tees into a `BENCH_*.json` artifact and gates against a
//! committed baseline. The benches used to hand-roll these lines with
//! escaped `println!` format strings — easy to typo, painful to extend.
//! [`JsonLine`] centralizes the formatting while preserving the exact
//! byte shape the committed baselines and trend gates already parse:
//! fields appear in insertion order, integers print bare, floats print
//! with a fixed precision, and arrays use Rust's `Debug` form (which
//! for integer slices *is* valid JSON).
//!
//! Keys and string values are emitted verbatim: callers pass literal
//! identifiers and labels, never untrusted data, so no escaping layer
//! is needed (a debug assertion enforces it).

use std::fmt::Write as _;

/// An ordered single-line JSON object builder, opened with the
/// conventional leading `"bench"` field.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
}

/// `true` when `s` can be embedded in a JSON string without escaping.
fn plain(s: &str) -> bool {
    s.chars().all(|c| c != '"' && c != '\\' && !c.is_control())
}

impl JsonLine {
    /// Opens a line whose first field is `"bench":"<name>"`.
    #[must_use]
    pub fn bench(name: &str) -> Self {
        debug_assert!(plain(name), "bench name must not need escaping");
        let mut buf = String::with_capacity(256);
        buf.push_str("{\"bench\":\"");
        buf.push_str(name);
        buf.push('"');
        Self { buf }
    }

    fn key(&mut self, key: &str) {
        debug_assert!(plain(key), "JSON key must not need escaping");
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// An unsigned integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        write!(self.buf, "{value}").expect("write to String");
        self
    }

    /// A `usize` counter field (avoids `as` casts at every call site).
    #[must_use]
    pub fn count(self, key: &str, value: usize) -> Self {
        self.int(key, value as u64)
    }

    /// A float field printed with exactly `decimals` fraction digits —
    /// the stable shape trend gates diff against.
    #[must_use]
    pub fn fixed(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.key(key);
        write!(self.buf, "{value:.decimals$}").expect("write to String");
        self
    }

    /// A literal string field (labels and gate verdicts; no escaping).
    #[must_use]
    pub fn text(mut self, key: &str, value: &str) -> Self {
        debug_assert!(plain(value), "JSON string must not need escaping");
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(value);
        self.buf.push('"');
        self
    }

    /// An integer array field via `Debug` (`[1, 2, 3]` is valid JSON).
    #[must_use]
    pub fn counts(mut self, key: &str, values: &[usize]) -> Self {
        self.key(key);
        write!(self.buf, "{values:?}").expect("write to String");
        self
    }

    /// The finished line.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Prints the finished line to stdout, where the CI workflow's
    /// `tee` + `grep '^{'` picks it up.
    pub fn emit(self) {
        println!("{}", self.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_field_order_and_formats() {
        let line = JsonLine::bench("soak")
            .count("pools", 600)
            .int("tick_p99_ns", 12_345)
            .fixed("speedup", 2.0, 3)
            .fixed("reduction", 0.98765, 4)
            .counts("per_shard", &[3, 1, 4])
            .text("gate", "asserted>=2x")
            .finish();
        assert_eq!(
            line,
            "{\"bench\":\"soak\",\"pools\":600,\"tick_p99_ns\":12345,\
             \"speedup\":2.000,\"reduction\":0.9877,\"per_shard\":[3, 1, 4],\
             \"gate\":\"asserted>=2x\"}"
        );
    }

    #[test]
    fn line_is_machine_parseable() {
        // The committed baselines are read back by python's json.loads;
        // spot-check the grammar with a hand parser of the shapes used.
        let line = JsonLine::bench("x").int("a", 1).fixed("b", 1.5, 3).finish();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), 1);
        assert_eq!(line.matches(':').count(), 3);
    }
}
