//! CSV output for figure data.

use std::io::Write as _;
use std::path::Path;

/// Writes a CSV file with the given header and float rows.
///
/// # Errors
///
/// Forwards filesystem errors.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes plain text (ASCII chart, summary) next to the CSVs.
///
/// # Errors
///
/// Forwards filesystem errors.
pub fn write_text(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_formats() {
        let dir = std::env::temp_dir().join(format!("arb_csv_test_{}", std::process::id()));
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.5], vec![3.0, 4.0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2.5\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
