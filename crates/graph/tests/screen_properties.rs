//! Property tests for the incremental profitability screen.
//!
//! Two invariants, exercised across randomized interleavings of the
//! exact hooks the streaming engine drives (`apply_sync` deltas,
//! degenerate retire, revive, explicit remove, pool append):
//!
//! 1. **Drift** — every live cycle's incrementally maintained log-sum
//!    stays within [`CycleIndex::SCREEN_DRIFT_MARGIN`] (1e-9) of an
//!    exact resummation over the graph's cached rates.
//! 2. **Soundness** — no cycle the full evaluation would rank is ever
//!    screened out: whenever the incremental sum is at or below
//!    `−SCREEN_DRIFT_MARGIN`, the *freshly computed* `Cycle::log_rate`
//!    (what the unscreened path tests against zero) is certainly ≤ 0.

use arb_amm::fee::FeeRate;
use arb_amm::pool::{Pool, PoolId};
use arb_amm::token::TokenId;
use arb_graph::{CycleIndex, SyncOutcome, TokenGraph};
use proptest::prelude::*;

const TOKENS: u32 = 5;

#[derive(Debug, Clone)]
enum Op {
    /// Valid reserves: a live pool takes an O(1) screen delta, a retired
    /// one revives and re-enumerates its cycles.
    Sync(usize, f64, f64),
    /// Degenerate reserves: retires the pool and its cycles.
    Kill(usize),
    /// Valid-but-extreme reserves whose rate underflows/overflows: the
    /// pool stays live with a non-finite log rate (the explicit `-∞`
    /// handling path).
    Extreme(usize),
    /// Explicit removal.
    Remove(usize),
    /// Appends a parallel pool on a random token pair.
    Add(u32, u32, f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0usize..12, 1.0..1e6f64, 1.0..1e6f64).prop_map(|(p, a, b)| Op::Sync(p, a, b)),
        1 => (0usize..12).prop_map(Op::Kill),
        1 => (0usize..12).prop_map(Op::Extreme),
        1 => (0usize..12).prop_map(Op::Remove),
        2 => (0u32..TOKENS, 0u32..TOKENS, 1.0..1e6f64, 1.0..1e6f64)
            .prop_map(|(a, b, ra, rb)| Op::Add(a, b, ra, rb)),
    ]
}

/// Mirrors the streaming engine's maintenance: graph mutation first, then
/// the matching index hook.
fn apply(graph: &mut TokenGraph, index: &mut CycleIndex, op: &Op) {
    let fee = FeeRate::UNISWAP_V2;
    match *op {
        Op::Sync(slot, a, b) if slot < graph.pool_count() => sync(graph, index, slot, a, b),
        Op::Extreme(slot) if slot < graph.pool_count() => {
            sync(graph, index, slot, 1e300, 1e-300);
        }
        Op::Kill(slot) if slot < graph.pool_count() => {
            let pool = PoolId::new(slot as u32);
            let was_live = graph.is_live(pool);
            if let SyncOutcome::Retired = graph.apply_sync(pool, 0.0, 1.0).expect("in range") {
                if was_live {
                    index.on_pool_removed(pool);
                }
            }
        }
        Op::Remove(slot) if slot < graph.pool_count() => {
            let pool = PoolId::new(slot as u32);
            if graph.is_live(pool) {
                graph.remove_pool(pool).expect("in range");
                index.on_pool_removed(pool);
            }
        }
        Op::Add(a, b, ra, rb) => {
            let (a, b) = (a % TOKENS, b % TOKENS);
            if a == b {
                return;
            }
            let pool = Pool::new(TokenId::new(a), TokenId::new(b), ra, rb, fee).expect("valid");
            let id = graph.add_pool(pool);
            index.on_pool_added(graph, id).expect("append extends");
        }
        _ => {}
    }
}

/// One sync through the engine-mirroring maintenance sequence.
fn sync(graph: &mut TokenGraph, index: &mut CycleIndex, slot: usize, a: f64, b: f64) {
    let pool = PoolId::new(slot as u32);
    let was_live = graph.is_live(pool);
    let old = graph.pool_log_rates(pool);
    match graph.apply_sync(pool, a, b).expect("slot in range") {
        SyncOutcome::Updated => {
            index.on_pool_synced(graph, pool, old);
        }
        SyncOutcome::Retired if was_live => {
            index.on_pool_removed(pool);
        }
        SyncOutcome::Retired => {}
        SyncOutcome::Revived => {
            index.on_pool_added(graph, pool).expect("revive extends");
        }
    }
}

fn check_invariants(graph: &TokenGraph, index: &CycleIndex) -> Result<(), TestCaseError> {
    for (id, cycle) in index.iter_live() {
        let incremental = index.screen_log_sum(id).expect("live cycle screened");
        let exact = graph.cycle_log_rate(cycle).expect("live cycles resolve");
        // Drift: within the guaranteed margin (or bitwise agreement for
        // the non-finite cases, where subtraction is meaningless).
        let close = (incremental - exact).abs() <= CycleIndex::SCREEN_DRIFT_MARGIN
            || incremental.to_bits() == exact.to_bits();
        prop_assert!(
            close,
            "drift on {id}: incremental {incremental} vs exact {exact}"
        );
        // Soundness: a screened-out sum implies the freshly computed
        // log-rate — the unscreened path's test — cannot be positive.
        if incremental <= -CycleIndex::SCREEN_DRIFT_MARGIN {
            let fresh = cycle.log_rate(graph).expect("live cycles resolve");
            prop_assert!(
                fresh.is_nan() || fresh <= 0.0,
                "unsound screen on {id}: incremental {incremental} but fresh {fresh}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_log_sums_stay_tight_and_sound(
        seed_reserves in proptest::collection::vec((1.0..1e6f64, 1.0..1e6f64), 8),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        // A ring over 5 tokens plus parallel edges: plenty of 2- and
        // 3-cycles, all profitability decided by the random reserves.
        let fee = FeeRate::UNISWAP_V2;
        let t = TokenId::new;
        let mut pools = Vec::new();
        for (i, (ra, rb)) in seed_reserves.iter().enumerate() {
            let a = (i as u32) % TOKENS;
            let b = (a + 1) % TOKENS;
            pools.push(Pool::new(t(a), t(b), *ra, *rb, fee).expect("valid"));
        }
        let mut graph = TokenGraph::new(pools).expect("non-empty");
        let mut index = CycleIndex::build(&graph, 2, 3).expect("bounds ok");
        check_invariants(&graph, &index)?;
        for op in &ops {
            apply(&mut graph, &mut index, op);
            check_invariants(&graph, &index)?;
        }
    }

    #[test]
    fn long_delta_chains_cross_the_resummation_cadence(
        moves in proptest::collection::vec((0usize..8, 1.0..1e6f64, 1.0..1e6f64), 80..160),
    ) {
        // Pure live→live sync chains: the worst case for drift, long
        // past RESUM_INTERVAL, on a fixed diamond topology.
        let fee = FeeRate::UNISWAP_V2;
        let t = TokenId::new;
        let mut graph = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 11.0, fee).expect("valid"),
            Pool::new(t(1), t(2), 10.0, 12.0, fee).expect("valid"),
            Pool::new(t(2), t(3), 10.0, 13.0, fee).expect("valid"),
            Pool::new(t(3), t(0), 10.0, 14.0, fee).expect("valid"),
            Pool::new(t(0), t(2), 10.0, 15.0, fee).expect("valid"),
            Pool::new(t(0), t(2), 20.0, 25.0, fee).expect("valid"),
        ]).expect("non-empty");
        let mut index = CycleIndex::build(&graph, 2, 4).expect("bounds ok");
        let mut resummations = 0usize;
        for (slot, a, b) in &moves {
            let pool = PoolId::new((*slot % graph.pool_count()) as u32);
            let old = graph.pool_log_rates(pool);
            prop_assert_eq!(
                graph.apply_sync(pool, *a, *b).expect("in range"),
                SyncOutcome::Updated
            );
            resummations += index.on_pool_synced(&graph, pool, old).resummations;
            check_invariants(&graph, &index)?;
        }
        prop_assert!(
            resummations > 0,
            "{} moves over {} cycles must trigger periodic resummation",
            moves.len(),
            index.live_cycles()
        );
    }
}
