//! Cross-validation of the three cycle-discovery algorithms on random
//! graphs: they must agree with each other exactly.

use arb_amm::fee::FeeRate;
use arb_amm::pool::Pool;
use arb_amm::token::TokenId;
use arb_graph::{bellman_ford, johnson, TokenGraph};
use proptest::prelude::*;
use std::collections::HashSet;

fn t(i: u32) -> TokenId {
    TokenId::new(i)
}

/// Random connected pool graph over `n` tokens.
fn random_graph(n: u32, extra_edges: &[(u32, u32)], reserves: &[(f64, f64)]) -> TokenGraph {
    let fee = FeeRate::UNISWAP_V2;
    let mut pools = Vec::new();
    let mut k = 0usize;
    // Spanning path keeps it connected.
    for i in 1..n {
        let (ra, rb) = reserves[k % reserves.len()];
        k += 1;
        pools.push(Pool::new(t(i - 1), t(i), ra, rb, fee).unwrap());
    }
    for &(a, b) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let (ra, rb) = reserves[k % reserves.len()];
        k += 1;
        pools.push(Pool::new(t(a), t(b), ra, rb, fee).unwrap());
    }
    TokenGraph::new(pools).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Fixed-length enumeration must equal the same-length slice of
    /// Johnson's complete elementary-cycle listing.
    #[test]
    fn enumeration_matches_johnson(
        n in 4u32..8,
        extra in proptest::collection::vec((0u32..8, 0u32..8), 2..8),
        reserves in proptest::collection::vec((100.0..10_000.0f64, 100.0..10_000.0f64), 4),
    ) {
        let graph = random_graph(n, &extra, &reserves);
        let johnson_all = johnson::elementary_pool_cycles(&graph, 1_000_000).unwrap();
        for len in 2..=4usize {
            let direct: HashSet<_> = graph.cycles(len).unwrap().into_iter().collect();
            let via_johnson: HashSet<_> = johnson_all
                .iter()
                .filter(|c| c.len() == len)
                .cloned()
                .collect();
            prop_assert_eq!(
                &direct, &via_johnson,
                "length {} mismatch on {} tokens", len, n
            );
        }
    }

    /// If any enumerated loop is profitable, Bellman–Ford must find a
    /// negative cycle (it searches all lengths, so it sees at least as
    /// much as bounded enumeration). And any cycle BFM returns must
    /// genuinely be profitable.
    #[test]
    fn bfm_consistent_with_enumeration(
        n in 4u32..8,
        extra in proptest::collection::vec((0u32..8, 0u32..8), 2..8),
        reserves in proptest::collection::vec((100.0..10_000.0f64, 100.0..10_000.0f64), 4),
    ) {
        let graph = random_graph(n, &extra, &reserves);
        let enum_profitable = (2..=4).any(|k| !graph.arbitrage_loops(k).unwrap().is_empty());
        let bfm = bellman_ford::find_negative_cycle(&graph).unwrap();
        if enum_profitable {
            prop_assert!(bfm.is_some(), "enumeration found profit, BFM missed it");
        }
        if let Some(cycle) = bfm {
            prop_assert!(cycle.log_rate(&graph).unwrap() > 0.0,
                "BFM returned an unprofitable cycle");
        }
    }

    /// Every enumerated cycle validates and respects canonical rotation.
    #[test]
    fn cycles_are_canonical_and_valid(
        n in 4u32..8,
        extra in proptest::collection::vec((0u32..8, 0u32..8), 2..8),
        reserves in proptest::collection::vec((100.0..10_000.0f64, 100.0..10_000.0f64), 4),
    ) {
        let graph = random_graph(n, &extra, &reserves);
        for len in 2..=4usize {
            for cycle in graph.cycles(len).unwrap() {
                cycle.validate(&graph).unwrap();
                let first = cycle.tokens()[0];
                prop_assert!(
                    cycle.tokens().iter().all(|tok| *tok >= first),
                    "not canonically rooted: {cycle}"
                );
                // Tokens are pairwise distinct (simple cycle).
                let unique: HashSet<_> = cycle.tokens().iter().collect();
                prop_assert_eq!(unique.len(), cycle.len());
            }
        }
    }
}
