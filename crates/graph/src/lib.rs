//! Token exchange graph and arbitrage-loop discovery.
//!
//! The paper's empirical section builds a *token graph* from Uniswap V2
//! state: nodes are tokens, edges are liquidity pools, and arbitrage loops
//! are directed cycles whose product of relative prices exceeds 1
//! (equivalently, whose sum of log-rates is positive). This crate provides
//! that substrate plus the three cycle-discovery algorithms the surrounding
//! literature uses:
//!
//! * [`token_graph`] — the multigraph (parallel pools between a token pair
//!   are distinct edges) with adjacency queries;
//! * [`cycles`] — bounded-length enumeration of directed simple cycles
//!   (the paper "traverses all token loops with 3 tokens");
//! * [`johnson`] — Johnson's algorithm for *all* elementary cycles, as used
//!   by McLaughlin et al. (USENIX Sec '23);
//! * [`bellman_ford`] — Bellman–Ford–Moore negative-cycle detection on
//!   `−log(rate)` weights, as used by Zhou et al. (S&P '21);
//! * [`tarjan`] — strongly connected components for search pruning;
//! * [`partition`] — connected-component-aware pool sharding for the
//!   multi-engine runtime in `arb-engine`.
//!
//! # Quickstart
//!
//! ```
//! use arb_amm::{fee::FeeRate, pool::Pool, token::TokenId};
//! use arb_graph::TokenGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = |i| TokenId::new(i);
//! let fee = FeeRate::UNISWAP_V2;
//! let graph = TokenGraph::new(vec![
//!     Pool::new(t(0), t(1), 100.0, 200.0, fee)?,
//!     Pool::new(t(1), t(2), 300.0, 200.0, fee)?,
//!     Pool::new(t(2), t(0), 200.0, 400.0, fee)?,
//! ])?;
//! let loops = graph.arbitrage_loops(3)?;
//! assert_eq!(loops.len(), 1); // exactly one profitable direction
//! # Ok(())
//! # }
//! ```

pub mod bellman_ford;
pub mod cycle_index;
pub mod cycles;
pub mod error;
pub mod johnson;
pub mod partition;
pub mod tarjan;
pub mod token_graph;

pub use cycle_index::{CycleId, CycleIndex, PoolCycleRef, ScreenUpdate};
pub use cycles::Cycle;
pub use error::GraphError;
pub use partition::Partition;
pub use token_graph::{LoopScan, SyncOutcome, TokenGraph};
