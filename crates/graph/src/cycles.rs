//! Directed simple-cycle enumeration with bounded length.
//!
//! This is the paper's discovery procedure: "we traversed all token loops
//! with 3 tokens and selected those loops where arbitrage profit exists".
//! Cycles are enumerated at the *pool* level (every combination of parallel
//! pools is a distinct cycle, matching the paper's edge-per-pool graph) and
//! canonicalized so the smallest token id starts the sequence; both
//! directions of an undirected loop are kept because they are distinct
//! trades.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::error::GraphError;
use crate::token_graph::TokenGraph;

/// A directed cycle: `tokens[j]` is swapped through `pools[j]` into
/// `tokens[(j+1) % n]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cycle {
    tokens: Vec<TokenId>,
    pools: Vec<PoolId>,
}

impl Cycle {
    /// Creates a cycle from aligned token/pool sequences.
    ///
    /// # Errors
    ///
    /// * [`GraphError::CycleTooShort`] for fewer than 2 hops.
    /// * [`GraphError::DisconnectedCycle`] for mismatched lengths.
    pub fn new(tokens: Vec<TokenId>, pools: Vec<PoolId>) -> Result<Self, GraphError> {
        if tokens.len() < 2 {
            return Err(GraphError::CycleTooShort);
        }
        if tokens.len() != pools.len() {
            return Err(GraphError::DisconnectedCycle);
        }
        Ok(Cycle { tokens, pools })
    }

    /// The token sequence (`tokens[0]` is the canonical start).
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// The pool sequence aligned with [`Cycle::tokens`].
    pub fn pools(&self) -> &[PoolId] {
        &self.pools
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the cycle is empty (never true for a constructed cycle).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Checks that each hop's pool actually connects its tokens.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownReference`] for out-of-range pools.
    /// * [`GraphError::DisconnectedCycle`] if a hop does not connect.
    pub fn validate(&self, graph: &TokenGraph) -> Result<(), GraphError> {
        let n = self.len();
        for j in 0..n {
            let pool = graph.pool(self.pools[j])?;
            let from = self.tokens[j];
            let to = self.tokens[(j + 1) % n];
            if !(pool.contains(from) && pool.contains(to)) || from == to {
                return Err(GraphError::DisconnectedCycle);
            }
        }
        Ok(())
    }

    /// The round-trip rate `Π_j γ·r_out/r_in` at zero input.
    ///
    /// # Errors
    ///
    /// Same as [`Cycle::validate`].
    pub fn rate(&self, graph: &TokenGraph) -> Result<f64, GraphError> {
        let n = self.len();
        let mut rate = 1.0;
        for j in 0..n {
            rate *= graph.curve(self.pools[j], self.tokens[j])?.spot_rate();
        }
        Ok(rate)
    }

    /// The paper's arbitrage indicator `Σ_j log p_j` (positive ⇔ loop).
    ///
    /// # Errors
    ///
    /// Same as [`Cycle::validate`].
    pub fn log_rate(&self, graph: &TokenGraph) -> Result<f64, GraphError> {
        let n = self.len();
        let mut sum = 0.0;
        for j in 0..n {
            sum += graph.curve(self.pools[j], self.tokens[j])?.spot_rate().ln();
        }
        Ok(sum)
    }

    /// The rotation of this cycle starting at position `offset` — the same
    /// trade entered from a different token.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.len()`.
    pub fn rotated(&self, offset: usize) -> Cycle {
        assert!(offset < self.len());
        let n = self.len();
        Cycle {
            tokens: (0..n).map(|j| self.tokens[(offset + j) % n]).collect(),
            pools: (0..n).map(|j| self.pools[(offset + j) % n]).collect(),
        }
    }
}

impl std::fmt::Display for Cycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (t, p) in self.tokens.iter().zip(&self.pools) {
            write!(f, "{t} -[{p}]-> ")?;
        }
        write!(f, "{}", self.tokens[0])
    }
}

/// Enumerates all directed simple cycles with exactly `length` hops.
///
/// Canonical form: the cycle starts at its smallest token id, which
/// uniquely selects one rotation per directed cycle. The DFS only extends
/// paths through tokens larger than the start, so each cycle is emitted
/// exactly once. Parallel pools multiply cycles combinatorially, matching
/// the paper's pool-level loop census.
///
/// # Errors
///
/// Returns [`GraphError::CycleTooShort`] for `length < 2`.
pub fn enumerate(graph: &TokenGraph, length: usize) -> Result<Vec<Cycle>, GraphError> {
    if length < 2 {
        return Err(GraphError::CycleTooShort);
    }
    let mut out = Vec::new();
    let mut visited = vec![false; graph.token_count()];
    for start in graph.active_tokens() {
        let mut tokens = vec![start];
        let mut pools = Vec::new();
        visited[start.index()] = true;
        dfs(
            graph,
            start,
            length,
            &mut tokens,
            &mut pools,
            &mut visited,
            &mut out,
        );
        visited[start.index()] = false;
    }
    Ok(out)
}

fn dfs(
    graph: &TokenGraph,
    start: TokenId,
    length: usize,
    tokens: &mut Vec<TokenId>,
    pools: &mut Vec<PoolId>,
    visited: &mut [bool],
    out: &mut Vec<Cycle>,
) {
    let current = *tokens.last().expect("path never empty");
    if tokens.len() == length {
        // Close the loop back to `start`; 2-cycles must not reuse the
        // opening pool (a pool swapped there-and-back is not a loop).
        for edge in graph.neighbors(current) {
            if edge.to == start && (length > 2 || edge.pool != pools[0]) {
                out.push(Cycle {
                    tokens: tokens.clone(),
                    pools: {
                        let mut p = pools.clone();
                        p.push(edge.pool);
                        p
                    },
                });
            }
        }
        return;
    }
    for edge in graph.neighbors(current) {
        // Canonicalization: interior tokens must exceed the start token.
        if edge.to <= start || visited[edge.to.index()] {
            continue;
        }
        visited[edge.to.index()] = true;
        tokens.push(edge.to);
        pools.push(edge.pool);
        dfs(graph, start, length, tokens, pools, visited, out);
        tokens.pop();
        pools.pop();
        visited[edge.to.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;
    use std::collections::HashSet;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    fn p(i: u32) -> PoolId {
        PoolId::new(i)
    }

    fn triangle() -> TokenGraph {
        let fee = FeeRate::UNISWAP_V2;
        TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn cycle_construction_validation() {
        assert_eq!(
            Cycle::new(vec![t(0)], vec![p(0)]).unwrap_err(),
            GraphError::CycleTooShort
        );
        assert_eq!(
            Cycle::new(vec![t(0), t(1)], vec![p(0)]).unwrap_err(),
            GraphError::DisconnectedCycle
        );
    }

    #[test]
    fn triangle_enumeration() {
        let g = triangle();
        let cycles = enumerate(&g, 3).unwrap();
        assert_eq!(cycles.len(), 2);
        // Both start at token 0 (canonical rotation).
        for c in &cycles {
            assert_eq!(c.tokens()[0], t(0));
            c.validate(&g).unwrap();
        }
        // Distinct directions.
        assert_ne!(cycles[0].tokens(), cycles[1].tokens());
    }

    #[test]
    fn rate_and_log_rate_agree() {
        let g = triangle();
        for c in enumerate(&g, 3).unwrap() {
            let rate = c.rate(&g).unwrap();
            let log = c.log_rate(&g).unwrap();
            assert!((rate.ln() - log).abs() < 1e-12);
        }
    }

    #[test]
    fn two_cycles_require_parallel_pools() {
        let fee = FeeRate::UNISWAP_V2;
        // One pool only: no 2-cycles.
        let g1 = TokenGraph::new(vec![Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap()]).unwrap();
        assert!(enumerate(&g1, 2).unwrap().is_empty());
        // Two parallel pools: exactly two directed 2-cycles (0→1 via p0,
        // back via p1; and 0→1 via p1, back via p0).
        let g2 = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(0), t(1), 20.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        let cycles = enumerate(&g2, 2).unwrap();
        assert_eq!(cycles.len(), 2);
        for c in &cycles {
            assert_ne!(c.pools()[0], c.pools()[1]);
        }
    }

    #[test]
    fn parallel_pools_multiply_triangles() {
        let fee = FeeRate::UNISWAP_V2;
        // Triangle with 2 parallel pools on edge (0,1): 2 pool choices × 2
        // directions = 4 directed cycles.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(0), t(1), 150.0, 250.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap();
        let cycles = enumerate(&g, 3).unwrap();
        assert_eq!(cycles.len(), 4);
        let unique: HashSet<_> = cycles.iter().collect();
        assert_eq!(unique.len(), 4, "no duplicates");
    }

    #[test]
    fn square_graph_enumeration() {
        let fee = FeeRate::UNISWAP_V2;
        // 4-cycle 0-1-2-3 plus diagonal 0-2.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(1), t(2), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(2), t(3), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(3), t(0), 10.0, 10.0, fee).unwrap(),
            Pool::new(t(0), t(2), 10.0, 10.0, fee).unwrap(),
        ])
        .unwrap();
        // Triangles: {0,1,2} and {0,2,3}, two directions each = 4.
        assert_eq!(enumerate(&g, 3).unwrap().len(), 4);
        // Squares: {0,1,2,3} two directions = 2.
        assert_eq!(enumerate(&g, 4).unwrap().len(), 2);
    }

    #[test]
    fn rotation_preserves_trade() {
        let g = triangle();
        let c = &enumerate(&g, 3).unwrap()[0];
        let r = c.rotated(1);
        assert_eq!(r.tokens()[0], c.tokens()[1]);
        assert!((c.rate(&g).unwrap() - r.rate(&g).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn display_formats_loop() {
        let g = triangle();
        let c = &enumerate(&g, 3).unwrap()[0];
        let s = c.to_string();
        assert!(s.starts_with("T0 -[") && s.ends_with("T0"), "{s}");
    }

    #[test]
    fn length_below_two_rejected() {
        let g = triangle();
        assert_eq!(enumerate(&g, 1).unwrap_err(), GraphError::CycleTooShort);
    }
}
