//! Bellman–Ford–Moore negative-cycle detection.
//!
//! Zhou et al. (S&P '21) detect arbitrage loops by running Bellman–Ford on
//! edge weights `w(u→v) = −log(rate(u→v))`: a loop with
//! `Π rate > 1 ⇔ Σ log rate > 0 ⇔ Σ w < 0` is exactly a negative cycle.
//! This module reproduces that detector on the pool graph, returning the
//! discovered loop as a pool-level [`Cycle`] ready for the strategy layer.
//!
//! Unlike full enumeration this finds *one* loop (fast, not exhaustive) —
//! the classic trade-off the paper's related-work section discusses.

use arb_amm::pool::PoolId;
use arb_amm::token::TokenId;

use crate::cycles::Cycle;
use crate::error::GraphError;
use crate::token_graph::TokenGraph;

/// A directed, weighted edge of the detection graph.
#[derive(Debug, Clone, Copy)]
struct Arc {
    from: usize,
    to: usize,
    weight: f64,
    pool: PoolId,
}

/// Finds one arbitrage loop (negative `−log rate` cycle), if any exists.
///
/// Runs Bellman–Ford–Moore from a virtual super-source (all distances start
/// at 0), then extracts the cycle via predecessor walking. Parallel pools
/// are independent arcs, so the detector can return loops through any pool.
///
/// Returns `None` when no negative cycle exists (no arbitrage anywhere).
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if the graph has no pools (cannot
/// happen for graphs built by [`TokenGraph::new`], but guards direct use).
pub fn find_negative_cycle(graph: &TokenGraph) -> Result<Option<Cycle>, GraphError> {
    if graph.pool_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let n = graph.token_count();
    let mut arcs = Vec::with_capacity(graph.pool_count() * 2);
    for token in graph.active_tokens() {
        for edge in graph.neighbors(token) {
            let curve = graph.curve(edge.pool, token)?;
            arcs.push(Arc {
                from: token.index(),
                to: edge.to.index(),
                weight: -curve.spot_rate().ln(),
                pool: edge.pool,
            });
        }
    }

    // Virtual source: dist 0 everywhere.
    let mut dist = vec![0.0f64; n];
    let mut pred: Vec<Option<(usize, PoolId)>> = vec![None; n];
    let mut updated = false;
    for _round in 0..n {
        updated = false;
        for arc in &arcs {
            let candidate = dist[arc.from] + arc.weight;
            if candidate < dist[arc.to] - 1e-15 {
                dist[arc.to] = candidate;
                pred[arc.to] = Some((arc.from, arc.pool));
                updated = true;
            }
        }
        if !updated {
            break;
        }
    }
    if !updated {
        return Ok(None);
    }

    // A relaxation occurred in round n ⇒ a negative cycle exists. For each
    // still-relaxable arc, apply the relaxation (so the witness has a
    // predecessor) and walk the predecessor chain backwards; the walk must
    // revisit a vertex, and the revisited vertex sits on the cycle.
    for arc in &arcs {
        if dist[arc.from] + arc.weight >= dist[arc.to] - 1e-15 {
            continue;
        }
        dist[arc.to] = dist[arc.from] + arc.weight;
        pred[arc.to] = Some((arc.from, arc.pool));
        if let Some(cycle) = extract_cycle(graph, &pred, arc.to, n)? {
            return Ok(Some(cycle));
        }
    }
    Ok(None)
}

/// Walks predecessors from `start` until a vertex repeats, then assembles
/// the enclosed loop in forward trade order. Returns `None` if the chain
/// dead-ends before closing (the witness was not downstream of a cycle).
fn extract_cycle(
    graph: &TokenGraph,
    pred: &[Option<(usize, PoolId)>],
    start: usize,
    n: usize,
) -> Result<Option<Cycle>, GraphError> {
    // step_seen[v] = position at which v appeared in the backward walk.
    let mut step_seen = vec![usize::MAX; n];
    let mut walk: Vec<(usize, PoolId)> = Vec::new(); // (vertex, incoming pool)
    let mut v = start;
    loop {
        if step_seen[v] != usize::MAX {
            // `v` repeats: the backward walk between the two sightings is
            // the cycle. Entries walk[step_seen[v]..] run backwards from v,
            // i.e. each (u, pool) says "u was reached via pool from the
            // next entry's vertex". Reversing yields forward trade order.
            let cycle_part = &walk[step_seen[v]..];
            let mut hops: Vec<(usize, PoolId)> = Vec::with_capacity(cycle_part.len());
            for idx in (0..cycle_part.len()).rev() {
                // Forward hop: from the next-backward vertex (wrapping to v)
                // into cycle_part[idx].0, via that entry's incoming pool.
                let from = if idx + 1 < cycle_part.len() {
                    cycle_part[idx + 1].0
                } else {
                    v
                };
                hops.push((from, cycle_part[idx].1));
            }
            let tokens: Vec<TokenId> = hops
                .iter()
                .map(|&(from, _)| TokenId::new(from as u32))
                .collect();
            let pools: Vec<PoolId> = hops.iter().map(|&(_, pool)| pool).collect();
            let cycle = Cycle::new(tokens, pools)?;
            cycle.validate(graph)?;
            return Ok(Some(cycle));
        }
        step_seen[v] = walk.len();
        let Some((prev, pool)) = pred[v] else {
            return Ok(None);
        };
        walk.push((v, pool));
        v = prev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arb_amm::fee::FeeRate;
    use arb_amm::pool::Pool;

    fn t(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn detects_the_paper_triangle() {
        let fee = FeeRate::UNISWAP_V2;
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
            Pool::new(t(1), t(2), 300.0, 200.0, fee).unwrap(),
            Pool::new(t(2), t(0), 200.0, 400.0, fee).unwrap(),
        ])
        .unwrap();
        let cycle = find_negative_cycle(&g).unwrap().expect("arb exists");
        // The discovered loop must genuinely be profitable.
        assert!(cycle.log_rate(&g).unwrap() > 0.0);
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn no_cycle_in_balanced_market() {
        let fee = FeeRate::UNISWAP_V2;
        // Consistent prices: token i worth 2^i of token 0; every pool's mid
        // rate matches, so fees make every loop lossy.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 200.0, 100.0, fee).unwrap(),
            Pool::new(t(1), t(2), 200.0, 100.0, fee).unwrap(),
            Pool::new(t(2), t(0), 100.0, 400.0, fee).unwrap(),
        ])
        .unwrap();
        assert!(find_negative_cycle(&g).unwrap().is_none());
    }

    #[test]
    fn detects_two_pool_discrepancy() {
        let fee = FeeRate::UNISWAP_V2;
        // Same pair, very different prices: 2-pool loop is profitable.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 100.0, 100.0, fee).unwrap(),
            Pool::new(t(0), t(1), 100.0, 200.0, fee).unwrap(),
        ])
        .unwrap();
        let cycle = find_negative_cycle(&g).unwrap().expect("arb exists");
        assert!(cycle.log_rate(&g).unwrap() > 0.0);
        assert_eq!(cycle.len(), 2);
        assert_ne!(cycle.pools()[0], cycle.pools()[1]);
    }

    #[test]
    fn agrees_with_exhaustive_enumeration() {
        let fee = FeeRate::UNISWAP_V2;
        // A 4-token market with one injected mispricing.
        let g = TokenGraph::new(vec![
            Pool::new(t(0), t(1), 1000.0, 1000.0, fee).unwrap(),
            Pool::new(t(1), t(2), 1000.0, 1000.0, fee).unwrap(),
            Pool::new(t(2), t(3), 1000.0, 1000.0, fee).unwrap(),
            Pool::new(t(3), t(0), 1000.0, 1300.0, fee).unwrap(),
        ])
        .unwrap();
        let has_loop_bfm = find_negative_cycle(&g).unwrap().is_some();
        let has_loop_enum = !g.arbitrage_loops(4).unwrap().is_empty();
        assert_eq!(has_loop_bfm, has_loop_enum);
        assert!(has_loop_bfm);
    }
}
